//! Typed identifiers shared across the pipeline layers.
//!
//! The simulator, the scheduler, the observability stream, and the
//! prediction layer all refer to the same three kinds of entity: queries,
//! jobs within a query, and cluster nodes. Carrying them as bare `usize`
//! made it possible to hand a job index to a node parameter without a
//! whisper from the compiler; these newtypes make such mix-ups type
//! errors while staying zero-cost (`repr(transparent)` over `usize`).
//!
//! All three serialize and `Display` as their underlying integer, so the
//! JSONL / Chrome-trace export formats are unchanged byte for byte.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        #[repr(transparent)]
        pub struct $name(pub usize);

        impl $name {
            /// The raw index, for vector addressing.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(v: usize) -> Self {
                Self(v)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(v: $name) -> usize {
                v.0
            }
        }

        impl From<$name> for u64 {
            #[inline]
            fn from(v: $name) -> u64 {
                v.0 as u64
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.fmt(f)
            }
        }
    };
}

id_type! {
    /// A query's position in the submitted workload (its arrival-order
    /// index). Stable for the lifetime of a run.
    QueryId
}

id_type! {
    /// A job's position within its owning query's DAG (the `SimJob::id`
    /// the planner assigned). Only meaningful alongside a [`QueryId`].
    JobId
}

id_type! {
    /// A physical node of the simulated cluster, `0..ClusterConfig::nodes`.
    NodeId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_transparent_integers() {
        let q: QueryId = 7usize.into();
        assert_eq!(q.index(), 7);
        assert_eq!(usize::from(q), 7);
        assert_eq!(u64::from(q), 7);
        assert_eq!(q.to_string(), "7");
        assert_eq!(q, QueryId(7));
        assert!(QueryId(1) < QueryId(2), "ids order by index");
    }

    #[test]
    fn distinct_id_kinds_are_distinct_types() {
        // This is the whole point: a JobId cannot be passed where a
        // NodeId is expected. (Compile-time property; the assertions
        // below just keep the test non-empty.)
        assert_eq!(JobId::default().index(), 0);
        assert_eq!(NodeId::default().index(), 0);
    }
}
