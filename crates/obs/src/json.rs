//! Dependency-free JSON emission and validation.
//!
//! The exporters ([`crate::sink::JsonlSink`], [`crate::trace::ChromeTraceSink`],
//! [`crate::metrics::MetricsRegistry::to_json`]) render a fixed schema, so a
//! tiny escaping writer keeps this crate — and therefore the simulator's hot
//! path — free of external dependencies. [`validate`] is a strict
//! recursive-descent parser used by tests to assert exporter output is
//! well-formed JSON.

/// Escape `s` and wrap it in double quotes.
pub fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an `f64` as a JSON number (non-finite values become `null`,
/// which JSON cannot express otherwise).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` for f64 never emits an exponent, so the output is
        // always a valid JSON number.
        s
    } else {
        "null".to_string()
    }
}

/// Incremental JSON object builder: `Obj::new().str("a", "x").num("b", 1.0).finish()`.
#[derive(Debug, Clone)]
pub struct Obj {
    buf: String,
}

impl Default for Obj {
    fn default() -> Self {
        Self::new()
    }
}

impl Obj {
    /// Start an empty object.
    pub fn new() -> Self {
        Self { buf: String::from("{") }
    }

    fn key(&mut self, k: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push_str(&quoted(k));
        self.buf.push(':');
    }

    /// Add a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(&quoted(v));
        self
    }

    /// Add a float field.
    pub fn num(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        self.buf.push_str(&num(v));
        self
    }

    /// Add an integer field.
    pub fn int(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a pre-rendered JSON value (object, array, …) verbatim.
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Close the object and return its JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Render an iterator of pre-rendered JSON values as a JSON array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

/// Validate that `s` is one well-formed JSON document.
///
/// # Errors
/// Returns a message naming the byte offset of the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let mut p = Parser { b: s.as_bytes(), i: 0 };
    p.ws();
    p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(())
}

/// A parsed JSON document.
///
/// Object keys keep insertion order is not needed for our fixed schemas, so
/// a `BTreeMap` gives deterministic iteration instead. Numbers are `f64`
/// (all values we emit fit without precision loss that matters for
/// comparison; integer counters up to 2^53 round-trip exactly).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with deterministically ordered keys.
    Obj(std::collections::BTreeMap<String, Value>),
}

impl Value {
    /// Field lookup on an object; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_obj(&self) -> Option<&std::collections::BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse one JSON document into a [`Value`] tree.
///
/// # Errors
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser { b: s.as_bytes(), i: 0 };
    p.ws();
    let v = p.parse_value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string(),
            b't' => self.literal("true"),
            b'f' => self.literal("false"),
            b'n' => self.literal("null"),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek().ok_or_else(|| self.err("unterminated escape"))? {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => self.i += 1,
                        b'u' => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => self.i += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => self.parse_string().map(Value::Str),
            b't' => self.literal("true").map(|()| Value::Bool(true)),
            b'f' => self.literal("false").map(|()| Value::Bool(false)),
            b'n' => self.literal("null").map(|()| Value::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        let mut map = std::collections::BTreeMap::new();
        self.eat(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.ws();
            let key = self.parse_string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let val = self.parse_value()?;
            map.insert(key, val);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        let mut items = Vec::new();
        self.eat(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.parse_value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        let start = self.i;
        self.string()?;
        // The validated span includes both quotes; unescape the interior.
        let raw = &self.b[start + 1..self.i - 1];
        let mut out = String::with_capacity(raw.len());
        let mut j = 0;
        while j < raw.len() {
            if raw[j] == b'\\' {
                j += 1;
                match raw[j] {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = std::str::from_utf8(&raw[j + 1..j + 5])
                            .map_err(|_| self.err("bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
                        // Surrogates never appear in our own output; map
                        // unpaired ones to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        j += 4;
                    }
                    _ => unreachable!("string() validated escapes"),
                }
                j += 1;
            } else {
                // Copy a full UTF-8 sequence (input was a valid &str).
                let len = match raw[j] {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                out.push_str(std::str::from_utf8(&raw[j..j + len]).expect("valid utf8"));
                j += len;
            }
        }
        Ok(out)
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.i;
        self.number()?;
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii number");
        text.parse::<f64>().map(Value::Num).map_err(|_| self.err("number out of range"))
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| -> Result<(), String> {
            let start = p.i;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.i += 1;
            }
            if p.i == start {
                Err(p.err("expected digit"))
            } else {
                Ok(())
            }
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.i += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trip_is_valid() {
        let nasty = "a\"b\\c\nd\te\u{1}f — ünïcode";
        let doc = Obj::new().str("k", nasty).finish();
        validate(&doc).unwrap();
    }

    #[test]
    fn builder_produces_valid_json() {
        let inner = array(vec![num(1.5), "null".into(), quoted("x")]);
        let doc = Obj::new()
            .str("s", "v")
            .num("f", -2.25)
            .num("nan", f64::NAN)
            .int("i", 42)
            .bool("b", true)
            .bool("nb", false)
            .raw("arr", &inner)
            .finish();
        validate(&doc).unwrap();
        assert!(doc.contains("\"nan\":null"));
        assert!(doc.contains("\"b\":true"));
        assert!(doc.contains("\"nb\":false"));
    }

    #[test]
    fn validator_accepts_good_and_rejects_bad() {
        for good in [
            "{}",
            "[]",
            "  {\"a\": [1, 2.5, -3e-2, {\"b\": null}, true, false, \"\\u00e9\"]} ",
            "\"lone string\"",
            "-0.5",
        ] {
            validate(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\" 1}",
            "nul",
            "01abc",
            "\"unterminated",
            "{} extra",
            "{\"a\":1,}",
        ] {
            assert!(validate(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn parse_round_trips_builder_output() {
        let doc = Obj::new()
            .str("s", "a\"b\\c\nd\te — ünïcode")
            .num("f", -2.25)
            .int("i", 42)
            .bool("b", true)
            .raw("arr", &array(vec![num(1.5), "null".into()]))
            .finish();
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nd\te — ünïcode"));
        assert_eq!(v.get("f").unwrap().as_num(), Some(-2.25));
        assert_eq!(v.get("i").unwrap().as_num(), Some(42.0));
        assert_eq!(v.get("b"), Some(&Value::Bool(true)));
        let arr = v.get("arr").unwrap().as_arr().unwrap();
        assert_eq!(arr, &[Value::Num(1.5), Value::Null]);
    }

    #[test]
    fn parse_handles_escapes_and_structure() {
        let v = parse("{\"k\": [\"\\u00e9\\u0041\", {\"n\": -3e-2}], \"e\": {}}").unwrap();
        let arr = v.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_str(), Some("éA"));
        assert_eq!(arr[1].get("n").unwrap().as_num(), Some(-0.03));
        assert!(v.get("e").unwrap().as_obj().unwrap().is_empty());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "{} x"] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn empty_object_and_nested() {
        validate(&Obj::new().finish()).unwrap();
        let nested = Obj::new().raw("o", &Obj::new().int("x", 1).finish()).finish();
        assert_eq!(nested, "{\"o\":{\"x\":1}}");
        validate(&nested).unwrap();
    }
}
