//! # sapred-obs — observability for the sapred simulator and scheduler
//!
//! Event tracing, metrics, and prediction-drift telemetry, with zero
//! overhead when disabled. Three layers:
//!
//! 1. **Events** ([`Event`], [`EventSink`]): the discrete-event simulator
//!    emits one event per state transition — query/job lifecycle, per-task
//!    placement on node·slot, scheduler decision records with per-candidate
//!    scores, ETA snapshots, and predicted-vs-actual observations. The
//!    simulator is generic over the sink; the default [`NullSink`] reports
//!    `enabled() == false` and compiles the tracing path away.
//! 2. **Metrics** ([`MetricsRegistry`], [`MetricsSink`], [`Histogram`]):
//!    counters, gauges, and fixed-bucket histograms derived from the event
//!    stream — task latencies per phase, queue depth, container utilization
//!    over time — plus drift telemetry ([`DriftTracker`]) tracking signed
//!    relative error and MARE per predicted quantity × job category.
//! 3. **Exporters** ([`JsonlSink`], [`ChromeTraceSink`]): JSONL event logs
//!    and Chrome `trace_event` JSON (one track per container slot, one per
//!    query) viewable in `chrome://tracing` or Perfetto.
//! 4. **Profiling** ([`Profiler`], [`SpanProfiler`]): RAII span timers and
//!    hot-path counters for self-measuring runs, with a [`NullProfiler`]
//!    that compiles away exactly like `NullSink` does for events. The
//!    `sapred bench` harness is built on this layer.
//!
//! Sinks compose with [`Tee`]; everything here is dependency-free
//! (hand-rolled JSON in [`json`]).
//!
//! ## Extending
//!
//! Implement [`EventSink`] to build custom consumers — the trait is two
//! methods. Return `true` from `enabled()` (the default) and pattern-match
//! the [`Event`] variants you care about in `emit`; ignore the rest. See
//! [`DriftTracker`]'s implementation for a minimal example that consumes a
//! single variant.

#![warn(missing_docs)]

pub mod drift;
pub mod event;
pub mod fsutil;
pub mod ids;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod trace;

pub use drift::{DriftStat, DriftTracker};
pub use event::{Candidate, DownReason, Event, Quantity, TaskPhase};
pub use fsutil::write_atomic;
pub use ids::{JobId, NodeId, QueryId};
pub use metrics::{Histogram, MetricsRegistry, MetricsSink};
pub use profile::{Counter, NullProfiler, Profiler, SpanProfiler};
pub use sink::{EventSink, JsonlSink, NullSink, RecordingSink, Tee};
pub use trace::ChromeTraceSink;
