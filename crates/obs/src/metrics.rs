//! Lightweight metrics: counters, gauges, fixed-bucket histograms, and a
//! [`MetricsSink`] that derives cluster metrics from the event stream.
//!
//! No external dependencies; the registry renders itself to JSON via
//! [`crate::json`].

use crate::drift::DriftTracker;
use crate::event::{Event, TaskPhase};
use crate::json::{array, Obj};
use crate::sink::EventSink;
use std::collections::BTreeMap;

/// Fixed-bucket histogram over non-negative values (seconds, counts, …).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bounds of the finite buckets, strictly increasing. Values above
    /// the last bound land in an implicit overflow bucket.
    bounds: Vec<f64>,
    /// `counts[i]` = observations `<= bounds[i]` (and greater than the
    /// previous bound); `counts[bounds.len()]` = overflow.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// New histogram with the given strictly-increasing bucket bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Default bounds for task/latency durations in seconds: exponential
    /// 0.5 s … 4096 s.
    pub fn duration_seconds() -> Self {
        Self::new((0..14).map(|i| 0.5 * 2f64.powi(i)).collect())
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// within the containing bucket. Returns `0.0` when empty; overflow-bucket
    /// hits clamp to the observed max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut seen = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = seen + c as f64;
            if next >= rank && c > 0 {
                if i == self.bounds.len() {
                    return self.max;
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let frac = if c == 0 { 0.0 } else { (rank - seen) / c as f64 };
                return (lo + frac * (hi - lo)).clamp(self.min.min(hi), self.max);
            }
            seen = next;
        }
        self.max
    }

    /// Render as a JSON object with counts, stats, and per-bucket data.
    pub fn to_json(&self) -> String {
        let buckets = array(
            self.bounds
                .iter()
                .zip(&self.counts)
                .map(|(b, c)| Obj::new().num("le", *b).int("count", *c).finish()),
        );
        Obj::new()
            .int("count", self.count)
            .num("sum", self.sum)
            .num("mean", self.mean())
            .num("min", if self.count == 0 { 0.0 } else { self.min })
            .num("max", if self.count == 0 { 0.0 } else { self.max })
            .num("p50", self.quantile(0.50))
            .num("p95", self.quantile(0.95))
            .num("p99", self.quantile(0.99))
            .int("overflow", *self.counts.last().unwrap())
            .raw("buckets", &buckets)
            .finish()
    }
}

/// Named counters, gauges, and histograms.
///
/// `BTreeMap`-backed so JSON output is deterministically ordered.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (created at zero on first use).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Increment counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `value`. Non-finite values (NaN, ±∞) are
    /// rejected — JSON cannot express them, and a poisoned gauge would
    /// silently render as `null` — so the previous value is kept.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        if value.is_finite() {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Current value of gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record `value` into histogram `name`, creating it with
    /// [`Histogram::duration_seconds`] bounds on first use.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::duration_seconds)
            .observe(value);
    }

    /// Record into a histogram created with explicit bounds on first use.
    pub fn observe_with(&mut self, name: &str, value: f64, make: impl FnOnce() -> Histogram) {
        self.histograms.entry(name.to_string()).or_insert_with(make).observe(value);
    }

    /// Histogram `name`, if any observations were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Render the whole registry as one JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> String {
        let mut counters = Obj::new();
        for (k, v) in &self.counters {
            counters = counters.int(k, *v);
        }
        let mut gauges = Obj::new();
        for (k, v) in &self.gauges {
            gauges = gauges.num(k, *v);
        }
        let mut hists = Obj::new();
        for (k, h) in &self.histograms {
            hists = hists.raw(k, &h.to_json());
        }
        Obj::new()
            .raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &hists.finish())
            .finish()
    }
}

/// Derives cluster metrics from the raw event stream: task counts and
/// latency histograms per phase, queue depth, container utilization as a
/// time-weighted integral, and prediction drift (via an embedded
/// [`DriftTracker`]).
#[derive(Debug, Clone)]
pub struct MetricsSink {
    /// The metric store; read or export after the run.
    pub registry: MetricsRegistry,
    /// Drift telemetry fed by `prediction_error` events.
    pub drift: DriftTracker,
    total_containers: usize,
    busy: usize,
    last_t: f64,
    busy_integral: f64,
}

impl MetricsSink {
    /// New sink for a cluster with `total_containers` container slots.
    pub fn new(total_containers: usize) -> Self {
        Self {
            registry: MetricsRegistry::new(),
            drift: DriftTracker::new(),
            total_containers,
            busy: 0,
            last_t: 0.0,
            busy_integral: 0.0,
        }
    }

    fn advance(&mut self, t: f64) {
        if t > self.last_t {
            self.busy_integral += self.busy as f64 * (t - self.last_t);
            self.last_t = t;
        }
    }

    /// Mean container utilization in `[0, 1]` over `[0, makespan]`.
    pub fn utilization(&self, makespan: f64) -> f64 {
        if makespan <= 0.0 || self.total_containers == 0 {
            return 0.0;
        }
        // Account for busy time between the last event and the makespan.
        let tail = (makespan - self.last_t).max(0.0) * self.busy as f64;
        (self.busy_integral + tail) / (makespan * self.total_containers as f64)
    }

    /// Finalize gauges that need the run's makespan, then return the
    /// registry's JSON (includes a `"drift"` section).
    pub fn finish(&mut self, makespan: f64) -> String {
        self.advance(makespan);
        self.registry.set_gauge("makespan_seconds", makespan);
        self.registry.set_gauge("container_utilization", self.utilization(makespan));
        let body = self.registry.to_json();
        // Splice the drift table into the registry object.
        debug_assert!(body.ends_with('}'));
        let mut out = body[..body.len() - 1].to_string();
        out.push_str(",\"drift\":");
        out.push_str(&self.drift.to_json());
        out.push('}');
        out
    }
}

impl EventSink for MetricsSink {
    fn emit(&mut self, event: &Event) {
        self.advance(event.time());
        match event {
            Event::QueryArrive { .. } => self.registry.inc("queries_arrived"),
            Event::QueryFinish { .. } => self.registry.inc("queries_finished"),
            Event::JobSubmit { .. } => self.registry.inc("jobs_submitted"),
            Event::JobFinish { .. } => self.registry.inc("jobs_finished"),
            Event::TaskStart { phase, .. } => {
                self.busy += 1;
                match phase {
                    TaskPhase::Map => self.registry.inc("tasks_started_map"),
                    TaskPhase::Reduce => self.registry.inc("tasks_started_reduce"),
                }
            }
            Event::TaskFinish { phase, duration, .. } => {
                self.busy = self.busy.saturating_sub(1);
                match phase {
                    TaskPhase::Map => {
                        self.registry.inc("tasks_finished_map");
                        self.registry.observe("task_seconds_map", *duration);
                    }
                    TaskPhase::Reduce => {
                        self.registry.inc("tasks_finished_reduce");
                        self.registry.observe("task_seconds_reduce", *duration);
                    }
                }
            }
            Event::TaskFailed { phase, ran_for, will_retry, .. } => {
                // A failed attempt releases its container just like a finish,
                // or the utilization integral would leak busy slots.
                self.busy = self.busy.saturating_sub(1);
                self.registry.inc(match phase {
                    TaskPhase::Map => "tasks_failed_map",
                    TaskPhase::Reduce => "tasks_failed_reduce",
                });
                if *will_retry {
                    self.registry.inc("retries_scheduled");
                }
                self.registry.observe("failed_attempt_seconds", *ran_for);
            }
            Event::TaskKilled { speculative, requeued, .. } => {
                self.busy = self.busy.saturating_sub(1);
                self.registry.inc("tasks_killed");
                if *speculative {
                    self.registry.inc("speculative_losses");
                }
                if *requeued {
                    self.registry.inc("tasks_requeued");
                }
            }
            Event::NodeDown { reason, lost_maps, .. } => {
                self.registry.inc(match reason {
                    crate::event::DownReason::Crash => "node_crashes",
                    crate::event::DownReason::Blacklist => "nodes_blacklisted",
                });
                self.registry.add("maps_lost", *lost_maps as u64);
            }
            Event::NodeUp { .. } => self.registry.inc("node_recoveries"),
            Event::SpeculativeLaunch { .. } => self.registry.inc("speculative_launches"),
            Event::MapOutputLost { .. } => self.registry.inc("map_output_loss_events"),
            Event::Decision { queue_depth, free_containers, .. } => {
                self.registry.inc("scheduler_decisions");
                self.registry.observe_with("queue_depth", *queue_depth as f64, || {
                    Histogram::new(vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0])
                });
                self.registry.set_gauge("last_free_containers", *free_containers as f64);
            }
            Event::Eta { .. } => self.registry.inc("eta_snapshots"),
            Event::PredictionError { .. } => {
                self.registry.inc("prediction_samples");
                self.drift.emit(event);
            }
            Event::QueryShed { will_resubmit, .. } => {
                self.registry.inc("queries_shed");
                if *will_resubmit {
                    self.registry.inc("resubmissions_scheduled");
                }
            }
            Event::DeadlineMissed { .. } => self.registry.inc("deadline_misses"),
            Event::DegradedModeEnter { trust, .. } => {
                self.registry.inc("degraded_entries");
                self.registry.set_gauge("oracle_trust", *trust);
            }
            Event::DegradedModeExit { trust, .. } => {
                self.registry.inc("degraded_exits");
                self.registry.set_gauge("oracle_trust", *trust);
            }
            Event::PredictionQuarantined { .. } => self.registry.inc("predictions_quarantined"),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{JobId, NodeId, QueryId};
    use crate::json::validate;
    use sapred_plan::JobCategory;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.5, 3.0, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 3.3).abs() < 1e-12);
        let json = h.to_json();
        validate(&json).unwrap();
        assert!(json.contains("\"overflow\":1"));
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::duration_seconds();
        for i in 1..=100 {
            h.observe(i as f64 * 0.3);
        }
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p50 > 10.0 && p50 < 20.0, "{p50}"); // true median 15.x
        assert!(p99 <= h.quantile(1.0));
        assert_eq!(Histogram::new(vec![1.0]).quantile(0.5), 0.0);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = MetricsRegistry::new();
        r.inc("a");
        r.add("a", 2);
        r.set_gauge("g", 1.5);
        r.observe("h", 2.0);
        assert_eq!(r.counter("a"), 3);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("g"), Some(1.5));
        assert_eq!(r.histogram("h").unwrap().count(), 1);
        validate(&r.to_json()).unwrap();
    }

    #[test]
    fn empty_registry_snapshot_is_valid() {
        let r = MetricsRegistry::new();
        let json = r.to_json();
        validate(&json).unwrap();
        assert_eq!(json, "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
    }

    #[test]
    fn single_sample_histogram_percentiles() {
        let mut h = Histogram::new(vec![1.0, 10.0]);
        h.observe(3.0);
        // With one sample every quantile collapses onto it (within the
        // containing bucket, clamped to the observed min/max).
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 3.0, "q={q}");
        }
        assert_eq!(h.mean(), 3.0);
        validate(&h.to_json()).unwrap();
    }

    #[test]
    fn non_finite_updates_are_rejected() {
        let mut h = Histogram::new(vec![1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0);

        let mut r = MetricsRegistry::new();
        r.set_gauge("g", 1.0);
        r.set_gauge("g", f64::NAN);
        r.set_gauge("g", f64::INFINITY);
        assert_eq!(r.gauge("g"), Some(1.0), "non-finite set_gauge must keep the old value");
        r.set_gauge("fresh", f64::NEG_INFINITY);
        assert_eq!(r.gauge("fresh"), None);
        r.observe("h", f64::NAN);
        assert_eq!(r.histogram("h").unwrap().count(), 0);
        validate(&r.to_json()).unwrap();
    }

    fn task_pair(t0: f64, t1: f64, phase: TaskPhase) -> [Event; 2] {
        [
            Event::TaskStart {
                t: t0,
                query: QueryId(0),
                job: JobId(0),
                phase,
                node: NodeId(0),
                slot: 0,
            },
            Event::TaskFinish {
                t: t1,
                query: QueryId(0),
                job: JobId(0),
                phase,
                node: NodeId(0),
                slot: 0,
                duration: t1 - t0,
            },
        ]
    }

    #[test]
    fn sink_tracks_utilization_integral() {
        // 2 containers; one task busy from t=0 to t=10 → utilization 0.5.
        let mut sink = MetricsSink::new(2);
        for ev in task_pair(0.0, 10.0, TaskPhase::Map) {
            sink.emit(&ev);
        }
        assert!((sink.utilization(10.0) - 0.5).abs() < 1e-12);
        assert_eq!(sink.registry.counter("tasks_started_map"), 1);
        assert_eq!(sink.registry.counter("tasks_finished_map"), 1);
        assert_eq!(sink.registry.histogram("task_seconds_map").unwrap().count(), 1);
    }

    #[test]
    fn fault_events_release_busy_slots_and_count() {
        use crate::event::DownReason;
        let mut sink = MetricsSink::new(2);
        let start = |t: f64, node: NodeId| Event::TaskStart {
            t,
            query: QueryId(0),
            job: JobId(0),
            phase: TaskPhase::Map,
            node,
            slot: 0,
        };
        // One attempt fails at t=2, another is killed at t=2: both slots must
        // be released, so utilization over [0, 4] is (2+2)/(2*4) = 0.5.
        sink.emit(&start(0.0, NodeId(0)));
        sink.emit(&start(0.0, NodeId(1)));
        sink.emit(&Event::TaskFailed {
            t: 2.0,
            query: QueryId(0),
            job: JobId(0),
            phase: TaskPhase::Map,
            node: NodeId(0),
            slot: 0,
            attempt: 1,
            ran_for: 2.0,
            will_retry: true,
            retry_at: 2.5,
        });
        sink.emit(&Event::TaskKilled {
            t: 2.0,
            query: QueryId(0),
            job: JobId(0),
            phase: TaskPhase::Map,
            node: NodeId(1),
            slot: 0,
            speculative: true,
            requeued: false,
        });
        sink.emit(&Event::NodeDown {
            t: 2.0,
            node: NodeId(1),
            reason: DownReason::Crash,
            lost_maps: 3,
        });
        sink.emit(&Event::NodeDown {
            t: 2.5,
            node: NodeId(0),
            reason: DownReason::Blacklist,
            lost_maps: 0,
        });
        sink.emit(&Event::NodeUp { t: 3.0, node: NodeId(1) });
        sink.emit(&Event::SpeculativeLaunch {
            t: 3.0,
            query: QueryId(0),
            job: JobId(0),
            phase: TaskPhase::Map,
            node: NodeId(1),
            slot: 0,
        });
        sink.emit(&Event::MapOutputLost {
            t: 2.0,
            query: QueryId(0),
            job: JobId(0),
            node: NodeId(1),
            maps_lost: 3,
        });
        assert!((sink.utilization(4.0) - 0.5).abs() < 1e-12, "{}", sink.utilization(4.0));
        assert_eq!(sink.registry.counter("tasks_failed_map"), 1);
        assert_eq!(sink.registry.counter("retries_scheduled"), 1);
        assert_eq!(sink.registry.counter("tasks_killed"), 1);
        assert_eq!(sink.registry.counter("speculative_losses"), 1);
        assert_eq!(sink.registry.counter("node_crashes"), 1);
        assert_eq!(sink.registry.counter("nodes_blacklisted"), 1);
        assert_eq!(sink.registry.counter("node_recoveries"), 1);
        assert_eq!(sink.registry.counter("speculative_launches"), 1);
        assert_eq!(sink.registry.counter("maps_lost"), 3);
        assert_eq!(sink.registry.counter("map_output_loss_events"), 1);
        validate(&sink.finish(4.0)).unwrap();
    }

    #[test]
    fn lifecycle_events_count_and_track_trust() {
        let mut sink = MetricsSink::new(2);
        sink.emit(&Event::QueryShed {
            t: 1.0,
            query: QueryId(0),
            policy: "reject_newest",
            wrd: 10.0,
            will_resubmit: true,
            resubmit_at: 2.0,
        });
        sink.emit(&Event::QueryShed {
            t: 2.0,
            query: QueryId(1),
            policy: "largest_wrd",
            wrd: 50.0,
            will_resubmit: false,
            resubmit_at: 2.0,
        });
        sink.emit(&Event::DeadlineMissed { t: 3.0, query: QueryId(0), deadline: 2.5 });
        sink.emit(&Event::DegradedModeEnter { t: 3.5, trust: 0.2, fallback: "FIFO" });
        sink.emit(&Event::PredictionQuarantined {
            t: 3.6,
            query: QueryId(0),
            job: JobId(0),
            category: JobCategory::Extract,
            quantity: crate::event::Quantity::MapTask,
            predicted: f64::NAN,
            substituted: 1.0,
        });
        sink.emit(&Event::DegradedModeExit { t: 4.0, trust: 0.7 });
        assert_eq!(sink.registry.counter("queries_shed"), 2);
        assert_eq!(sink.registry.counter("resubmissions_scheduled"), 1);
        assert_eq!(sink.registry.counter("deadline_misses"), 1);
        assert_eq!(sink.registry.counter("degraded_entries"), 1);
        assert_eq!(sink.registry.counter("degraded_exits"), 1);
        assert_eq!(sink.registry.counter("predictions_quarantined"), 1);
        assert_eq!(sink.registry.gauge("oracle_trust"), Some(0.7));
        validate(&sink.finish(4.0)).unwrap();
    }

    #[test]
    fn sink_finish_produces_valid_json_with_drift() {
        let mut sink = MetricsSink::new(4);
        for ev in task_pair(0.0, 2.0, TaskPhase::Reduce) {
            sink.emit(&ev);
        }
        sink.emit(&Event::PredictionError {
            t: 2.0,
            query: QueryId(0),
            job: JobId(0),
            category: JobCategory::Extract,
            quantity: crate::event::Quantity::Job,
            predicted: 2.4,
            actual: 2.0,
        });
        let json = sink.finish(2.0);
        validate(&json).unwrap();
        assert!(json.contains("\"drift\""));
        assert!(json.contains("\"makespan_seconds\":2"));
        assert_eq!(sink.registry.counter("prediction_samples"), 1);
        assert_eq!(sink.drift.total_samples(), 1);
    }
}
