//! Span timers and hot-path counters for self-profiling runs.
//!
//! The simulator and pipeline accept a [`Profiler`] the same way the event
//! loop accepts an [`crate::sink::EventSink`]: a zero-sized [`NullProfiler`]
//! whose methods are `#[inline(always)]` no-ops keeps the un-profiled path
//! free of any bookkeeping (the golden-fixture tests pin this), while
//! [`SpanProfiler`] collects nested RAII span timings on the monotonic clock
//! plus a fixed set of [`Counter`]s. `SpanProfiler` uses interior mutability
//! (`Cell`/`RefCell`) so instrumented code can open spans through a shared
//! reference while holding other borrows.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::time::Instant;

use crate::json::{array, Obj};

/// Hot-path counters tracked by the profiler.
///
/// `QueuePeakDepth` is a high-water mark (updated via
/// [`Profiler::record_max`]); the rest are monotonically increasing counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Events popped off the simulator heap.
    EventsProcessed = 0,
    /// Scheduler pick calls (one per dispatch decision, hit or miss).
    DispatchDecisions,
    /// Incremental scheduler-view maintenance operations.
    SchedulerViewUpdates,
    /// Events actually forwarded to an enabled sink.
    SinkEventsEmitted,
    /// Task attempts launched into containers (including speculative).
    TasksLaunched,
    /// Peak simulator event-heap depth (high-water mark).
    QueuePeakDepth,
    /// Fleet cells (whole simulations) run to completion by the fleet host.
    FleetCellsRun,
    /// Fleet cells that panicked or otherwise failed; their coordinates are
    /// recorded in the fleet report instead of a summary.
    FleetCellsFailed,
    /// Event-queue operations (pushes + pops) across the run — identical
    /// in every [`QueueMode`], so drift here is a behavior change.
    ///
    /// [`QueueMode`]: https://docs.rs/sapred-cluster
    EventQueueOps,
    /// Arena event-queue bytes high-water mark (slab records + index heap;
    /// high-water mark via [`Profiler::record_max`]). Zero under the
    /// reference `BinaryHeap` queue.
    ArenaBytesPeak,
    /// Event-arena slots recycled through the slab freelist (pushes served
    /// from a previously freed slot rather than slab growth).
    ArenaSlotsRecycled,
    /// Total serialized checkpoint bytes written by the engine's
    /// `checkpoint_every_events` trigger (and explicit snapshots taken
    /// through a profiled run). Zero when checkpointing is off.
    CheckpointBytes,
    /// Fleet cells skipped on `--resume` because a journal already held
    /// their completed results.
    CellsResumed,
}

impl Counter {
    /// Every counter, in stable report order.
    pub const ALL: [Counter; 13] = [
        Counter::EventsProcessed,
        Counter::DispatchDecisions,
        Counter::SchedulerViewUpdates,
        Counter::SinkEventsEmitted,
        Counter::TasksLaunched,
        Counter::QueuePeakDepth,
        Counter::FleetCellsRun,
        Counter::FleetCellsFailed,
        Counter::EventQueueOps,
        Counter::ArenaBytesPeak,
        Counter::ArenaSlotsRecycled,
        Counter::CheckpointBytes,
        Counter::CellsResumed,
    ];

    /// Stable snake_case label used in JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            Counter::EventsProcessed => "events_processed",
            Counter::DispatchDecisions => "dispatch_decisions",
            Counter::SchedulerViewUpdates => "scheduler_view_updates",
            Counter::SinkEventsEmitted => "sink_events_emitted",
            Counter::TasksLaunched => "tasks_launched",
            Counter::QueuePeakDepth => "queue_peak_depth",
            Counter::FleetCellsRun => "fleet_cells_run",
            Counter::FleetCellsFailed => "fleet_cells_failed",
            Counter::EventQueueOps => "event_queue_ops",
            Counter::ArenaBytesPeak => "arena_bytes_peak",
            Counter::ArenaSlotsRecycled => "arena_slots_recycled",
            Counter::CheckpointBytes => "checkpoint_bytes",
            Counter::CellsResumed => "cells_resumed",
        }
    }
}

/// Instrumentation seam threaded through the pipeline and simulator.
///
/// Implementations must be cheap enough to call on the event-loop hot path;
/// the provided [`NullProfiler`] compiles away entirely.
pub trait Profiler {
    /// RAII guard returned by [`Profiler::span`]; records the span when dropped.
    type Span<'a>
    where
        Self: 'a;

    /// Whether this profiler records anything. Lets instrumented code skip
    /// argument preparation, mirroring `EventSink::enabled`.
    fn enabled(&self) -> bool {
        true
    }

    /// Open a named span; the returned guard records elapsed time on drop.
    #[must_use]
    fn span(&self, name: &'static str) -> Self::Span<'_>;

    /// Add `delta` to a counter.
    fn add(&self, counter: Counter, delta: u64);

    /// Raise a high-water-mark counter to `value` if it is larger.
    fn record_max(&self, counter: Counter, value: u64);

    /// Increment a counter by one.
    fn inc(&self, counter: Counter) {
        self.add(counter, 1);
    }
}

/// Profiler that records nothing. All methods are `#[inline(always)]`
/// no-ops, so instrumented code monomorphized against it carries no
/// profiling overhead at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProfiler;

impl Profiler for NullProfiler {
    type Span<'a> = ();

    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn span(&self, _name: &'static str) -> Self::Span<'_> {}

    #[inline(always)]
    fn add(&self, _counter: Counter, _delta: u64) {}

    #[inline(always)]
    fn record_max(&self, _counter: Counter, _value: u64) {}
}

/// Cap on raw per-span samples kept for exact percentiles. Past the cap the
/// aggregate stats (count/total/min/max) stay exact but percentiles are
/// computed from the first `SAMPLE_CAP` samples — a truncation the summary
/// reports explicitly ([`SpanStat::samples_dropped`] /
/// [`SpanStat::truncated`]) rather than letting a fleet-scale p99 silently
/// describe only the retained prefix.
pub const SAMPLE_CAP: usize = 1 << 16;

/// Aggregated timings for one span name.
#[derive(Debug, Clone, Default)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Total elapsed nanoseconds across completed spans.
    pub total_ns: u64,
    /// Shortest completed span, in nanoseconds.
    pub min_ns: u64,
    /// Longest completed span, in nanoseconds.
    pub max_ns: u64,
    samples_ns: Vec<u64>,
}

impl SpanStat {
    fn record(&mut self, elapsed_ns: u64) {
        if self.count == 0 {
            self.min_ns = elapsed_ns;
            self.max_ns = elapsed_ns;
        } else {
            self.min_ns = self.min_ns.min(elapsed_ns);
            self.max_ns = self.max_ns.max(elapsed_ns);
        }
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(elapsed_ns);
        if self.samples_ns.len() < SAMPLE_CAP {
            self.samples_ns.push(elapsed_ns);
        }
    }

    /// Mean elapsed nanoseconds (0 when no spans completed).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Raw samples retained for percentile computation (≤ [`SAMPLE_CAP`]).
    pub fn samples_retained(&self) -> usize {
        self.samples_ns.len()
    }

    /// Samples past the cap that percentiles can no longer see. Non-zero
    /// means [`SpanStat::quantile_ns`] describes only the first
    /// [`SAMPLE_CAP`] spans, not the whole run.
    pub fn samples_dropped(&self) -> u64 {
        self.count.saturating_sub(self.samples_ns.len() as u64)
    }

    /// Whether percentiles are computed over a truncated prefix of the run.
    pub fn truncated(&self) -> bool {
        self.samples_dropped() > 0
    }

    /// Nearest-rank quantile over the *retained* samples (the first
    /// [`SAMPLE_CAP`] recorded); `q` in `[0, 1]`. Check
    /// [`SpanStat::truncated`] before trusting tail quantiles of very long
    /// runs.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank.min(sorted.len()) - 1]
    }
}

/// Recording profiler: span timers on the monotonic clock plus hot-path
/// counters, all behind interior mutability so it can be shared by `&`
/// reference (or `Rc`) across the pipeline and simulator.
#[derive(Debug, Default)]
pub struct SpanProfiler {
    counters: [Cell<u64>; Counter::ALL.len()],
    spans: RefCell<BTreeMap<&'static str, SpanStat>>,
    depth: Cell<usize>,
    max_depth: Cell<usize>,
    open: Cell<usize>,
}

impl SpanProfiler {
    /// Fresh profiler with all counters zero and no spans.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of `counter`.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].get()
    }

    /// Snapshot of the stats for span `name`, if any spans completed.
    pub fn span_stat(&self, name: &str) -> Option<SpanStat> {
        self.spans.borrow().get(name).cloned()
    }

    /// Names of all recorded spans, sorted.
    pub fn span_names(&self) -> Vec<&'static str> {
        self.spans.borrow().keys().copied().collect()
    }

    /// Deepest nesting level reached by any span.
    pub fn max_depth(&self) -> usize {
        self.max_depth.get()
    }

    /// Number of spans currently open (guards created but not yet dropped).
    /// Non-zero after all guards went out of scope means a guard was leaked
    /// (e.g. `mem::forget`), in which case that span was never recorded.
    pub fn open_spans(&self) -> usize {
        self.open.get()
    }

    /// True when every opened span has been closed.
    pub fn balanced(&self) -> bool {
        self.open.get() == 0
    }

    /// Total samples dropped past the per-span cap, across all spans. Zero
    /// means every reported percentile saw the whole run.
    pub fn total_samples_dropped(&self) -> u64 {
        self.spans.borrow().values().map(SpanStat::samples_dropped).sum()
    }

    fn close(&self, name: &'static str, elapsed_ns: u64) {
        self.depth.set(self.depth.get().saturating_sub(1));
        self.open.set(self.open.get().saturating_sub(1));
        self.spans.borrow_mut().entry(name).or_default().record(elapsed_ns);
    }

    /// Render counters and per-span summaries as one JSON object.
    ///
    /// Schema: `{"counters": {label: int, ...}, "spans": [{"name", "count",
    /// "total_s", "mean_s", "min_s", "max_s", "p50_s", "p95_s", "p99_s",
    /// "samples_retained", "samples_dropped", "truncated"}, ...],
    /// "max_depth": int, "open_spans": int}`. `truncated: true` flags spans
    /// whose percentiles describe only the first [`SAMPLE_CAP`] samples.
    pub fn to_json(&self) -> String {
        let mut counters = Obj::new();
        for c in Counter::ALL {
            counters = counters.int(c.label(), self.counter(c));
        }
        let spans = self.spans.borrow();
        let span_objs = spans.iter().map(|(name, st)| {
            let s = |ns: u64| ns as f64 / 1e9;
            Obj::new()
                .str("name", name)
                .int("count", st.count)
                .num("total_s", s(st.total_ns))
                .num("mean_s", st.mean_ns() / 1e9)
                .num("min_s", s(st.min_ns))
                .num("max_s", s(st.max_ns))
                .num("p50_s", s(st.quantile_ns(0.50)))
                .num("p95_s", s(st.quantile_ns(0.95)))
                .num("p99_s", s(st.quantile_ns(0.99)))
                .int("samples_retained", st.samples_retained() as u64)
                .int("samples_dropped", st.samples_dropped())
                .bool("truncated", st.truncated())
                .finish()
        });
        Obj::new()
            .raw("counters", &counters.finish())
            .raw("spans", &array(span_objs))
            .int("max_depth", self.max_depth.get() as u64)
            .int("open_spans", self.open.get() as u64)
            .finish()
    }

    /// Human-readable multi-line summary (counters, then spans).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str("counters:\n");
        for c in Counter::ALL {
            out.push_str(&format!("  {:<24} {}\n", c.label(), self.counter(c)));
        }
        let spans = self.spans.borrow();
        if !spans.is_empty() {
            out.push_str("spans (name count total mean p95):\n");
            for (name, st) in spans.iter() {
                out.push_str(&format!(
                    "  {:<24} {:>8} {:>10.4}s {:>10.1}us {:>10.1}us{}\n",
                    name,
                    st.count,
                    st.total_ns as f64 / 1e9,
                    st.mean_ns() / 1e3,
                    st.quantile_ns(0.95) as f64 / 1e3,
                    if st.truncated() {
                        format!(
                            "  (percentiles truncated: {} samples dropped)",
                            st.samples_dropped()
                        )
                    } else {
                        String::new()
                    },
                ));
            }
        }
        out
    }
}

impl Profiler for SpanProfiler {
    type Span<'a> = SpanGuard<'a>;

    fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let d = self.depth.get() + 1;
        self.depth.set(d);
        self.max_depth.set(self.max_depth.get().max(d));
        self.open.set(self.open.get() + 1);
        SpanGuard { prof: self, name, start: Instant::now() }
    }

    fn add(&self, counter: Counter, delta: u64) {
        let cell = &self.counters[counter as usize];
        cell.set(cell.get().saturating_add(delta));
    }

    fn record_max(&self, counter: Counter, value: u64) {
        let cell = &self.counters[counter as usize];
        if value > cell.get() {
            cell.set(value);
        }
    }
}

/// RAII guard from [`SpanProfiler::span`]; records the elapsed time when
/// dropped. Guards nest: dropping out of order only skews the depth
/// bookkeeping, never the timings.
#[must_use = "a span guard records its timing when dropped"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    prof: &'a SpanProfiler,
    name: &'static str,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.prof.close(self.name, ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn counters_add_and_record_max() {
        let p = SpanProfiler::new();
        p.inc(Counter::EventsProcessed);
        p.add(Counter::EventsProcessed, 4);
        assert_eq!(p.counter(Counter::EventsProcessed), 5);
        p.record_max(Counter::QueuePeakDepth, 7);
        p.record_max(Counter::QueuePeakDepth, 3);
        assert_eq!(p.counter(Counter::QueuePeakDepth), 7);
        assert_eq!(p.counter(Counter::TasksLaunched), 0);
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let p = SpanProfiler::new();
        {
            let _outer = p.span("outer");
            {
                let _inner = p.span("inner");
                let _deeper = p.span("inner2");
            }
            let _sibling = p.span("inner");
        }
        assert_eq!(p.max_depth(), 3);
        assert!(p.balanced());
        let inner = p.span_stat("inner").unwrap();
        assert_eq!(inner.count, 2);
        assert!(inner.min_ns <= inner.max_ns);
        assert_eq!(p.span_stat("outer").unwrap().count, 1);
        assert_eq!(p.span_names(), vec!["inner", "inner2", "outer"]);
    }

    #[test]
    fn leaked_guard_is_visible_as_unbalanced() {
        let p = SpanProfiler::new();
        let guard = p.span("leaky");
        assert_eq!(p.open_spans(), 1);
        std::mem::forget(guard);
        // Leaked: still counted open, and the span was never recorded.
        assert!(!p.balanced());
        assert_eq!(p.open_spans(), 1);
        assert!(p.span_stat("leaky").is_none());
        // Later spans are unaffected.
        drop(p.span("ok"));
        assert_eq!(p.span_stat("ok").unwrap().count, 1);
        assert_eq!(p.open_spans(), 1);
    }

    #[test]
    fn out_of_order_drop_still_records_both() {
        let p = SpanProfiler::new();
        let a = p.span("a");
        let b = p.span("b");
        drop(a); // dropped before the inner guard `b`
        drop(b);
        assert!(p.balanced());
        assert_eq!(p.span_stat("a").unwrap().count, 1);
        assert_eq!(p.span_stat("b").unwrap().count, 1);
    }

    #[test]
    fn quantiles_single_sample_and_many() {
        let mut st = SpanStat::default();
        st.record(500);
        assert_eq!(st.quantile_ns(0.5), 500);
        assert_eq!(st.quantile_ns(0.99), 500);
        assert_eq!(st.min_ns, 500);
        assert_eq!(st.max_ns, 500);
        let mut many = SpanStat::default();
        for v in 1..=100 {
            many.record(v);
        }
        assert_eq!(many.quantile_ns(0.50), 50);
        assert_eq!(many.quantile_ns(0.95), 95);
        assert_eq!(many.quantile_ns(1.0), 100);
        assert_eq!(many.quantile_ns(0.0), 1);
        assert_eq!(many.count, 100);
    }

    #[test]
    fn over_cap_samples_are_reported_as_truncation() {
        let mut st = SpanStat::default();
        for v in 0..(SAMPLE_CAP as u64 + 10) {
            st.record(v);
        }
        assert_eq!(st.count, SAMPLE_CAP as u64 + 10);
        assert_eq!(st.samples_retained(), SAMPLE_CAP);
        assert_eq!(st.samples_dropped(), 10);
        assert!(st.truncated());
        // Aggregates stay exact past the cap; percentiles see only the
        // retained prefix (here 0..SAMPLE_CAP).
        assert_eq!(st.max_ns, SAMPLE_CAP as u64 + 9);
        assert_eq!(st.quantile_ns(1.0), SAMPLE_CAP as u64 - 1);
        // An under-cap stat reports no truncation.
        let mut small = SpanStat::default();
        small.record(7);
        assert!(!small.truncated());
        assert_eq!(small.samples_dropped(), 0);
        assert_eq!(small.samples_retained(), 1);
    }

    #[test]
    fn truncation_flags_reach_the_json_and_summary() {
        let p = SpanProfiler::new();
        drop(p.span("tiny"));
        assert_eq!(p.total_samples_dropped(), 0);
        let doc = p.to_json();
        validate(&doc).unwrap();
        assert!(doc.contains("\"samples_retained\":1"));
        assert!(doc.contains("\"samples_dropped\":0"));
        assert!(doc.contains("\"truncated\":false"));
        assert!(!p.summary().contains("truncated"));
    }

    #[test]
    fn empty_stat_quantile_is_zero() {
        let st = SpanStat::default();
        assert_eq!(st.quantile_ns(0.5), 0);
        assert_eq!(st.mean_ns(), 0.0);
    }

    #[test]
    fn json_report_is_valid_and_stable() {
        let p = SpanProfiler::new();
        p.add(Counter::DispatchDecisions, 3);
        drop(p.span("alpha"));
        let doc = p.to_json();
        validate(&doc).unwrap();
        assert!(doc.contains("\"dispatch_decisions\":3"));
        assert!(doc.contains("\"name\":\"alpha\""));
        assert!(doc.contains("\"open_spans\":0"));
        let doc2 = SpanProfiler::new().to_json();
        validate(&doc2).unwrap();
        assert!(doc2.contains("\"spans\":[]"));
    }

    #[test]
    fn null_profiler_is_inert() {
        let p = NullProfiler;
        assert!(!p.enabled());
        p.inc(Counter::EventsProcessed);
        p.add(Counter::TasksLaunched, 10);
        p.record_max(Counter::QueuePeakDepth, 99);
        #[allow(clippy::let_unit_value)]
        let _span = p.span("nothing");
    }

    #[test]
    fn summary_mentions_counters_and_spans() {
        let p = SpanProfiler::new();
        drop(p.span("stage"));
        let s = p.summary();
        assert!(s.contains("events_processed"));
        assert!(s.contains("stage"));
    }
}
