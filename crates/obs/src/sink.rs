//! Event sinks: where the simulator's event stream goes.
//!
//! The simulator is generic over [`EventSink`], so with the default
//! [`NullSink`] the whole tracing path compiles away — `enabled()` returns
//! `false` as a compile-time constant and `emit` is an empty inline body.

use crate::event::Event;
use std::io::Write;

/// Consumer of simulator [`Event`]s.
///
/// Implementors receive every event in simulated-time order. Sites that must
/// do nontrivial work *before* emitting (e.g. building a
/// [`Event::Decision`] candidate list) should guard on [`EventSink::enabled`]
/// so the work is skipped entirely when tracing is off.
pub trait EventSink {
    /// Whether this sink wants events at all. Default `true`; [`NullSink`]
    /// returns `false` so callers can skip event construction.
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one event.
    fn emit(&mut self, event: &Event);
}

/// Forwarding impl so `&mut S` can be passed where a sink is consumed by value.
impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn emit(&mut self, event: &Event) {
        (**self).emit(event)
    }
}

/// The zero-overhead default sink: drops everything, reports disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn emit(&mut self, _event: &Event) {}
}

/// In-memory sink that keeps every event; handy in tests and examples.
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    /// All events received, in emission order.
    pub events: Vec<Event>,
}

impl RecordingSink {
    /// New empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count events for which `pred` holds.
    pub fn count<F: Fn(&Event) -> bool>(&self, pred: F) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

impl EventSink for RecordingSink {
    fn emit(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Streams each event as one JSON object per line (JSONL) to a writer.
///
/// IO errors are latched rather than panicking mid-simulation; check
/// [`JsonlSink::finish`]. Dropping the sink without calling `finish`
/// flushes the writer (errors at that point are swallowed — call `finish`
/// to observe them), so buffered lines are never silently lost.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: Option<W>,
    lines: u64,
    error: Option<std::io::Error>,
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Create a file-backed sink buffered with `BufWriter`, so traced runs
    /// pay one syscall per buffer instead of one per event.
    ///
    /// # Errors
    /// Returns the error from creating the file.
    pub fn create<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(std::io::BufWriter::new(file)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer. Consider `BufWriter` for file targets (or use
    /// [`JsonlSink::create`]).
    pub fn new(writer: W) -> Self {
        Self { writer: Some(writer), lines: 0, error: None }
    }

    /// Number of lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flush and return the writer, or the first IO error encountered.
    ///
    /// # Errors
    /// Returns the latched write error, or the flush error, if any.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut writer = self.writer.take().expect("writer only taken by finish/drop");
        writer.flush()?;
        Ok(writer)
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn emit(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.to_json();
        line.push('\n');
        let writer = self.writer.as_mut().expect("writer only taken by finish/drop");
        match writer.write_all(line.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if let Some(writer) = self.writer.as_mut() {
            let _ = writer.flush();
        }
    }
}

/// Fan one event stream out to two sinks (`Tee<A, Tee<B, C>>` chains further).
#[derive(Debug, Default)]
pub struct Tee<A, B> {
    /// First receiver.
    pub a: A,
    /// Second receiver.
    pub b: B,
}

impl<A, B> Tee<A, B> {
    /// Combine two sinks.
    pub fn new(a: A, b: B) -> Self {
        Self { a, b }
    }
}

impl<A: EventSink, B: EventSink> EventSink for Tee<A, B> {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    fn emit(&mut self, event: &Event) {
        if self.a.enabled() {
            self.a.emit(event);
        }
        if self.b.enabled() {
            self.b.emit(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::QueryId;
    use crate::json::validate;

    fn ev(t: f64) -> Event {
        Event::QueryStart { t, query: QueryId(1) }
    }

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        sink.emit(&ev(1.0));
    }

    #[test]
    fn recording_sink_keeps_order() {
        let mut sink = RecordingSink::new();
        assert!(sink.enabled());
        sink.emit(&ev(1.0));
        sink.emit(&ev(2.0));
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[1].time(), 2.0);
        assert_eq!(sink.count(|e| e.time() > 1.5), 1);
    }

    #[test]
    fn jsonl_sink_writes_one_valid_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        for t in [0.0, 1.5, 3.0] {
            sink.emit(&ev(t));
        }
        assert_eq!(sink.lines(), 3);
        let buf = sink.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            validate(line).unwrap();
        }
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        use std::cell::RefCell;
        use std::io::BufWriter;
        use std::rc::Rc;

        /// Writer that only publishes to the shared buffer on `flush`, and
        /// deliberately does NOT flush on drop — so the data can only reach
        /// the target through `JsonlSink`'s explicit flush-on-drop.
        struct FlushOnly {
            pending: Vec<u8>,
            target: Rc<RefCell<Vec<u8>>>,
        }
        impl Write for FlushOnly {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.pending.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.target.borrow_mut().extend_from_slice(&self.pending);
                self.pending.clear();
                Ok(())
            }
        }

        let target = Rc::new(RefCell::new(Vec::new()));
        {
            let writer = FlushOnly { pending: Vec::new(), target: Rc::clone(&target) };
            let mut sink = JsonlSink::new(BufWriter::new(writer));
            sink.emit(&ev(1.0));
            sink.emit(&ev(2.0));
            // Buffered: nothing has reached the target yet.
            assert_eq!(target.borrow().len(), 0);
            // Dropped without finish(): flush-on-drop must push the lines out.
        }
        let text = String::from_utf8(target.borrow().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            validate(line).unwrap();
        }
    }

    #[test]
    fn jsonl_create_writes_buffered_file() {
        let path =
            std::env::temp_dir().join(format!("sapred_jsonl_test_{}.jsonl", std::process::id()));
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.emit(&ev(1.0));
            let _ = sink.finish().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tee_forwards_to_both_and_skips_disabled() {
        let mut tee = Tee::new(RecordingSink::new(), RecordingSink::new());
        assert!(tee.enabled());
        tee.emit(&ev(1.0));
        assert_eq!(tee.a.events.len(), 1);
        assert_eq!(tee.b.events.len(), 1);

        let null_pair = Tee::new(NullSink, NullSink);
        assert!(!null_pair.enabled());
    }

    #[test]
    fn mut_ref_forwarding_works() {
        let mut rec = RecordingSink::new();
        {
            let as_ref: &mut RecordingSink = &mut rec;
            assert!(as_ref.enabled());
            as_ref.emit(&ev(1.0));
        }
        assert_eq!(rec.events.len(), 1);
    }
}
