//! Chrome `trace_event` exporter.
//!
//! [`ChromeTraceSink`] turns the event stream into a JSON document loadable
//! by `chrome://tracing` / Perfetto. Layout:
//!
//! - **pid 1 "cluster"** — one thread track per container slot
//!   (`tid = node * 1000 + slot`), holding complete (`ph:"X"`) spans for
//!   every task placed on that slot.
//! - **pid 2 "queries"** — one thread track per query, holding a span for the
//!   whole query (arrival → finish) and one per job (first task start →
//!   finish).
//! - **pid 1, tid 999999 "scheduler"** — instant (`ph:"i"`) events for
//!   scheduler decisions, with candidate scores in `args`.
//!
//! Timestamps are microseconds (`ts = t * 1e6`), as the format requires.

use crate::event::{Event, TaskPhase};
use crate::ids::{JobId, NodeId, QueryId};
use crate::json::{array, quoted, Obj};
use crate::sink::EventSink;
use std::collections::HashMap;
use std::io::Write;

const CLUSTER_PID: u64 = 1;
const QUERY_PID: u64 = 2;
const SCHED_TID: u64 = 999_999;

/// Accumulates Chrome trace events in memory; call [`ChromeTraceSink::write`]
/// after the run.
#[derive(Debug, Clone, Default)]
pub struct ChromeTraceSink {
    // Pre-rendered trace-event JSON objects.
    spans: Vec<String>,
    // (node, slot) slots that appeared, for thread metadata.
    slots_seen: HashMap<(NodeId, usize), ()>,
    // query index -> (name, arrival time)
    query_open: HashMap<QueryId, (std::sync::Arc<str>, f64)>,
    // (query, job) -> first task start time
    job_open: HashMap<(QueryId, JobId), f64>,
    // (node, slot) -> start time of the attempt currently occupying it;
    // lets killed attempts (which never emit TaskFinish) close their spans.
    task_open: HashMap<(NodeId, usize), f64>,
    queries_seen: Vec<QueryId>,
}

fn us(t: f64) -> f64 {
    t * 1e6
}

fn slot_tid(node: NodeId, slot: usize) -> u64 {
    u64::from(node) * 1000 + slot as u64
}

fn complete(name: &str, pid: u64, tid: u64, start: f64, end: f64, args: Option<String>) -> String {
    let mut o = Obj::new()
        .str("name", name)
        .str("ph", "X")
        .num("ts", us(start))
        .num("dur", us((end - start).max(0.0)))
        .int("pid", pid)
        .int("tid", tid);
    if let Some(a) = args {
        o = o.raw("args", &a);
    }
    o.finish()
}

impl ChromeTraceSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of span/instant records collected so far (metadata excluded).
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    fn metadata(&self) -> Vec<String> {
        let meta = |name: &str, pid: u64, tid: Option<u64>, value: &str| {
            let mut o = Obj::new()
                .str("name", name)
                .str("ph", "M")
                .int("pid", pid)
                .raw("args", &Obj::new().str("name", value).finish());
            if let Some(tid) = tid {
                o = o.int("tid", tid);
            }
            o.finish()
        };
        let mut out = vec![
            meta("process_name", CLUSTER_PID, None, "cluster"),
            meta("process_name", QUERY_PID, None, "queries"),
            meta("thread_name", CLUSTER_PID, Some(SCHED_TID), "scheduler"),
        ];
        let mut slots: Vec<_> = self.slots_seen.keys().copied().collect();
        slots.sort_unstable();
        for (node, slot) in slots {
            out.push(meta(
                "thread_name",
                CLUSTER_PID,
                Some(slot_tid(node, slot)),
                &format!("node{node} slot{slot}"),
            ));
        }
        let mut queries = self.queries_seen.clone();
        queries.sort_unstable();
        queries.dedup();
        for q in queries {
            out.push(meta("thread_name", QUERY_PID, Some(u64::from(q)), &format!("query {q}")));
        }
        out
    }

    // One instant (`ph:"i"`) record on the scheduler track.
    fn instant(&mut self, name: &str, t: f64, args: String) {
        self.spans.push(
            Obj::new()
                .str("name", name)
                .str("ph", "i")
                .str("s", "t")
                .num("ts", us(t))
                .int("pid", CLUSTER_PID)
                .int("tid", SCHED_TID)
                .raw("args", &args)
                .finish(),
        );
    }

    /// Serialize the collected trace as a Chrome `trace_event` JSON document.
    ///
    /// # Errors
    /// Propagates writer IO errors.
    pub fn write<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let mut events = self.metadata();
        events.extend(self.spans.iter().cloned());
        let doc =
            Obj::new().str("displayTimeUnit", "ms").raw("traceEvents", &array(events)).finish();
        w.write_all(doc.as_bytes())?;
        w.flush()
    }

    /// Serialize the trace to a file through a `BufWriter`, flushing before
    /// return, so the (potentially large) document costs buffered writes
    /// instead of one syscall per chunk.
    ///
    /// # Errors
    /// Propagates file creation and write errors.
    pub fn write_to_path<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write(std::io::BufWriter::new(file))
    }
}

impl EventSink for ChromeTraceSink {
    fn emit(&mut self, event: &Event) {
        match event {
            Event::QueryArrive { t, query, name } => {
                self.query_open.insert(*query, (name.clone(), *t));
                self.queries_seen.push(*query);
            }
            Event::QueryFinish { t, query } => {
                if let Some((name, arrival)) = self.query_open.remove(query) {
                    self.spans.push(complete(
                        &format!("query {query}: {name}"),
                        QUERY_PID,
                        u64::from(*query),
                        arrival,
                        *t,
                        None,
                    ));
                }
            }
            Event::JobStart { t, query, job } => {
                self.job_open.insert((*query, *job), *t);
            }
            Event::JobFinish { t, query, job, category } => {
                if let Some(start) = self.job_open.remove(&(*query, *job)) {
                    self.spans.push(complete(
                        &format!("job {query}.{job} [{category}]"),
                        QUERY_PID,
                        u64::from(*query),
                        start,
                        *t,
                        None,
                    ));
                }
            }
            Event::TaskStart { t, node, slot, .. } => {
                self.task_open.insert((*node, *slot), *t);
            }
            Event::TaskFinish { t, query, job, phase, node, slot, duration } => {
                self.slots_seen.insert((*node, *slot), ());
                self.task_open.remove(&(*node, *slot));
                let label = match phase {
                    TaskPhase::Map => "map",
                    TaskPhase::Reduce => "reduce",
                };
                self.spans.push(complete(
                    &format!("{label} {query}.{job}"),
                    CLUSTER_PID,
                    slot_tid(*node, *slot),
                    t - duration,
                    *t,
                    None,
                ));
            }
            Event::TaskFailed { t, query, job, phase, node, slot, attempt, ran_for, .. } => {
                self.slots_seen.insert((*node, *slot), ());
                self.task_open.remove(&(*node, *slot));
                self.spans.push(complete(
                    &format!("{} {query}.{job} FAILED", phase.label()),
                    CLUSTER_PID,
                    slot_tid(*node, *slot),
                    t - ran_for,
                    *t,
                    Some(Obj::new().int("attempt", *attempt as u64).finish()),
                ));
            }
            Event::TaskKilled { t, query, job, phase, node, slot, speculative, .. } => {
                self.slots_seen.insert((*node, *slot), ());
                if let Some(start) = self.task_open.remove(&(*node, *slot)) {
                    self.spans.push(complete(
                        &format!("{} {query}.{job} KILLED", phase.label()),
                        CLUSTER_PID,
                        slot_tid(*node, *slot),
                        start,
                        *t,
                        Some(Obj::new().bool("speculative", *speculative).finish()),
                    ));
                }
            }
            Event::NodeDown { t, node, reason, lost_maps } => {
                self.instant(
                    &format!("node {node} down ({})", reason.label()),
                    *t,
                    Obj::new()
                        .int("node", u64::from(*node))
                        .str("reason", reason.label())
                        .int("lost_maps", *lost_maps as u64)
                        .finish(),
                );
            }
            Event::NodeUp { t, node } => {
                self.instant(
                    &format!("node {node} up"),
                    *t,
                    Obj::new().int("node", u64::from(*node)).finish(),
                );
            }
            Event::SpeculativeLaunch { t, query, job, phase, node, slot } => {
                self.instant(
                    &format!("speculate {query}.{job}"),
                    *t,
                    Obj::new()
                        .str("phase", phase.label())
                        .int("node", u64::from(*node))
                        .int("slot", *slot as u64)
                        .finish(),
                );
            }
            Event::MapOutputLost { t, query, job, node, maps_lost } => {
                self.instant(
                    &format!("lost maps {query}.{job}"),
                    *t,
                    Obj::new()
                        .int("node", u64::from(*node))
                        .int("maps_lost", *maps_lost as u64)
                        .finish(),
                );
            }
            Event::Decision { t, policy, candidates, chosen_query, chosen_job, .. } => {
                let scores = array(candidates.iter().map(|c| {
                    Obj::new()
                        .int("query", u64::from(c.query))
                        .int("job", u64::from(c.job))
                        .num("score", c.score)
                        .finish()
                }));
                let args = Obj::new()
                    .raw("policy", &quoted(policy))
                    .int("chosen_query", u64::from(*chosen_query))
                    .int("chosen_job", u64::from(*chosen_job))
                    .raw("candidates", &scores)
                    .finish();
                self.spans.push(
                    Obj::new()
                        .str("name", &format!("pick {chosen_query}.{chosen_job}"))
                        .str("ph", "i")
                        .str("s", "t")
                        .num("ts", us(*t))
                        .int("pid", CLUSTER_PID)
                        .int("tid", SCHED_TID)
                        .raw("args", &args)
                        .finish(),
                );
            }
            Event::QueryShed { t, query, policy, wrd, will_resubmit, .. } => {
                self.instant(
                    &format!("shed query {query}"),
                    *t,
                    Obj::new()
                        .raw("policy", &quoted(policy))
                        .num("wrd", *wrd)
                        .bool("will_resubmit", *will_resubmit)
                        .finish(),
                );
            }
            Event::DeadlineMissed { t, query, deadline } => {
                self.instant(
                    &format!("deadline missed {query}"),
                    *t,
                    Obj::new().int("query", u64::from(*query)).num("deadline", *deadline).finish(),
                );
            }
            Event::DegradedModeEnter { t, trust, fallback } => {
                self.instant(
                    "degraded mode enter",
                    *t,
                    Obj::new().num("trust", *trust).raw("fallback", &quoted(fallback)).finish(),
                );
            }
            Event::DegradedModeExit { t, trust } => {
                self.instant("degraded mode exit", *t, Obj::new().num("trust", *trust).finish());
            }
            Event::PredictionQuarantined { t, query, job, quantity, substituted, .. } => {
                self.instant(
                    &format!("quarantine {query}.{job}"),
                    *t,
                    Obj::new()
                        .raw("quantity", &quoted(quantity.label()))
                        .num("substituted", *substituted)
                        .finish(),
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Candidate;
    use crate::json::validate;
    use sapred_plan::JobCategory;

    #[test]
    fn trace_document_is_valid_json_with_expected_tracks() {
        let mut sink = ChromeTraceSink::new();
        let events = [
            Event::QueryArrive { t: 0.0, query: QueryId(0), name: "q0".into() },
            Event::JobStart { t: 0.5, query: QueryId(0), job: JobId(0) },
            Event::Decision {
                t: 0.5,
                policy: "swrd",
                candidates: vec![Candidate { query: QueryId(0), job: JobId(0), score: 3.0 }],
                chosen_query: QueryId(0),
                chosen_job: JobId(0),
                phase: TaskPhase::Map,
                queue_depth: 1,
                free_containers: 4,
            },
            Event::TaskStart {
                t: 0.5,
                query: QueryId(0),
                job: JobId(0),
                phase: TaskPhase::Map,
                node: NodeId(1),
                slot: 2,
            },
            Event::TaskFinish {
                t: 2.5,
                query: QueryId(0),
                job: JobId(0),
                phase: TaskPhase::Map,
                node: NodeId(1),
                slot: 2,
                duration: 2.0,
            },
            Event::JobFinish {
                t: 2.5,
                query: QueryId(0),
                job: JobId(0),
                category: JobCategory::Extract,
            },
            Event::QueryFinish { t: 2.5, query: QueryId(0) },
        ];
        for ev in &events {
            sink.emit(ev);
        }
        // task span + decision instant + job span + query span
        assert_eq!(sink.span_count(), 4);

        let mut buf = Vec::new();
        sink.write(&mut buf).unwrap();
        let doc = String::from_utf8(buf).unwrap();
        validate(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("node1 slot2"));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"M\""));
        // Task span: started at 0.5 s → ts 500000 µs, dur 2 s → 2000000 µs.
        assert!(doc.contains("\"ts\":500000"), "{doc}");
        assert!(doc.contains("\"dur\":2000000"), "{doc}");
    }

    #[test]
    fn fault_events_produce_spans_and_instants() {
        use crate::event::DownReason;
        let mut sink = ChromeTraceSink::new();
        let events = [
            // A failed attempt: span reconstructed from ran_for.
            Event::TaskFailed {
                t: 2.0,
                query: QueryId(0),
                job: JobId(1),
                phase: TaskPhase::Map,
                node: NodeId(0),
                slot: 1,
                attempt: 2,
                ran_for: 0.5,
                will_retry: true,
                retry_at: 3.0,
            },
            // A killed attempt: span closed from its TaskStart.
            Event::TaskStart {
                t: 1.0,
                query: QueryId(0),
                job: JobId(1),
                phase: TaskPhase::Map,
                node: NodeId(1),
                slot: 0,
            },
            Event::TaskKilled {
                t: 2.5,
                query: QueryId(0),
                job: JobId(1),
                phase: TaskPhase::Map,
                node: NodeId(1),
                slot: 0,
                speculative: false,
                requeued: true,
            },
            Event::NodeDown { t: 2.5, node: NodeId(1), reason: DownReason::Crash, lost_maps: 2 },
            Event::MapOutputLost {
                t: 2.5,
                query: QueryId(0),
                job: JobId(1),
                node: NodeId(1),
                maps_lost: 2,
            },
            Event::NodeUp { t: 5.5, node: NodeId(1) },
            Event::SpeculativeLaunch {
                t: 6.0,
                query: QueryId(0),
                job: JobId(1),
                phase: TaskPhase::Reduce,
                node: NodeId(0),
                slot: 2,
            },
        ];
        for ev in &events {
            sink.emit(ev);
        }
        // failed span + killed span + 4 instants
        assert_eq!(sink.span_count(), 6);
        let mut buf = Vec::new();
        sink.write(&mut buf).unwrap();
        let doc = String::from_utf8(buf).unwrap();
        validate(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert!(doc.contains("map 0.1 FAILED"));
        // Failed span starts at t - ran_for = 1.5 s → 1500000 µs.
        assert!(doc.contains("\"ts\":1500000"), "{doc}");
        assert!(doc.contains("map 0.1 KILLED"));
        assert!(doc.contains("node 1 down (crash)"));
        assert!(doc.contains("node 1 up"));
        assert!(doc.contains("speculate 0.1"));
        assert!(doc.contains("lost maps 0.1"));
    }

    #[test]
    fn lifecycle_events_produce_instants() {
        use crate::event::Quantity;
        let mut sink = ChromeTraceSink::new();
        let events = [
            Event::QueryShed {
                t: 1.0,
                query: QueryId(2),
                policy: "largest_wrd",
                wrd: 33.0,
                will_resubmit: true,
                resubmit_at: 2.0,
            },
            Event::DeadlineMissed { t: 4.0, query: QueryId(1), deadline: 3.0 },
            Event::DegradedModeEnter { t: 4.5, trust: 0.2, fallback: "FIFO" },
            Event::DegradedModeExit { t: 6.0, trust: 0.7 },
            Event::PredictionQuarantined {
                t: 4.4,
                query: QueryId(0),
                job: JobId(1),
                category: JobCategory::Join,
                quantity: Quantity::ReduceTask,
                predicted: -1.0,
                substituted: 0.0,
            },
        ];
        for ev in &events {
            sink.emit(ev);
        }
        assert_eq!(sink.span_count(), 5);
        let mut buf = Vec::new();
        sink.write(&mut buf).unwrap();
        let doc = String::from_utf8(buf).unwrap();
        validate(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert!(doc.contains("shed query 2"));
        assert!(doc.contains("deadline missed 1"));
        assert!(doc.contains("degraded mode enter"));
        assert!(doc.contains("degraded mode exit"));
        assert!(doc.contains("quarantine 0.1"));
    }

    #[test]
    fn write_to_path_produces_valid_flushed_file() {
        let mut sink = ChromeTraceSink::new();
        sink.emit(&Event::QueryArrive { t: 0.0, query: QueryId(0), name: "q".into() });
        sink.emit(&Event::QueryFinish { t: 1.0, query: QueryId(0) });
        let path =
            std::env::temp_dir().join(format!("sapred_trace_test_{}.json", std::process::id()));
        sink.write_to_path(&path).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        validate(&doc).unwrap();
        assert!(doc.contains("\"traceEvents\""));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn kill_without_start_is_dropped_not_corrupted() {
        let mut sink = ChromeTraceSink::new();
        sink.emit(&Event::TaskKilled {
            t: 1.0,
            query: QueryId(0),
            job: JobId(0),
            phase: TaskPhase::Map,
            node: NodeId(0),
            slot: 0,
            speculative: true,
            requeued: false,
        });
        assert_eq!(sink.span_count(), 0);
    }

    #[test]
    fn unfinished_spans_are_dropped_not_corrupted() {
        let mut sink = ChromeTraceSink::new();
        sink.emit(&Event::QueryArrive { t: 0.0, query: QueryId(3), name: "open".into() });
        sink.emit(&Event::JobStart { t: 0.1, query: QueryId(3), job: JobId(0) });
        let mut buf = Vec::new();
        sink.write(&mut buf).unwrap();
        let doc = String::from_utf8(buf).unwrap();
        validate(&doc).unwrap();
        assert_eq!(sink.span_count(), 0);
        // The query still gets its thread-name metadata.
        assert!(doc.contains("query 3"));
    }
}
