//! Hand-construction of query DAGs for shapes outside the SQL subset.
//!
//! Some paper workloads (e.g. TPC-H Q17 with its correlated scalar subquery)
//! compile in real Hive to DAG shapes our SQL front end does not produce.
//! [`DagBuilder`] constructs those DAGs directly while carrying exactly the
//! same per-job semantics (table predicates, projections, keys) so that the
//! estimator and ground-truth executor treat them identically to compiled
//! queries.

use crate::dag::{InputSrc, JobKind, MrJob, QueryDag, TableInput};
use sapred_relation::expr::Predicate;

/// Incremental builder for a [`QueryDag`]. Methods return the new job's id,
/// which later jobs reference through [`DagBuilder::job`].
#[derive(Debug, Default)]
pub struct DagBuilder {
    jobs: Vec<MrJob>,
}

impl DagBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An input reading `table` with a pushed predicate and projection.
    pub fn table(
        table: impl Into<String>,
        predicate: Predicate,
        projection: impl IntoIterator<Item = impl Into<String>>,
    ) -> InputSrc {
        InputSrc::Table(TableInput {
            table: table.into(),
            predicate,
            projection: projection.into_iter().map(Into::into).collect(),
        })
    }

    /// An input reading a previously added job's output.
    pub fn job(id: usize) -> InputSrc {
        InputSrc::Job(id)
    }

    fn push(&mut self, kind: JobKind) -> usize {
        let id = self.jobs.len();
        for d in kind.inputs().iter().filter_map(|i| i.job_dep()) {
            assert!(d < id, "job input {d} does not exist yet");
        }
        self.jobs.push(MrJob::new(id, kind));
        id
    }

    /// Add an equi-join job.
    pub fn join(
        &mut self,
        left: InputSrc,
        right: InputSrc,
        left_key: impl Into<String>,
        right_key: impl Into<String>,
    ) -> usize {
        self.push(JobKind::Join {
            left,
            right,
            left_key: left_key.into(),
            right_key: right_key.into(),
        })
    }

    /// Add a group-by job.
    pub fn groupby(
        &mut self,
        input: InputSrc,
        keys: impl IntoIterator<Item = impl Into<String>>,
        n_aggs: usize,
    ) -> usize {
        self.push(JobKind::Groupby {
            input,
            keys: keys.into_iter().map(Into::into).collect(),
            n_aggs,
        })
    }

    /// Add a sort (order-by) job with optional limit.
    pub fn sort(
        &mut self,
        input: InputSrc,
        keys: impl IntoIterator<Item = impl Into<String>>,
        limit: Option<u64>,
    ) -> usize {
        self.push(JobKind::Sort { input, keys: keys.into_iter().map(Into::into).collect(), limit })
    }

    /// Add a map-only filter/project job.
    pub fn map_only(&mut self, input: InputSrc) -> usize {
        self.push(JobKind::MapOnly { input })
    }

    /// Finish, producing a validated DAG.
    pub fn build(self, name: impl Into<String>) -> QueryDag {
        QueryDag::new(name, self.jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::JobCategory;
    use sapred_relation::expr::{CmpOp, Predicate};

    #[test]
    fn q17_shape() {
        // TPC-H Q17 in Hive 0.10 compiles to ~4 jobs:
        //   J0 groupby lineitem by l_partkey (avg quantity)
        //   J1 join lineitem x part (brand/container filter)
        //   J2 join J1 x J0 on partkey
        //   J3 global aggregate
        let mut b = DagBuilder::new();
        let j0 = b.groupby(
            DagBuilder::table("lineitem", Predicate::True, ["l_partkey", "l_quantity"]),
            ["l_partkey"],
            1,
        );
        let j1 = b.join(
            DagBuilder::table(
                "lineitem",
                Predicate::True,
                ["l_partkey", "l_quantity", "l_extendedprice"],
            ),
            DagBuilder::table(
                "part",
                Predicate::cmp("p_brand", CmpOp::Eq, 3.0).and(Predicate::cmp(
                    "p_container",
                    CmpOp::Eq,
                    7.0,
                )),
                ["p_partkey"],
            ),
            "l_partkey",
            "p_partkey",
        );
        let j2 = b.join(DagBuilder::job(j1), DagBuilder::job(j0), "l_partkey", "l_partkey");
        let _j3 = b.groupby(DagBuilder::job(j2), Vec::<String>::new(), 1);
        let d = b.build("q17");
        assert_eq!(d.len(), 4);
        assert_eq!(d.roots(), vec![0, 1]);
        assert_eq!(d.depth(), 3);
        assert_eq!(d.job(2).deps(), vec![1, 0]);
        assert_eq!(d.job(3).category(), JobCategory::Groupby);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_reference_panics() {
        let mut b = DagBuilder::new();
        b.groupby(DagBuilder::job(3), ["k"], 0);
    }
}
