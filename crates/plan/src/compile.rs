//! Compile an [`AnalyzedQuery`] into a [`QueryDag`], Hive-0.10 style:
//! one Join job per equi-join (left-deep), one Groupby job for the
//! aggregation, one Extract job for order-by/limit, or a single map-only
//! Extract job for pure filter/project queries.
//!
//! [`compile_with`] additionally supports *map-join conversion*
//! (`hive.auto.convert.join`, off by default in the paper's Hive 0.10):
//! joins whose build side is below a size threshold fold into the
//! consuming job's map phase as [`BroadcastJoin`] minor operators,
//! shortening the DAG.

use crate::dag::{BroadcastJoin, InputSrc, JobKind, MrJob, QueryDag, TableInput};
use sapred_query::analyze::AnalyzedQuery;
use sapred_relation::stats::Catalog;

/// Planner options.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlannerConfig {
    /// Joins whose build-side table is at most this many modeled bytes are
    /// converted to map-side joins. `0.0` (the default) disables
    /// conversion, matching Hive 0.10's default configuration.
    pub map_join_threshold: f64,
}

/// Compile with Hive 0.10 defaults (no map-join conversion).
pub fn compile(name: impl Into<String>, query: &AnalyzedQuery) -> QueryDag {
    compile_inner(name, query, None, &PlannerConfig::default())
}

/// Compile with explicit planner options; `catalog` provides the table
/// sizes map-join conversion decides on.
pub fn compile_with(
    name: impl Into<String>,
    query: &AnalyzedQuery,
    catalog: &Catalog,
    config: &PlannerConfig,
) -> QueryDag {
    compile_inner(name, query, Some(catalog), config)
}

fn compile_inner(
    name: impl Into<String>,
    query: &AnalyzedQuery,
    catalog: Option<&Catalog>,
    config: &PlannerConfig,
) -> QueryDag {
    let mut jobs: Vec<MrJob> = Vec::new();
    let scan_input = |i: usize| -> TableInput {
        let s = &query.scans[i];
        TableInput {
            table: s.table.clone(),
            predicate: s.predicate.clone(),
            projection: s.projection.clone(),
        }
    };
    let table_bytes = |t: &TableInput| -> f64 {
        catalog.and_then(|c| c.get(&t.table)).map_or(f64::INFINITY, |s| s.modeled_bytes())
    };

    // Left-deep join chain. The accumulated stream starts as scan 0 and
    // absorbs one scan per join; small build sides become pending
    // broadcast joins that attach to the next emitted job.
    let mut stream: Option<InputSrc> = None;
    let mut pending: Vec<BroadcastJoin> = Vec::new();
    let push_job = |jobs: &mut Vec<MrJob>, kind: JobKind, pending: &mut Vec<BroadcastJoin>| {
        let id = jobs.len();
        jobs.push(MrJob { id, kind, broadcasts: std::mem::take(pending) });
        id
    };

    for j in &query.joins {
        // The stream starts as the first join's left scan and then absorbs
        // one table per join (reduce-side or broadcast).
        if stream.is_none() {
            stream = Some(InputSrc::Table(scan_input(j.left_scan)));
        }
        let right = scan_input(j.right_scan);
        if config.map_join_threshold > 0.0 && table_bytes(&right) <= config.map_join_threshold {
            // Minor operator: broadcast the small table into the map phase
            // of whatever shuffle job comes next.
            pending.push(BroadcastJoin {
                table: right,
                stream_key: j.left_col.clone(),
                table_key: j.right_col.clone(),
            });
            continue;
        }
        // If the stream itself is still a bare small table (no broadcasts
        // pending), flip sides: broadcast the stream table and let the big
        // right table become the stream.
        if pending.is_empty() {
            if let Some(InputSrc::Table(t)) = &stream {
                if config.map_join_threshold > 0.0 && table_bytes(t) <= config.map_join_threshold {
                    pending.push(BroadcastJoin {
                        table: t.clone(),
                        stream_key: j.right_col.clone(),
                        table_key: j.left_col.clone(),
                    });
                    stream = Some(InputSrc::Table(right));
                    continue;
                }
            }
        }
        let left = stream.take().expect("stream seeded above");
        let id = push_job(
            &mut jobs,
            JobKind::Join {
                left,
                right: InputSrc::Table(right),
                left_key: j.left_col.clone(),
                right_key: j.right_col.clone(),
            },
            &mut pending,
        );
        stream = Some(InputSrc::Job(id));
    }

    // Aggregation job. `SELECT DISTINCT` without aggregates is a group-by
    // on the selected columns (how Hive compiles it).
    let group_keys = if !query.group_by.is_empty() || !query.aggs.is_empty() {
        Some(query.group_by.clone())
    } else if query.distinct {
        let mut keys = query.select_cols.clone();
        keys.dedup();
        Some(keys)
    } else {
        None
    };
    if let Some(keys) = group_keys {
        let input = stream.take().unwrap_or_else(|| InputSrc::Table(scan_input(0)));
        let id = push_job(
            &mut jobs,
            JobKind::Groupby { input, keys, n_aggs: query.aggs.len() },
            &mut pending,
        );
        stream = Some(InputSrc::Job(id));
    }

    // Sort / limit job.
    if !query.order_by.is_empty() {
        let input = stream.take().unwrap_or_else(|| InputSrc::Table(scan_input(0)));
        let id = push_job(
            &mut jobs,
            JobKind::Sort {
                input,
                keys: query.order_by.iter().map(|(c, _)| c.clone()).collect(),
                limit: query.limit,
            },
            &mut pending,
        );
        stream = Some(InputSrc::Job(id));
    } else if query.limit.is_some() && stream.is_some() {
        // LIMIT without ORDER BY on a multi-job query: a trailing Extract
        // job that truncates (Hive emits a small fetch job).
        let input = stream.take().expect("checked");
        let id = push_job(
            &mut jobs,
            JobKind::Sort { input, keys: vec![], limit: query.limit },
            &mut pending,
        );
        stream = Some(InputSrc::Job(id));
    }

    if stream.is_none() {
        // Pure filter/project (possibly with only map-joins): one map-only
        // job carrying any pending broadcasts.
        push_job(
            &mut jobs,
            JobKind::MapOnly { input: InputSrc::Table(scan_input(0)) },
            &mut pending,
        );
    } else if !pending.is_empty() {
        // Broadcasts left over after the last shuffle job (e.g. a trailing
        // map-join): a map-only epilogue job applies them.
        let input = stream.take().expect("checked");
        push_job(&mut jobs, JobKind::MapOnly { input }, &mut pending);
    }

    QueryDag::new(name, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::JobCategory;
    use sapred_query::{analyze, parse};
    use sapred_relation::gen::{generate, Database, GenConfig};

    fn db() -> Database {
        generate(GenConfig::new(0.1).with_seed(5))
    }

    fn dag(sql: &str) -> QueryDag {
        let db = db();
        let a = analyze(&parse(sql).unwrap(), db.catalog(), &db).unwrap();
        compile("q", &a)
    }

    fn dag_mapjoin(sql: &str, threshold: f64) -> QueryDag {
        let db = db();
        let a = analyze(&parse(sql).unwrap(), db.catalog(), &db).unwrap();
        compile_with("q", &a, db.catalog(), &PlannerConfig { map_join_threshold: threshold })
    }

    #[test]
    fn q11_compiles_to_two_joins_and_groupby() {
        let d = dag("SELECT ps_partkey, sum(ps_supplycost*ps_availqty) \
             FROM nation n JOIN supplier s ON \
             s.s_nationkey=n.n_nationkey AND n.n_name<>'CHINA' \
             JOIN partsupp ps ON ps.ps_suppkey=s.s_suppkey \
             GROUP BY ps_partkey;");
        assert_eq!(d.len(), 3);
        assert_eq!(d.job(0).category(), JobCategory::Join);
        assert_eq!(d.job(1).category(), JobCategory::Join);
        assert_eq!(d.job(2).category(), JobCategory::Groupby);
        // Job 1's left side is job 0, right side scans partsupp.
        match &d.job(1).kind {
            JobKind::Join { left: InputSrc::Job(0), right: InputSrc::Table(t), .. } => {
                assert_eq!(t.table, "partsupp");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(d.depth(), 3);
    }

    #[test]
    fn groupby_then_sort() {
        let d = dag("SELECT l_partkey, sum(l_extendedprice) FROM lineitem \
             WHERE l_shipdate >= 100 GROUP BY l_partkey ORDER BY l_partkey LIMIT 20");
        assert_eq!(d.len(), 2);
        assert_eq!(d.job(0).category(), JobCategory::Groupby);
        match &d.job(1).kind {
            JobKind::Sort { input: InputSrc::Job(0), limit: Some(20), .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pure_filter_is_map_only() {
        let d = dag("SELECT l_partkey FROM lineitem WHERE l_quantity > 40");
        assert_eq!(d.len(), 1);
        assert_eq!(d.job(0).category(), JobCategory::Extract);
        assert!(!d.job(0).kind.has_reduce());
    }

    #[test]
    fn global_aggregate_has_empty_keys() {
        let d = dag("SELECT count(*) FROM orders WHERE o_totalprice > 100000");
        assert_eq!(d.len(), 1);
        match &d.job(0).kind {
            JobKind::Groupby { keys, n_aggs: 1, .. } => assert!(keys.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn order_only_is_single_sort() {
        let d = dag("SELECT o_orderkey FROM orders ORDER BY o_orderkey DESC");
        assert_eq!(d.len(), 1);
        assert_eq!(d.job(0).category(), JobCategory::Extract);
        assert!(d.job(0).kind.has_reduce());
    }

    #[test]
    fn select_distinct_becomes_groupby() {
        let d = dag("SELECT DISTINCT l_partkey, l_suppkey FROM lineitem WHERE l_quantity < 10");
        assert_eq!(d.len(), 1);
        match &d.job(0).kind {
            JobKind::Groupby { keys, n_aggs: 0, .. } => {
                assert_eq!(keys, &["l_partkey".to_string(), "l_suppkey".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn in_list_lowers_to_disjunction() {
        let d =
            dag("SELECT c_custkey FROM customer WHERE c_mktsegment IN ('BUILDING', 'MACHINERY')");
        match &d.job(0).kind {
            JobKind::MapOnly { input: InputSrc::Table(t) } => {
                // Two equality alternatives on the same column.
                assert_eq!(t.predicate.columns(), vec!["c_mktsegment"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn join_then_aggregate_like_q14() {
        let d = dag("SELECT sum(l_extendedprice*l_discount) FROM lineitem l \
             JOIN part p ON l.l_partkey = p.p_partkey \
             WHERE l_shipdate >= '1995-09-01' AND l_shipdate < '1995-10-01'");
        assert_eq!(d.len(), 2);
        assert_eq!(d.job(0).category(), JobCategory::Join);
        assert_eq!(d.job(1).category(), JobCategory::Groupby);
    }

    #[test]
    fn map_join_conversion_shortens_q11() {
        let sql = "SELECT ps_partkey, sum(ps_supplycost*ps_availqty) \
                   FROM nation n JOIN supplier s ON \
                   s.s_nationkey=n.n_nationkey AND n.n_name<>'CHINA' \
                   JOIN partsupp ps ON ps.ps_suppkey=s.s_suppkey \
                   GROUP BY ps_partkey;";
        // Without conversion: Join, Join, Groupby.
        assert_eq!(dag(sql).len(), 3);
        // nation (25 rows) fits any reasonable threshold; the tiny-scale
        // supplier table does too, so both joins fold into the map phase of
        // the group-by job: a single-job DAG with two broadcasts.
        let d = dag_mapjoin(sql, 1e9);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d.job(0).category(), JobCategory::Groupby);
        assert_eq!(d.job(0).broadcasts.len(), 2);
        // Broadcast tables still appear in the DAG's table inventory.
        assert!(d.tables().contains(&"nation"));
        assert!(d.tables().contains(&"supplier"));
    }

    #[test]
    fn map_join_threshold_respected() {
        let sql = "SELECT sum(l_extendedprice) FROM lineitem l \
                   JOIN part p ON l.l_partkey = p.p_partkey";
        // part is far larger than 1 KB: no conversion.
        let d = dag_mapjoin(sql, 1024.0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.job(0).category(), JobCategory::Join);
        assert!(d.job(0).broadcasts.is_empty());
    }

    #[test]
    fn partial_conversion_chain_keeps_stream_coherent() {
        // nation joins customer (small -> broadcast), then orders (big ->
        // reduce join). The reduce join's stream must still be nation with
        // the customer broadcast attached — this exact shape once panicked
        // in ground truth.
        let db = generate(GenConfig::new(10.0).with_seed(5));
        let sql = "SELECT n_name, sum(o_totalprice) FROM nation n                    JOIN customer c ON c.c_nationkey = n.n_nationkey                    JOIN orders o ON o.o_custkey = c.c_custkey GROUP BY n_name";
        let a = analyze(&parse(sql).unwrap(), db.catalog(), &db).unwrap();
        // Threshold between customer (~90 MB at 10 GB) and orders (~900 MB).
        let d = compile_with(
            "q5ish",
            &a,
            db.catalog(),
            &PlannerConfig { map_join_threshold: 300.0 * 1024.0 * 1024.0 },
        );
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d.job(0).category(), JobCategory::Join);
        assert_eq!(d.job(0).broadcasts.len(), 1);
        assert_eq!(d.job(0).broadcasts[0].table.table, "customer");
        // Ground truth must execute cleanly and produce nation-sized groups.
        let actuals = crate::ground_truth::execute_dag(&d, &db, 256.0 * 1024.0 * 1024.0);
        assert!(actuals[1].tuples_out <= 25.0);
        assert!(actuals[1].tuples_out > 0.0);
    }

    #[test]
    fn trailing_map_join_gets_epilogue_job() {
        // A join-only query (no group/sort) whose join converts: the
        // broadcast must still be applied somewhere — a map-only epilogue.
        let sql = "SELECT s_name, n_name FROM supplier s \
                   JOIN nation n ON s.s_nationkey = n.n_nationkey";
        let d = dag_mapjoin(sql, 1e9);
        assert_eq!(d.len(), 1);
        assert!(!d.job(0).kind.has_reduce());
        assert_eq!(d.job(0).broadcasts.len(), 1);
        assert_eq!(d.job(0).broadcasts[0].table.table, "nation");
    }
}
