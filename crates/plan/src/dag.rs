//! The DAG-of-MapReduce-jobs representation and the semantics attached to
//! every job — the payload of cross-layer percolation.

use sapred_relation::expr::Predicate;

/// Operator category of a job (paper §3.1): global shuffle operators are
/// *major* and define the job type; everything else rides along as minor
/// operators inside the job's map phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobCategory {
    /// Order-by / limit / plain filter-project jobs.
    Extract,
    /// Group-by (with map-side combine).
    Groupby,
    /// Equi-join of two inputs.
    Join,
}

impl std::fmt::Display for JobCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JobCategory::Extract => "Extract",
            JobCategory::Groupby => "Groupby",
            JobCategory::Join => "Join",
        };
        f.write_str(s)
    }
}

/// A base-table input of a job, with the predicate and projection the map
/// phase applies while scanning it.
#[derive(Debug, Clone, PartialEq)]
pub struct TableInput {
    /// Base table name.
    pub table: String,
    /// Predicate applied while scanning (pushed-down filter).
    pub predicate: Predicate,
    /// Columns that survive the map phase (empty means all).
    pub projection: Vec<String>,
}

/// Where a job reads its input from: a base table or another job's output.
#[derive(Debug, Clone, PartialEq)]
pub enum InputSrc {
    /// A base-table scan.
    Table(TableInput),
    /// The output of an earlier job in the same DAG.
    Job(usize),
}

impl InputSrc {
    /// The upstream job id, if this input is a job output.
    pub fn job_dep(&self) -> Option<usize> {
        match self {
            InputSrc::Job(j) => Some(*j),
            InputSrc::Table(_) => None,
        }
    }
}

/// The operator payload of one MapReduce job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// Equi-join `left.left_key = right.right_key`.
    Join {
        /// Streaming (left) input.
        left: InputSrc,
        /// Build (right) input.
        right: InputSrc,
        /// Join key column on the left input.
        left_key: String,
        /// Join key column on the right input.
        right_key: String,
    },
    /// Group-by with `n_aggs` aggregates; empty `keys` is a global aggregate.
    Groupby {
        /// The grouped input.
        input: InputSrc,
        /// Group-by key columns (empty = one global group).
        keys: Vec<String>,
        /// Number of aggregate expressions computed per group.
        n_aggs: usize,
    },
    /// Total-order sort with optional limit.
    Sort {
        /// The sorted input.
        input: InputSrc,
        /// Sort key columns.
        keys: Vec<String>,
        /// Optional LIMIT (nominal rows).
        limit: Option<u64>,
    },
    /// Map-only filter/project (no reduce phase).
    MapOnly {
        /// The scanned input.
        input: InputSrc,
    },
}

impl JobKind {
    /// The job category implied by the major operator.
    pub fn category(&self) -> JobCategory {
        match self {
            JobKind::Join { .. } => JobCategory::Join,
            JobKind::Groupby { .. } => JobCategory::Groupby,
            JobKind::Sort { .. } | JobKind::MapOnly { .. } => JobCategory::Extract,
        }
    }

    /// Inputs of this job in a stable order.
    pub fn inputs(&self) -> Vec<&InputSrc> {
        match self {
            JobKind::Join { left, right, .. } => vec![left, right],
            JobKind::Groupby { input, .. }
            | JobKind::Sort { input, .. }
            | JobKind::MapOnly { input } => {
                vec![input]
            }
        }
    }

    /// Whether the job has a reduce phase.
    pub fn has_reduce(&self) -> bool {
        !matches!(self, JobKind::MapOnly { .. })
    }
}

/// A map-side (broadcast) join executed inside a job's map phase: the small
/// table ships to every mapper (Hadoop's distributed cache) and joins
/// against the job's primary input before the shuffle. In the paper's
/// taxonomy this is a *minor* operator (§3.1) — it changes the job's data
/// flow but not its category.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastJoin {
    /// The broadcast (small) table with its pushed filter/projection.
    pub table: TableInput,
    /// Join key on the streaming (primary-input) side.
    pub stream_key: String,
    /// Join key on the broadcast table.
    pub table_key: String,
}

/// One MapReduce job in a query DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct MrJob {
    /// Index of this job within its [`QueryDag`].
    pub id: usize,
    /// The job's major operator and inputs.
    pub kind: JobKind,
    /// Map-side joins applied (in order) to the job's primary input before
    /// the major operator runs. Empty unless the planner converted small
    /// joins (Hive's `auto.convert.join`, off by default in v0.10).
    pub broadcasts: Vec<BroadcastJoin>,
}

impl MrJob {
    /// A job with no map-side joins.
    pub fn new(id: usize, kind: JobKind) -> Self {
        Self { id, kind, broadcasts: Vec::new() }
    }

    /// Operator category of this job.
    pub fn category(&self) -> JobCategory {
        self.kind.category()
    }

    /// Ids of jobs this job depends on.
    pub fn deps(&self) -> Vec<usize> {
        self.kind.inputs().iter().filter_map(|i| i.job_dep()).collect()
    }
}

/// A query compiled to a DAG of MapReduce jobs, in a valid topological order
/// (every job's dependencies have smaller ids).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryDag {
    /// Query name (for reports and scheduling telemetry).
    pub name: String,
    jobs: Vec<MrJob>,
}

impl QueryDag {
    /// Build a DAG, validating ids and topological ordering.
    ///
    /// # Panics
    /// Panics if job ids are not `0..n` in order or a dependency points
    /// forward (the compiler and builder only emit valid DAGs; hand-rolled
    /// construction errors should fail fast).
    pub fn new(name: impl Into<String>, jobs: Vec<MrJob>) -> Self {
        assert!(!jobs.is_empty(), "a query DAG needs at least one job");
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i, "job ids must be dense and ordered");
            for d in j.deps() {
                assert!(d < i, "dependency {d} of job {i} is not topologically earlier");
            }
        }
        Self { name: name.into(), jobs }
    }

    /// The jobs in topological (id) order.
    pub fn jobs(&self) -> &[MrJob] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the DAG has no jobs (never true for valid DAGs).
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The job with the given id.
    pub fn job(&self, id: usize) -> &MrJob {
        &self.jobs[id]
    }

    /// Jobs with no job dependencies (runnable at submission).
    pub fn roots(&self) -> Vec<usize> {
        self.jobs.iter().filter(|j| j.deps().is_empty()).map(|j| j.id).collect()
    }

    /// The terminal job (the DAG's result). By construction the last job.
    pub fn sink(&self) -> usize {
        self.jobs.len() - 1
    }

    /// Jobs that directly depend on `id`.
    pub fn dependents(&self, id: usize) -> Vec<usize> {
        self.jobs.iter().filter(|j| j.deps().contains(&id)).map(|j| j.id).collect()
    }

    /// All base tables read anywhere in the DAG (including broadcast-join
    /// side tables).
    pub fn tables(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .jobs
            .iter()
            .flat_map(|j| j.kind.inputs())
            .filter_map(|i| match i {
                InputSrc::Table(t) => Some(t.table.as_str()),
                InputSrc::Job(_) => None,
            })
            .chain(
                self.jobs.iter().flat_map(|j| j.broadcasts.iter().map(|b| b.table.table.as_str())),
            )
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Length (in jobs) of the longest dependency chain.
    pub fn depth(&self) -> usize {
        let mut depth = vec![1usize; self.jobs.len()];
        for (i, j) in self.jobs.iter().enumerate() {
            for d in j.deps() {
                depth[i] = depth[i].max(depth[d] + 1);
            }
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// Longest weighted dependency path: the DAG critical path given a
    /// per-job weight (e.g. predicted execution time). Used for query-level
    /// time prediction (paper §5.4).
    pub fn critical_path(&self, weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.jobs.len());
        let mut acc = vec![0.0f64; self.jobs.len()];
        for (i, j) in self.jobs.iter().enumerate() {
            let longest_dep = j.deps().iter().map(|&d| acc[d]).fold(0.0, f64::max);
            acc[i] = longest_dep + weights[i];
        }
        acc.into_iter().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapred_relation::expr::Predicate;

    fn scan(t: &str) -> InputSrc {
        InputSrc::Table(TableInput {
            table: t.to_string(),
            predicate: Predicate::True,
            projection: vec![],
        })
    }

    fn diamond() -> QueryDag {
        // 0: join(a,b); 1: groupby(job0); 2: map-only(c); 3: join(job1, job2)
        QueryDag::new(
            "diamond",
            vec![
                MrJob::new(
                    0,
                    JobKind::Join {
                        left: scan("a"),
                        right: scan("b"),
                        left_key: "k".into(),
                        right_key: "k".into(),
                    },
                ),
                MrJob::new(
                    1,
                    JobKind::Groupby { input: InputSrc::Job(0), keys: vec!["g".into()], n_aggs: 1 },
                ),
                MrJob::new(2, JobKind::MapOnly { input: scan("c") }),
                MrJob::new(
                    3,
                    JobKind::Join {
                        left: InputSrc::Job(1),
                        right: InputSrc::Job(2),
                        left_key: "g".into(),
                        right_key: "g".into(),
                    },
                ),
            ],
        )
    }

    #[test]
    fn roots_and_sink() {
        let d = diamond();
        assert_eq!(d.roots(), vec![0, 2]);
        assert_eq!(d.sink(), 3);
        assert_eq!(d.dependents(1), vec![3]);
        assert_eq!(d.depth(), 3);
    }

    #[test]
    fn tables_deduped_sorted() {
        let d = diamond();
        assert_eq!(d.tables(), vec!["a", "b", "c"]);
    }

    #[test]
    fn critical_path_weights() {
        let d = diamond();
        // Path 0→1→3 = 5 + 2 + 1 = 8 vs 2→3 = 3 + 1 = 4.
        assert_eq!(d.critical_path(&[5.0, 2.0, 3.0, 1.0]), 8.0);
        // Make the map-only branch dominate.
        assert_eq!(d.critical_path(&[1.0, 1.0, 10.0, 1.0]), 11.0);
    }

    #[test]
    fn categories() {
        let d = diamond();
        assert_eq!(d.job(0).category(), JobCategory::Join);
        assert_eq!(d.job(1).category(), JobCategory::Groupby);
        assert_eq!(d.job(2).category(), JobCategory::Extract);
        assert!(!d.job(2).kind.has_reduce());
        assert!(d.job(0).kind.has_reduce());
    }

    #[test]
    fn single_job_dag() {
        let d = QueryDag::new("one", vec![MrJob::new(0, JobKind::MapOnly { input: scan("t") })]);
        assert_eq!(d.roots(), vec![0]);
        assert_eq!(d.sink(), 0);
        assert_eq!(d.depth(), 1);
        assert_eq!(d.critical_path(&[7.5]), 7.5);
        assert!(d.dependents(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "topologically earlier")]
    fn forward_dependency_rejected() {
        QueryDag::new(
            "bad",
            vec![
                MrJob::new(
                    0,
                    JobKind::Groupby { input: InputSrc::Job(1), keys: vec![], n_aggs: 0 },
                ),
                MrJob::new(1, JobKind::MapOnly { input: scan("a") }),
            ],
        );
    }
}
