//! Exact (ground-truth) execution of a query DAG against generated data.
//!
//! On the paper's testbed, `D_in`, `D_med` and `D_out` of every job are
//! observable from Hadoop job counters after the run. This module plays that
//! role: it executes the relational semantics of each job exactly — scans
//! with pushed predicates/projections, hash joins, group-bys with a
//! *physically faithful* map-side combiner (per-split distinct counting) —
//! and reports the modeled byte sizes a real job would have produced. The
//! cluster simulator derives task counts and durations from these, and the
//! accuracy experiments compare them against the estimator's predictions.

use crate::dag::{BroadcastJoin, InputSrc, JobKind, QueryDag};
use sapred_relation::exec::{hash_join, Rel};
use sapred_relation::gen::Database;
use sapred_relation::table::Column;
use sapred_relation::{modeled_bytes, SCALE_DOWN};

/// Measured (exact) data sizes of one executed job. All byte figures are
/// *modeled* (paper-scale) bytes; tuple counts are physical (down-scaled).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobActual {
    /// Bytes read by the map phase (full input scans / upstream outputs).
    pub d_in: f64,
    /// Bytes of intermediate (map-output) data.
    pub d_med: f64,
    /// Bytes of the job's final output.
    pub d_out: f64,
    /// Tuples read by the map phase.
    pub tuples_in: f64,
    /// Tuples in the intermediate (map-output) data.
    pub tuples_med: f64,
    /// Tuples in the job's output.
    pub tuples_out: f64,
    /// Number of map splits used for combiner ground truth.
    pub n_splits: usize,
    /// Measured join skew ratio `P` (Eq. 7) — the larger filtered side's
    /// share of the filtered input tuples; 0.5 for non-join jobs.
    pub p_actual: f64,
}

impl JobActual {
    /// Observed intermediate selectivity `D_med / D_in`.
    pub fn is_ratio(&self) -> f64 {
        if self.d_in > 0.0 {
            self.d_med / self.d_in
        } else {
            0.0
        }
    }

    /// Observed final selectivity `D_out / D_in`.
    pub fn fs_ratio(&self) -> f64 {
        if self.d_in > 0.0 {
            self.d_out / self.d_in
        } else {
            0.0
        }
    }
}

/// Execute every job of `dag` against `db`, in topological (id) order.
///
/// `block_size` is the HDFS block size in *modeled* bytes (the paper uses
/// 256 MB); it determines the number of map splits and therefore the
/// map-side combiner's ground-truth output.
pub fn execute_dag(dag: &QueryDag, db: &Database, block_size: f64) -> Vec<JobActual> {
    assert!(block_size > 0.0, "block size must be positive");
    let mut outputs: Vec<Rel> = Vec::with_capacity(dag.len());
    let mut actuals = Vec::with_capacity(dag.len());
    for job in dag.jobs() {
        let (actual, out) =
            execute_job(&job.kind, &job.broadcasts, db, &outputs, &actuals, block_size);
        outputs.push(out);
        actuals.push(actual);
    }
    actuals
}

/// Resolve one input: returns (raw input bytes, raw input tuples,
/// map-output relation). For a table input the map output is the
/// filtered+projected scan; for a job input it is the upstream output
/// passed through unchanged.
fn resolve_input(
    input: &InputSrc,
    db: &Database,
    outputs: &[Rel],
    actuals: &[JobActual],
) -> (f64, f64, Rel) {
    match input {
        InputSrc::Table(t) => {
            let table =
                db.table(&t.table).unwrap_or_else(|| panic!("table {} not in database", t.table));
            let rel = Rel::from_table(table, &t.predicate, &t.projection);
            (table.modeled_bytes(), table.rows() as f64, rel)
        }
        InputSrc::Job(j) => (actuals[*j].d_out, outputs[*j].rows() as f64, outputs[*j].clone()),
    }
}

fn splits_for(d_in: f64, block_size: f64) -> usize {
    ((d_in / block_size).ceil() as usize).max(1)
}

/// Apply map-side (broadcast) joins to a job's primary input relation.
/// Returns the joined relation plus the extra bytes/tuples read from the
/// broadcast tables (shipped once via the distributed cache).
fn apply_broadcasts(mut rel: Rel, broadcasts: &[BroadcastJoin], db: &Database) -> (Rel, f64, f64) {
    let mut extra_bytes = 0.0;
    let mut extra_tuples = 0.0;
    for b in broadcasts {
        let table = db
            .table(&b.table.table)
            .unwrap_or_else(|| panic!("broadcast table {} missing", b.table.table));
        let mut small = Rel::from_table(table, &b.table.predicate, &b.table.projection);
        extra_bytes += table.modeled_bytes();
        extra_tuples += table.rows() as f64;
        let mut tkey = b.table_key.clone();
        let collisions: Vec<String> =
            small.names().iter().filter(|n| rel.names().contains(n)).cloned().collect();
        for c in collisions {
            let renamed = format!("{c}__b");
            small.rename_column(&c, renamed.clone());
            if tkey == c {
                tkey = renamed;
            }
        }
        rel = hash_join(&rel, &small, &b.stream_key, &tkey);
    }
    (rel, extra_bytes, extra_tuples)
}

fn execute_job(
    kind: &JobKind,
    broadcasts: &[BroadcastJoin],
    db: &Database,
    outputs: &[Rel],
    actuals: &[JobActual],
    block_size: f64,
) -> (JobActual, Rel) {
    match kind {
        JobKind::Join { left, right, left_key, right_key } => {
            let (lb0, lt0, lrel0) = resolve_input(left, db, outputs, actuals);
            let (lrel, bb, bt) = apply_broadcasts(lrel0, broadcasts, db);
            let (lb, lt) = (lb0 + bb, lt0 + bt);
            let (rb, rt, mut rrel) = resolve_input(right, db, outputs, actuals);
            // Disambiguate duplicated column names (self-joins): the right
            // side's colliding columns get a `__r` suffix.
            let mut rkey = right_key.clone();
            let collisions: Vec<String> =
                rrel.names().iter().filter(|n| lrel.names().contains(n)).cloned().collect();
            for c in collisions {
                let renamed = format!("{c}__r");
                rrel.rename_column(&c, renamed.clone());
                if rkey == c {
                    rkey = renamed;
                }
            }
            let joined = hash_join(&lrel, &rrel, left_key, &rkey);
            let d_in = lb + rb;
            let d_med = modeled_bytes(lrel.physical_bytes() + rrel.physical_bytes());
            let d_out = modeled_bytes(joined.physical_bytes());
            // Broadcast tables ship via the distributed cache, not splits.
            let n_splits = splits_for(lb0 + rb, block_size);
            let (lf, rf) = (lrel.rows().max(1) as f64, rrel.rows().max(1) as f64);
            let p_actual = lf.max(rf) / (lf + rf);
            (
                JobActual {
                    d_in,
                    d_med,
                    d_out,
                    tuples_in: lt + rt,
                    tuples_med: (lrel.rows() + rrel.rows()) as f64,
                    tuples_out: joined.rows() as f64,
                    n_splits,
                    p_actual,
                },
                joined,
            )
        }
        JobKind::Groupby { input, keys, n_aggs } => {
            let (b0, t0, rel0) = resolve_input(input, db, outputs, actuals);
            let (rel, bb, bt) = apply_broadcasts(rel0, broadcasts, db);
            let (b, t) = (b0 + bb, t0 + bt);
            let n_splits = splits_for(b0, block_size);
            let combined = rel.combine_output(keys, n_splits);
            let mut grouped = rel.groupby(keys);
            // Aggregate result columns: width 8 each, value immaterial.
            for i in 0..*n_aggs {
                grouped.push_column(
                    format!("__agg{i}"),
                    8.0,
                    Column::Float(vec![0.0; grouped.rows()]),
                );
            }
            let out_width = grouped.tuple_width();
            let d_med = modeled_bytes(combined as f64 * out_width);
            let d_out = modeled_bytes(grouped.rows() as f64 * out_width);
            (
                JobActual {
                    d_in: b,
                    d_med,
                    d_out,
                    tuples_in: t,
                    tuples_med: combined as f64,
                    tuples_out: grouped.rows() as f64,
                    n_splits,
                    p_actual: 0.5,
                },
                grouped,
            )
        }
        JobKind::Sort { input, keys: _, limit } => {
            let (b0, t0, rel0) = resolve_input(input, db, outputs, actuals);
            let (rel, bb, bt) = apply_broadcasts(rel0, broadcasts, db);
            let (b, t) = (b0 + bb, t0 + bt);
            let n_splits = splits_for(b0, block_size);
            // The map phase of a sort passes records through (identity map
            // keyed on the sort column); |Out| = min(|In|, k) per §3.1.2.
            let out = match limit {
                Some(k) => {
                    // One physical row per SCALE_DOWN nominal rows: the limit
                    // applies at nominal scale.
                    let phys = ((*k as f64) / SCALE_DOWN).ceil() as usize;
                    rel.head(phys.max(1).min(rel.rows()))
                }
                None => rel.clone(),
            };
            let d_med = modeled_bytes(rel.physical_bytes());
            let d_out = modeled_bytes(out.physical_bytes());
            (
                JobActual {
                    d_in: b,
                    d_med,
                    d_out,
                    tuples_in: t,
                    tuples_med: rel.rows() as f64,
                    tuples_out: out.rows() as f64,
                    n_splits,
                    p_actual: 0.5,
                },
                out,
            )
        }
        JobKind::MapOnly { input } => {
            let (b0, t0, rel0) = resolve_input(input, db, outputs, actuals);
            let (rel, bb, bt) = apply_broadcasts(rel0, broadcasts, db);
            let (b, t) = (b0 + bb, t0 + bt);
            let n_splits = splits_for(b0, block_size);
            let bytes = modeled_bytes(rel.physical_bytes());
            (
                JobActual {
                    d_in: b,
                    d_med: bytes,
                    d_out: bytes,
                    tuples_in: t,
                    tuples_med: rel.rows() as f64,
                    tuples_out: rel.rows() as f64,
                    n_splits,
                    p_actual: 0.5,
                },
                rel,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;
    use crate::compile::compile;
    use sapred_query::{analyze, parse};
    use sapred_relation::expr::{CmpOp, Predicate};
    use sapred_relation::gen::{generate, GenConfig};

    const BLOCK: f64 = 256.0 * 1024.0 * 1024.0;

    fn db() -> Database {
        generate(GenConfig::new(0.2).with_seed(11))
    }

    fn run(sql: &str) -> (QueryDag, Vec<JobActual>, Database) {
        let db = db();
        let a = analyze(&parse(sql).unwrap(), db.catalog(), &db).unwrap();
        let dag = compile("q", &a);
        let actuals = execute_dag(&dag, &db, BLOCK);
        (dag, actuals, db)
    }

    #[test]
    fn map_only_selectivity() {
        let (_, a, db) = run("SELECT l_partkey FROM lineitem WHERE l_quantity > 40");
        let j = &a[0];
        assert_eq!(j.d_in, db.table("lineitem").unwrap().modeled_bytes());
        // l_quantity uniform on 1..=50 ⇒ ~20% of rows survive; projection to
        // one 8-byte column out of a ~86-byte tuple shrinks further.
        let sel = j.tuples_med / j.tuples_in;
        assert!((0.15..0.25).contains(&sel), "sel = {sel}");
        assert_eq!(j.d_med, j.d_out);
        assert!(j.is_ratio() < 0.05, "IS = {}", j.is_ratio());
    }

    #[test]
    fn join_output_counts_fk_join() {
        let (_, a, db) = run(
            "SELECT l_quantity, p_size FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey",
        );
        let j = &a[0];
        // FK join against the part PK: every lineitem row matches exactly
        // one part row.
        assert_eq!(j.tuples_out, db.table("lineitem").unwrap().rows() as f64);
    }

    #[test]
    fn groupby_counts_groups() {
        let (_, a, db) =
            run("SELECT l_partkey, sum(l_extendedprice) FROM lineitem GROUP BY l_partkey");
        let j = &a[0];
        let parts = db.table("part").unwrap().rows() as f64;
        // Group count can't exceed the part-key domain.
        assert!(j.tuples_out <= parts);
        assert!(j.tuples_out > 0.8 * parts, "out = {} parts = {parts}", j.tuples_out);
        // Combiner output between group count and input count.
        assert!(j.tuples_med >= j.tuples_out);
        assert!(j.tuples_med <= j.tuples_in);
    }

    #[test]
    fn chained_jobs_propagate_sizes() {
        let (dag, a, _) = run("SELECT l_partkey, sum(l_extendedprice) FROM lineitem \
             WHERE l_shipdate < 500 GROUP BY l_partkey ORDER BY l_partkey");
        assert_eq!(dag.len(), 2);
        // The sort job's input bytes are exactly the group-by output bytes.
        assert_eq!(a[1].d_in, a[0].d_out);
        assert_eq!(a[1].tuples_in, a[0].tuples_out);
        // Sort is a pass-through.
        assert_eq!(a[1].tuples_out, a[1].tuples_in);
    }

    #[test]
    fn self_join_via_builder() {
        let db = db();
        let mut b = DagBuilder::new();
        let g = b.groupby(
            DagBuilder::table("lineitem", Predicate::True, ["l_partkey", "l_quantity"]),
            ["l_partkey"],
            1,
        );
        let j = b.join(
            DagBuilder::table(
                "lineitem",
                Predicate::cmp("l_quantity", CmpOp::Lt, 10.0),
                ["l_partkey", "l_extendedprice"],
            ),
            DagBuilder::job(g),
            "l_partkey",
            "l_partkey",
        );
        let _ = b.groupby(DagBuilder::job(j), Vec::<String>::new(), 1);
        let dag = b.build("q17-ish");
        let a = execute_dag(&dag, &db, BLOCK);
        assert_eq!(a.len(), 3);
        // The final global aggregate has exactly one output tuple (or zero
        // if the filter emptied the join).
        assert!(a[2].tuples_out <= 1.0);
        // The join output cannot exceed the filtered lineitem side (FK-ish).
        assert!(a[1].tuples_out <= a[1].tuples_med);
    }

    #[test]
    fn global_aggregate_one_tuple() {
        let (_, a, _) = run("SELECT count(*) FROM orders");
        assert_eq!(a[0].tuples_out, 1.0);
        // Combiner collapses each split to one tuple.
        assert_eq!(a[0].tuples_med, a[0].n_splits as f64);
    }

    #[test]
    fn limit_truncates_nominal_rows() {
        let (_, a, _) = run("SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 2000");
        // 2000 nominal rows = 2 physical rows at SCALE_DOWN = 1000.
        assert_eq!(a[0].tuples_out, 2.0);
    }

    #[test]
    fn splits_grow_with_scale() {
        let small = generate(GenConfig::new(1.0).with_seed(3));
        let large = generate(GenConfig::new(50.0).with_seed(3));
        let sql = "SELECT l_partkey FROM lineitem WHERE l_quantity > 40";
        let mk = |db: &Database| {
            let a = analyze(&parse(sql).unwrap(), db.catalog(), db).unwrap();
            execute_dag(&compile("q", &a), db, BLOCK)[0].n_splits
        };
        assert!(mk(&large) > 10 * mk(&small), "{} vs {}", mk(&large), mk(&small));
    }
}
