#![warn(missing_docs)]
//! Physical planning: compile analyzed queries into DAGs of MapReduce jobs,
//! and execute those DAGs exactly against generated data for ground truth.
//!
//! This crate models the Hive-side half of the paper's *cross-layer
//! semantics percolation* (§2.2, Fig. 3): instead of submitting opaque jobs,
//! the compiler attaches to every job its operator category (Extract /
//! Groupby / Join, §3.1), the predicates and projections pushed to each
//! input table, the join/group keys, and the dependency edges of the DAG.
//! That [`QueryDag`] object is exactly what flows to the selectivity
//! estimator, the time predictor and — percolated through the job
//! submission path — the cluster scheduler.
//!
//! Following Hive v0.10 (the paper's version, where automatic map-join
//! conversion was off by default), every equi-join compiles to its own
//! MapReduce Join job, group-bys to Groupby jobs, and sorts/limits to
//! Extract jobs.

pub mod builder;
pub mod compile;
pub mod dag;
pub mod ground_truth;

pub use builder::DagBuilder;
pub use compile::compile;
pub use dag::{InputSrc, JobCategory, JobKind, MrJob, QueryDag, TableInput};
pub use ground_truth::{execute_dag, JobActual};
