//! Model input features (paper Table 1 and Eq. 9).

use sapred_plan::dag::JobCategory;
use sapred_selectivity::estimate::JobEstimate;

/// Features of one job for the execution-time model (Eq. 8):
/// `ET = θ₀ + θ₁·D_in + θ₂·D_med + θ₃·D_out + θ₄·O·P(1−P)·D_med`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobFeatures {
    /// Input bytes (`D_In`).
    pub d_in: f64,
    /// Intermediate (map-output) bytes (`D_Med`).
    pub d_med: f64,
    /// Output bytes (`D_Out`).
    pub d_out: f64,
    /// Operator type `O`: 1 for Join, 0 for others (Table 1).
    pub is_join: bool,
    /// Join skew ratio `P` (Eq. 7); ignored when `is_join` is false.
    pub p: f64,
}

impl JobFeatures {
    /// Build features from a selectivity estimate.
    pub fn from_estimate(e: &JobEstimate) -> Self {
        Self {
            d_in: e.d_in,
            d_med: e.d_med,
            d_out: e.d_out,
            is_join: e.category == JobCategory::Join,
            p: e.p_ratio.unwrap_or(0.5),
        }
    }

    /// The raw feature vector fed to the linear model.
    pub fn vector(&self) -> Vec<f64> {
        let o = if self.is_join { 1.0 } else { 0.0 };
        vec![self.d_in, self.d_med, self.d_out, o * self.p * (1.0 - self.p) * self.d_med]
    }
}

/// Features of one task for the task-time model (§4.2: "based on the task
/// type, the operator type, job scale, the per-task input size and output
/// size"):
/// `ET_i = κ₀ + κ₁·TD_in + κ₂·TD_out + κ₃·O·P(1−P)·TD_in + κ₄·scale·TD_in`.
///
/// `scale` is the job's cluster-saturation fraction (how much of the
/// container pool the job's own wave occupies): co-located tasks share
/// disks/NICs, so tasks of saturating jobs run slower per byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskFeatures {
    /// Per-task input bytes.
    pub td_in: f64,
    /// Per-task output bytes (`IS × TD_in` for maps, `FS × TD_in`-shaped for
    /// reduces, per §4.2).
    pub td_out: f64,
    /// Operator type `O` (1 for Join).
    pub is_join: bool,
    /// Join skew ratio `P` (0.5 for non-joins).
    pub p: f64,
    /// Job scale: `min(tasks, containers) / containers ∈ (0, 1]`.
    pub saturation: f64,
}

impl TaskFeatures {
    /// Per-map-task features derived from a job estimate: each of the `n`
    /// map splits reads `D_in / n` and writes `IS ×` that.
    pub fn map_task(e: &JobEstimate, containers: usize) -> Self {
        let n = e.n_maps.max(1) as f64;
        let td_in = e.d_in / n;
        let c = containers.max(1) as f64;
        Self {
            td_in,
            td_out: e.is * td_in,
            is_join: e.category == JobCategory::Join,
            p: e.p_ratio.unwrap_or(0.5),
            saturation: n.min(c) / c,
        }
    }

    /// Per-reduce-task features: `n_reduces` reducers share `D_med` and emit
    /// `D_out`.
    pub fn reduce_task(e: &JobEstimate, n_reduces: usize, containers: usize) -> Self {
        let n = n_reduces.max(1) as f64;
        let c = containers.max(1) as f64;
        Self {
            td_in: e.d_med / n,
            td_out: e.d_out / n,
            is_join: e.category == JobCategory::Join,
            p: e.p_ratio.unwrap_or(0.5),
            saturation: n.min(c) / c,
        }
    }

    /// The raw feature vector fed to the linear model.
    pub fn vector(&self) -> Vec<f64> {
        let o = if self.is_join { 1.0 } else { 0.0 };
        vec![
            self.td_in,
            self.td_out,
            o * self.p * (1.0 - self.p) * self.td_in,
            self.saturation * self.td_in,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(cat: JobCategory, p: Option<f64>) -> JobEstimate {
        JobEstimate {
            category: cat,
            d_in: 1000.0,
            d_med: 500.0,
            d_out: 100.0,
            tuples_in: 10.0,
            tuples_med: 5.0,
            tuples_out: 1.0,
            is: 0.5,
            fs: 0.1,
            p_ratio: p,
            n_maps: 4,
        }
    }

    #[test]
    fn join_feature_activates_skew_term() {
        let j = JobFeatures::from_estimate(&est(JobCategory::Join, Some(0.75)));
        let v = j.vector();
        assert_eq!(v.len(), 4);
        assert!((v[3] - 0.75 * 0.25 * 500.0).abs() < 1e-9);
    }

    #[test]
    fn non_join_zeroes_skew_term() {
        let g = JobFeatures::from_estimate(&est(JobCategory::Groupby, None));
        assert_eq!(g.vector()[3], 0.0);
    }

    #[test]
    fn map_task_features_split_input() {
        let t = TaskFeatures::map_task(&est(JobCategory::Extract, None), 108);
        assert_eq!(t.td_in, 250.0);
        assert_eq!(t.td_out, 125.0);
        assert_eq!(t.vector()[2], 0.0);
        // 4 maps on 108 containers: low saturation.
        assert!((t.saturation - 4.0 / 108.0).abs() < 1e-12);
    }

    #[test]
    fn reduce_task_features() {
        let t = TaskFeatures::reduce_task(&est(JobCategory::Join, Some(0.5)), 2, 108);
        assert_eq!(t.td_in, 250.0);
        assert_eq!(t.td_out, 50.0);
        assert!((t.vector()[2] - 0.25 * 250.0).abs() < 1e-9);
    }

    #[test]
    fn zero_reducers_clamped() {
        let t = TaskFeatures::reduce_task(&est(JobCategory::Groupby, None), 0, 108);
        assert_eq!(t.td_in, 500.0);
    }

    #[test]
    fn saturation_capped_at_one() {
        let mut e = est(JobCategory::Extract, None);
        e.n_maps = 500;
        let t = TaskFeatures::map_task(&e, 108);
        assert_eq!(t.saturation, 1.0);
    }
}
