#![warn(missing_docs)]
//! Multivariate time prediction (paper §4): feature extraction, ordinary
//! least squares fitting, the job- and task-level execution-time models
//! (Eqs. 8 and 9), query-level composition, accuracy metrics (R², average
//! relative error) and the Weighted Resource Demand metric (Eq. 10) that
//! drives SWRD scheduling.
//!
//! The linear algebra is self-contained: the normal equations of the
//! (standardized) design matrix are solved with Gaussian elimination and a
//! small ridge term for numerical safety — no external solver.

pub mod features;
pub mod linalg;
pub mod metrics;
pub mod model;
pub mod wrd;

pub use features::{JobFeatures, TaskFeatures};
pub use linalg::LinearModel;
pub use metrics::{avg_rel_error, r_squared};
pub use model::{JobTimeModel, TaskTimeModel};
pub use wrd::{job_time_waves, query_wrd, JobResource};
