//! Self-contained least-squares: standardized normal equations solved by
//! Gaussian elimination with partial pivoting, plus a small ridge term.

/// Errors from model fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer samples than features.
    TooFewSamples,
    /// Inconsistent feature vector lengths.
    RaggedDesignMatrix,
    /// The (ridged) normal matrix was singular.
    Singular,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewSamples => write!(f, "fewer samples than features"),
            FitError::RaggedDesignMatrix => write!(f, "feature vectors of differing lengths"),
            FitError::Singular => write!(f, "singular normal matrix"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted linear model `y = θ₀ + Σ θᵢ xᵢ`, stored together with the
/// feature standardization used during fitting so `predict` accepts raw
/// features.
///
/// ```
/// use sapred_predict::linalg::LinearModel;
///
/// let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x[0]).collect();
/// let m = LinearModel::fit(&xs, &ys).unwrap();
/// assert!((m.predict(&[10.0]) - 23.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    /// Coefficients in standardized space; `coef[0]` is the intercept.
    coef: Vec<f64>,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl LinearModel {
    /// Fit by ridge-stabilized OLS (`lambda` defaults to `1e-9` in
    /// [`LinearModel::fit`]; pass an explicit value for ablations).
    pub fn fit_ridge(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Result<Self, FitError> {
        Self::fit_weighted(xs, ys, None, lambda)
    }

    /// Weighted ridge least squares. With task/job times spanning three
    /// orders of magnitude and multiplicative noise, weighting each sample
    /// by `1/y²` makes the fit minimize *relative* error — the metric the
    /// paper reports — while the model stays linear in the features.
    pub fn fit_weighted(
        xs: &[Vec<f64>],
        ys: &[f64],
        weights: Option<&[f64]>,
        lambda: f64,
    ) -> Result<Self, FitError> {
        let n = xs.len();
        if n == 0 || n != ys.len() {
            return Err(FitError::TooFewSamples);
        }
        let k = xs[0].len();
        if xs.iter().any(|x| x.len() != k) {
            return Err(FitError::RaggedDesignMatrix);
        }
        if n <= k {
            return Err(FitError::TooFewSamples);
        }

        // Standardize features: keeps the normal matrix well conditioned
        // even when features span bytes (1e9..1e12) and ratios (0..1).
        let mut means = vec![0.0; k];
        let mut stds = vec![0.0; k];
        for j in 0..k {
            let mean = xs.iter().map(|x| x[j]).sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x[j] - mean).powi(2)).sum::<f64>() / n as f64;
            means[j] = mean;
            stds[j] = var.sqrt().max(1e-12);
        }
        let z = |x: &[f64], j: usize| (x[j] - means[j]) / stds[j];

        if let Some(w) = weights {
            if w.len() != n {
                return Err(FitError::RaggedDesignMatrix);
            }
        }
        // (Weighted) normal equations over [1, z₁ … z_k].
        let m = k + 1;
        let mut a = vec![vec![0.0f64; m]; m];
        let mut b = vec![0.0f64; m];
        for (i_s, (x, &y)) in xs.iter().zip(ys).enumerate() {
            let w = weights.map_or(1.0, |w| w[i_s]).max(0.0);
            let mut row = Vec::with_capacity(m);
            row.push(1.0);
            for j in 0..k {
                row.push(z(x, j));
            }
            for i in 0..m {
                b[i] += w * row[i] * y;
                for j in 0..m {
                    a[i][j] += w * row[i] * row[j];
                }
            }
        }
        for (i, row) in a.iter_mut().enumerate().skip(1) {
            row[i] += lambda * n as f64;
        }

        let coef = solve(a, b).ok_or(FitError::Singular)?;
        Ok(Self { coef, means, stds })
    }

    /// Fit with the default ridge stabilizer.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Result<Self, FitError> {
        Self::fit_ridge(xs, ys, 1e-9)
    }

    /// Predict from a raw (unstandardized) feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.means.len(), "feature arity mismatch");
        let mut y = self.coef[0];
        for (j, &xj) in x.iter().enumerate() {
            y += self.coef[j + 1] * (xj - self.means[j]) / self.stds[j];
        }
        y
    }

    /// Number of (raw) features this model expects.
    pub fn arity(&self) -> usize {
        self.means.len()
    }

    /// Effective raw-space coefficients `[θ₀, θ₁, …]` (denormalized), mainly
    /// for inspection and debugging.
    pub fn raw_coefficients(&self) -> Vec<f64> {
        let k = self.means.len();
        let mut out = vec![0.0; k + 1];
        out[0] = self.coef[0];
        for j in 0..k {
            let slope = self.coef[j + 1] / self.stds[j];
            out[j + 1] = slope;
            out[0] -= slope * self.means[j];
        }
        out
    }
}

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
#[allow(clippy::needless_range_loop)] // index form mirrors the math
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).expect("no NaN"))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                a[row][j] -= f * a[col][j];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = b[i];
        for j in i + 1..n {
            acc -= a[i][j] * x[j];
        }
        x[i] = acc / a[i][i];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 3 + 2 x₁ - 0.5 x₂
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, (i * i % 17) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x[0] - 0.5 * x[1]).collect();
        let m = LinearModel::fit(&xs, &ys).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            assert!((m.predict(x) - y).abs() < 1e-3, "{} vs {y}", m.predict(x));
        }
        let raw = m.raw_coefficients();
        assert!((raw[0] - 3.0).abs() < 1e-3);
        assert!((raw[1] - 2.0).abs() < 1e-4);
        assert!((raw[2] + 0.5).abs() < 1e-4);
    }

    #[test]
    fn robust_to_huge_feature_scales() {
        // Features in the 1e9..1e12 range (byte sizes).
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<Vec<f64>> =
            (0..200).map(|_| vec![rng.gen_range(1e9..1e12), rng.gen_range(0.0..1.0)]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 10.0 + 3e-9 * x[0] + 40.0 * x[1]).collect();
        let m = LinearModel::fit(&xs, &ys).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            assert!((m.predict(x) - y).abs() / y < 1e-4);
        }
    }

    #[test]
    fn collinear_features_survive_ridge() {
        // x₂ = 2 x₁ exactly: plain OLS would be singular.
        let xs: Vec<Vec<f64>> = (1..40).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 + x[0]).collect();
        let m = LinearModel::fit(&xs, &ys).unwrap();
        let mid = &xs[20];
        assert!((m.predict(mid) - ys[20]).abs() < 0.5);
    }

    #[test]
    fn too_few_samples_rejected() {
        let xs = vec![vec![1.0, 2.0]];
        let ys = vec![3.0];
        assert_eq!(LinearModel::fit(&xs, &ys), Err(FitError::TooFewSamples));
    }

    #[test]
    fn ragged_rejected() {
        let xs = vec![vec![1.0], vec![1.0, 2.0], vec![3.0]];
        let ys = vec![1.0, 2.0, 3.0];
        assert_eq!(LinearModel::fit(&xs, &ys), Err(FitError::RaggedDesignMatrix));
    }

    #[test]
    fn noise_fit_is_unbiased() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs: Vec<Vec<f64>> = (0..2000).map(|_| vec![rng.gen_range(0.0..100.0)]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 0.7 * x[0] + rng.gen_range(-1.0..1.0)).collect();
        let m = LinearModel::fit(&xs, &ys).unwrap();
        let raw = m.raw_coefficients();
        assert!((raw[1] - 0.7).abs() < 0.02, "slope {}", raw[1]);
    }

    #[test]
    fn solve_simple_system() {
        // 2x + y = 5; x - y = 1 → x = 2, y = 1.
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let b = vec![5.0, 1.0];
        let x = solve(a, b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let b = vec![1.0, 2.0];
        assert!(solve(a, b).is_none());
    }
}
