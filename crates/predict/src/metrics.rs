//! Accuracy metrics used throughout the evaluation: the coefficient of
//! determination (R², "R-squared accuracy" in the paper's tables) and the
//! average relative error ("Avg Error").

/// Coefficient of determination of `predicted` against `actual`:
/// `1 − SS_res / SS_tot`. Returns 0 for degenerate inputs (empty, or
/// zero-variance actuals with nonzero residuals).
pub fn r_squared(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len());
    if actual.is_empty() {
        return 0.0;
    }
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean).powi(2)).sum();
    let ss_res: f64 = predicted.iter().zip(actual).map(|(p, a)| (p - a).powi(2)).sum();
    if ss_tot <= 0.0 {
        return if ss_res <= 1e-12 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Mean of `|pred − actual| / actual` over samples with `actual > 0`.
pub fn avg_rel_error(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len());
    let mut total = 0.0;
    let mut n = 0usize;
    for (p, a) in predicted.iter().zip(actual) {
        if *a > 0.0 {
            total += (p - a).abs() / a;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(r_squared(&a, &a), 1.0);
        assert_eq!(avg_rel_error(&a, &a), 0.0);
    }

    #[test]
    fn mean_prediction_gives_zero_r2() {
        let actual = vec![1.0, 2.0, 3.0];
        let pred = vec![2.0, 2.0, 2.0];
        assert!(r_squared(&pred, &actual).abs() < 1e-12);
    }

    #[test]
    fn rel_error_simple() {
        let actual = vec![100.0, 200.0];
        let pred = vec![110.0, 180.0];
        assert!((avg_rel_error(&pred, &actual) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_actuals_skipped() {
        let actual = vec![0.0, 100.0];
        let pred = vec![5.0, 150.0];
        assert!((avg_rel_error(&pred, &actual) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(r_squared(&[], &[]), 0.0);
        assert_eq!(r_squared(&[1.0], &[1.0]), 1.0);
        assert_eq!(r_squared(&[2.0], &[1.0]), 0.0);
        assert_eq!(avg_rel_error(&[], &[]), 0.0);
    }
}
