//! The paper's two execution-time models: job-level (Eq. 8) and task-level
//! (Eq. 9, separate map and reduce instances).

use crate::features::{JobFeatures, TaskFeatures};
use crate::linalg::{FitError, LinearModel};

/// Job execution-time model (Eq. 8), fitted on
/// `(features, measured seconds)` samples collected from training runs.
#[derive(Debug, Clone)]
pub struct JobTimeModel {
    model: LinearModel,
}

impl JobTimeModel {
    /// Fit with `1/y²` weights: job times span three orders of magnitude
    /// with multiplicative noise, so weighted least squares minimizes the
    /// relative error the paper's tables report.
    pub fn fit(samples: &[(JobFeatures, f64)]) -> Result<Self, FitError> {
        let xs: Vec<Vec<f64>> = samples.iter().map(|(f, _)| f.vector()).collect();
        let ys: Vec<f64> = samples.iter().map(|(_, y)| *y).collect();
        let ws: Vec<f64> = ys.iter().map(|y| 1.0 / y.max(1.0).powf(1.5)).collect();
        Ok(Self { model: LinearModel::fit_weighted(&xs, &ys, Some(&ws), 1e-9)? })
    }

    /// Predicted job execution time in seconds (clamped non-negative).
    pub fn predict(&self, f: &JobFeatures) -> f64 {
        self.model.predict(&f.vector()).max(0.0)
    }

    /// The underlying linear model (for inspection).
    pub fn inner(&self) -> &LinearModel {
        &self.model
    }
}

/// Task execution-time model (Eq. 9). The paper builds these per task type;
/// one instance predicts map-task times, another reduce-task times.
#[derive(Debug, Clone)]
pub struct TaskTimeModel {
    model: LinearModel,
}

impl TaskTimeModel {
    /// Fit with `1/y²` weights (see [`JobTimeModel::fit`]).
    pub fn fit(samples: &[(TaskFeatures, f64)]) -> Result<Self, FitError> {
        let xs: Vec<Vec<f64>> = samples.iter().map(|(f, _)| f.vector()).collect();
        let ys: Vec<f64> = samples.iter().map(|(_, y)| *y).collect();
        let ws: Vec<f64> = ys.iter().map(|y| 1.0 / y.max(0.5).powi(2)).collect();
        Ok(Self { model: LinearModel::fit_weighted(&xs, &ys, Some(&ws), 1e-9)? })
    }

    /// Predicted average task time in seconds (clamped non-negative).
    pub fn predict(&self, f: &TaskFeatures) -> f64 {
        self.model.predict(&f.vector()).max(0.0)
    }

    /// The underlying linear model (for inspection).
    pub fn inner(&self) -> &LinearModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn synth_job(rng: &mut StdRng) -> (JobFeatures, f64) {
        let d_in = rng.gen_range(1e9..1e11);
        let is = rng.gen_range(0.05..1.0);
        let fs = rng.gen_range(0.01..0.9);
        let is_join: bool = rng.gen_bool(0.4);
        let p = rng.gen_range(0.5..1.0);
        let f = JobFeatures { d_in, d_med: is * d_in, d_out: fs * is * d_in, is_join, p };
        // Ground truth resembling the simulator: linear plus join surcharge.
        let o = if is_join { 1.0 } else { 0.0 };
        let y = 20.0
            + 4e-9 * f.d_in
            + 9e-9 * f.d_med
            + 2e-9 * f.d_out
            + o * 30e-9 * p * (1.0 - p) * f.d_med;
        (f, y)
    }

    #[test]
    fn job_model_fits_linear_ground_truth() {
        let mut rng = StdRng::seed_from_u64(17);
        let samples: Vec<_> = (0..500).map(|_| synth_job(&mut rng)).collect();
        let m = JobTimeModel::fit(&samples).unwrap();
        for (f, y) in samples.iter().take(50) {
            let p = m.predict(f);
            assert!((p - y).abs() / y < 0.01, "pred {p} actual {y}");
        }
    }

    #[test]
    fn job_model_never_negative() {
        let mut rng = StdRng::seed_from_u64(17);
        let samples: Vec<_> = (0..100).map(|_| synth_job(&mut rng)).collect();
        let m = JobTimeModel::fit(&samples).unwrap();
        let tiny = JobFeatures { d_in: 0.0, d_med: 0.0, d_out: 0.0, is_join: false, p: 0.5 };
        assert!(m.predict(&tiny) >= 0.0);
    }

    #[test]
    fn task_model_fits() {
        let mut rng = StdRng::seed_from_u64(23);
        let samples: Vec<(TaskFeatures, f64)> = (0..400)
            .map(|_| {
                let td_in = rng.gen_range(1e7..3e8);
                let td_out = td_in * rng.gen_range(0.1..1.0);
                let is_join = rng.gen_bool(0.5);
                let p = rng.gen_range(0.5..1.0);
                let sat = rng.gen_range(0.05..1.0);
                let f = TaskFeatures { td_in, td_out, is_join, p, saturation: sat };
                let o = if is_join { 1.0 } else { 0.0 };
                let y = 2.0
                    + 5e-8 * td_in
                    + 2e-8 * td_out
                    + o * 1e-7 * p * (1.0 - p) * td_in
                    + sat * 4e-8 * td_in;
                (f, y)
            })
            .collect();
        let m = TaskTimeModel::fit(&samples).unwrap();
        for (f, y) in samples.iter().take(40) {
            assert!((m.predict(f) - y).abs() / y < 0.01);
        }
    }

    #[test]
    fn underdetermined_fit_errors() {
        let samples =
            vec![(JobFeatures { d_in: 1.0, d_med: 1.0, d_out: 1.0, is_join: false, p: 0.5 }, 1.0)];
        assert!(JobTimeModel::fit(&samples).is_err());
    }
}
