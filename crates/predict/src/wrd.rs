//! Weighted Resource Demand (paper Eq. 10) and wave-based job time
//! composition (§4.3, §5.4).

/// Predicted resource footprint of one job: average task times and the
/// *remaining* task counts (both shrink as the job executes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobResource {
    /// Predicted map task time `MT_i` (seconds).
    pub map_time: f64,
    /// Remaining map tasks `N_Mi`.
    pub maps_remaining: usize,
    /// Predicted reduce task time `RT_i` (seconds).
    pub reduce_time: f64,
    /// Remaining reduce tasks `N_Ri`.
    pub reduces_remaining: usize,
}

impl JobResource {
    /// This job's contribution to the query WRD.
    pub fn wrd(&self) -> f64 {
        self.map_time * self.maps_remaining as f64
            + self.reduce_time * self.reduces_remaining as f64
    }
}

/// `WRD = Σᵢ MT_i·N_Mi + RT_i·N_Ri` over the query's (remaining) jobs.
pub fn query_wrd(jobs: &[JobResource]) -> f64 {
    jobs.iter().map(JobResource::wrd).sum()
}

/// Wave-model job execution time on a cluster with `containers` slots:
/// map waves then reduce waves, plus a fixed per-job scheduling overhead.
/// This is the paper's approximation "WRD divided by the number of available
/// containers plus scheduling overheads" refined to whole waves.
pub fn job_time_waves(job: &JobResource, containers: usize, overhead: f64) -> f64 {
    let c = containers.max(1) as f64;
    let map_waves = (job.maps_remaining as f64 / c).ceil();
    let reduce_waves = (job.reduces_remaining as f64 / c).ceil();
    map_waves * job.map_time + reduce_waves * job.reduce_time + overhead
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrd_sums_jobs() {
        let jobs = vec![
            JobResource {
                map_time: 10.0,
                maps_remaining: 4,
                reduce_time: 20.0,
                reduces_remaining: 2,
            },
            JobResource {
                map_time: 5.0,
                maps_remaining: 10,
                reduce_time: 0.0,
                reduces_remaining: 0,
            },
        ];
        assert_eq!(query_wrd(&jobs), 10.0 * 4.0 + 20.0 * 2.0 + 5.0 * 10.0);
    }

    #[test]
    fn wrd_shrinks_as_tasks_finish() {
        let before = JobResource {
            map_time: 10.0,
            maps_remaining: 8,
            reduce_time: 5.0,
            reduces_remaining: 4,
        };
        let after = JobResource {
            map_time: 10.0,
            maps_remaining: 2,
            reduce_time: 5.0,
            reduces_remaining: 4,
        };
        assert!(after.wrd() < before.wrd());
    }

    #[test]
    fn wave_model_single_wave() {
        let j = JobResource {
            map_time: 10.0,
            maps_remaining: 6,
            reduce_time: 4.0,
            reduces_remaining: 2,
        };
        // 6 maps and 2 reduces fit in 8 containers: one wave each.
        assert_eq!(job_time_waves(&j, 8, 1.0), 10.0 + 4.0 + 1.0);
    }

    #[test]
    fn wave_model_multiple_waves() {
        let j = JobResource {
            map_time: 10.0,
            maps_remaining: 20,
            reduce_time: 4.0,
            reduces_remaining: 3,
        };
        // 20 maps over 8 containers = 3 waves; 3 reduces = 1 wave.
        assert_eq!(job_time_waves(&j, 8, 0.0), 30.0 + 4.0);
    }

    #[test]
    fn zero_containers_clamped() {
        let j = JobResource {
            map_time: 1.0,
            maps_remaining: 2,
            reduce_time: 1.0,
            reduces_remaining: 0,
        };
        assert!(job_time_waves(&j, 0, 0.0).is_finite());
    }

    #[test]
    fn empty_query_has_zero_wrd() {
        assert_eq!(query_wrd(&[]), 0.0);
    }
}
