//! Property tests for the least-squares solver and metrics.

use proptest::prelude::*;
use sapred_predict::linalg::LinearModel;
use sapred_predict::metrics::r_squared;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ols_recovers_random_linear_models(
        intercept in -100.0f64..100.0,
        slopes in prop::collection::vec(-10.0f64..10.0, 1..4),
        n in 20usize..100,
        seed in 0u64..1000,
    ) {
        // Deterministic pseudo-random design matrix from the seed.
        let k = slopes.len();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) * 200.0 - 100.0
        };
        let xs: Vec<Vec<f64>> = (0..n).map(|_| (0..k).map(|_| next()).collect()).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| intercept + x.iter().zip(&slopes).map(|(a, b)| a * b).sum::<f64>())
            .collect();
        // Degenerate designs (a feature with ~no variance) are excluded.
        prop_assume!(
            (0..k).all(|j| {
                let mean = xs.iter().map(|x| x[j]).sum::<f64>() / n as f64;
                xs.iter().map(|x| (x[j] - mean).powi(2)).sum::<f64>() / n as f64 > 1.0
            })
        );
        let m = LinearModel::fit(&xs, &ys).unwrap();
        let pred: Vec<f64> = xs.iter().map(|x| m.predict(x)).collect();
        let r2 = r_squared(&pred, &ys);
        prop_assert!(r2 > 0.999, "r2 = {r2}");
    }

    #[test]
    fn fitted_predictions_maximize_r_squared_vs_mean(
        ys in prop::collection::vec(0.0f64..1000.0, 10..60),
    ) {
        // Fitting y on an informative feature can never be worse than the
        // mean predictor (R² >= 0) up to ridge epsilon.
        let xs: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
        let m = LinearModel::fit(&xs, &ys).unwrap();
        let pred: Vec<f64> = xs.iter().map(|x| m.predict(x)).collect();
        prop_assert!(r_squared(&pred, &ys) >= -1e-6);
    }

    #[test]
    fn residuals_are_centered(
        ys in prop::collection::vec(-500.0f64..500.0, 10..50),
    ) {
        // OLS with an intercept has zero-mean residuals.
        let xs: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![(i * i % 17) as f64]).collect();
        let m = LinearModel::fit(&xs, &ys).unwrap();
        let mean_resid: f64 =
            xs.iter().zip(&ys).map(|(x, y)| y - m.predict(x)).sum::<f64>() / ys.len() as f64;
        prop_assert!(mean_resid.abs() < 1e-3, "mean residual {mean_resid}");
    }
}
