//! Semantic analysis: resolve names against the catalog, lower literals,
//! push predicates to their scans, and compute per-scan projections.
//!
//! The output, [`AnalyzedQuery`], is the *query semantics* object that the
//! paper's cross-layer percolation carries downward: which tables are read,
//! what predicates filter them, which columns survive (projection), how the
//! tables join, and what the aggregation/sort shape is.

use crate::ast::{AggFunc, AstPred, ColRef, Literal, OnCond, Query, SelectItem};
use crate::error::QueryError;
use sapred_relation::expr::Predicate;
use sapred_relation::gen::{encode_date, Database};
use sapred_relation::stats::Catalog;

/// Resolves string literals to the numeric codes used in column data.
pub trait LiteralResolver {
    /// Map `literal` as it appears in a predicate on `table.column` to the
    /// numeric value stored in that column.
    fn resolve_str(&self, table: &str, column: &str, literal: &str) -> f64;
}

impl LiteralResolver for Database {
    fn resolve_str(&self, table: &str, column: &str, literal: &str) -> f64 {
        match self.table(table) {
            Some(t) => t.dict_code(column, literal) as f64,
            None => i64::MIN as f64,
        }
    }
}

/// Stateless fallback resolver: stable FNV-1a hash of the literal. Useful
/// when analyzing against a catalog without materialized dictionaries
/// (synthetic TPC-DS-style tables); equality predicates then estimate like
/// any other point predicate.
#[derive(Debug, Default, Clone, Copy)]
pub struct HashResolver;

impl LiteralResolver for HashResolver {
    fn resolve_str(&self, _table: &str, _column: &str, literal: &str) -> f64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in literal.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % 1_000_000) as f64
    }
}

/// One base-table scan with its pushed-down predicate and projection.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanSpec {
    /// Table name in the catalog.
    pub table: String,
    /// The alias (or table name) this scan is addressed by in the query.
    pub binding: String,
    /// Conjunction of all single-table predicates pushed to this scan.
    pub predicate: Predicate,
    /// Columns of this table needed downstream (join keys, group keys,
    /// aggregate inputs, selected columns). Predicate-only columns are
    /// filtered at scan time and do not flow onward.
    pub projection: Vec<String>,
}

/// One equi-join edge of the left-deep join chain. Join `i` always brings in
/// scan `i + 1` as its right side; `left_scan` may be any earlier scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSpec {
    /// Scan index providing the left key (any earlier scan).
    pub left_scan: usize,
    /// Scan index of the newly joined table (always `i + 1` for join `i`).
    pub right_scan: usize,
    /// Join key column on the left side.
    pub left_col: String,
    /// Join key column on the right side.
    pub right_col: String,
}

/// One aggregate of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Columns referenced by the aggregate argument (empty for `count(*)`).
    pub cols: Vec<String>,
}

/// The fully analyzed query: the semantics payload that percolates to the
/// planner, estimator and (ultimately) the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedQuery {
    /// `SELECT DISTINCT` with no aggregates: deduplicate selected rows.
    pub distinct: bool,
    /// One scan per referenced base table, in FROM order.
    pub scans: Vec<ScanSpec>,
    /// Equi-join edges in join order (left-deep).
    pub joins: Vec<JoinSpec>,
    /// GROUP BY key columns.
    pub group_by: Vec<String>,
    /// Aggregates of the SELECT list.
    pub aggs: Vec<AggSpec>,
    /// Plain (non-aggregate) selected columns.
    pub select_cols: Vec<String>,
    /// (column, descending).
    pub order_by: Vec<(String, bool)>,
    /// LIMIT row count, if any.
    pub limit: Option<u64>,
}

impl AnalyzedQuery {
    /// Which scan provides `column` (TPC-H column names are table-unique).
    pub fn scan_of(&self, column: &str) -> Option<usize> {
        self.scans.iter().position(|s| s.projection.iter().any(|c| c == column))
    }

    /// All base tables read by the query.
    pub fn tables(&self) -> Vec<&str> {
        self.scans.iter().map(|s| s.table.as_str()).collect()
    }
}

/// Analyze a parsed query against a catalog.
pub fn analyze(
    q: &Query,
    catalog: &Catalog,
    literals: &dyn LiteralResolver,
) -> Result<AnalyzedQuery, QueryError> {
    let mut a = Analyzer { catalog, literals, scans: Vec::new() };
    a.add_scan(&q.from.table, q.from.binding())?;
    for j in &q.joins {
        a.add_scan(&j.table.table, j.table.binding())?;
    }

    // Join conditions and residual ON predicates.
    let mut joins = Vec::new();
    for (i, j) in q.joins.iter().enumerate() {
        let right_scan = i + 1;
        let mut equi = None;
        for cond in &j.conds {
            match cond {
                OnCond::Equi { left, right } => {
                    if equi.is_some() {
                        return Err(QueryError::semantic(
                            "multiple equi-conditions in one ON clause are not supported; \
                             use the first key and move the rest to WHERE"
                                .to_string(),
                        ));
                    }
                    let (ls, lc) = a.resolve(left)?;
                    let (rs, rc) = a.resolve(right)?;
                    let (left_scan, left_col, rcol) = if rs == right_scan {
                        (ls, lc, rc)
                    } else if ls == right_scan {
                        (rs, rc, lc)
                    } else {
                        return Err(QueryError::semantic(format!(
                            "ON condition of join {i} does not reference the joined table"
                        )));
                    };
                    if left_scan >= right_scan {
                        return Err(QueryError::semantic(format!(
                            "join {i} references a table that has not been joined yet"
                        )));
                    }
                    equi = Some(JoinSpec { left_scan, right_scan, left_col, right_col: rcol });
                }
                OnCond::Residual(p) => a.push_predicate(p)?,
            }
        }
        joins.push(
            equi.ok_or_else(|| {
                QueryError::semantic(format!("join {i} has no equi-join condition"))
            })?,
        );
    }

    if let Some(p) = &q.where_pred {
        for conj in p.conjuncts() {
            a.push_predicate(conj)?;
        }
    }

    // Select list.
    let mut aggs = Vec::new();
    let mut select_cols = Vec::new();
    let mut needed: Vec<(usize, String)> = Vec::new();
    for item in &q.select {
        match item {
            SelectItem::Expr { expr, .. } => {
                for c in expr.columns() {
                    let (s, col) = a.resolve(c)?;
                    select_cols.push(col.clone());
                    needed.push((s, col));
                }
            }
            SelectItem::Agg { func, arg, .. } => {
                let mut cols = Vec::new();
                if let Some(e) = arg {
                    for c in e.columns() {
                        let (s, col) = a.resolve(c)?;
                        cols.push(col.clone());
                        needed.push((s, col));
                    }
                }
                aggs.push(AggSpec { func: *func, cols });
            }
        }
    }

    let mut group_by = Vec::new();
    for c in &q.group_by {
        let (s, col) = a.resolve(c)?;
        group_by.push(col.clone());
        needed.push((s, col));
    }
    let mut order_by = Vec::new();
    for (c, desc) in &q.order_by {
        let (s, col) = a.resolve(c)?;
        order_by.push((col.clone(), *desc));
        needed.push((s, col));
    }
    // Join keys are needed on both sides.
    for j in &joins {
        needed.push((j.left_scan, j.left_col.clone()));
        needed.push((j.right_scan, j.right_col.clone()));
    }

    assign_projections(&mut a.scans, catalog, needed);

    if select_cols.is_empty() && aggs.is_empty() {
        return Err(QueryError::semantic("empty select list".to_string()));
    }

    Ok(AnalyzedQuery {
        distinct: q.distinct,
        scans: a.scans,
        joins,
        group_by,
        aggs,
        select_cols,
        order_by,
        limit: q.limit,
    })
}

/// Record every `(scan, column)` pair in that scan's projection, then give
/// projection-less scans one representative column so widths stay non-zero.
pub(crate) fn assign_projections(
    scans: &mut [ScanSpec],
    catalog: &Catalog,
    needed: Vec<(usize, String)>,
) {
    for (scan, col) in needed {
        let proj = &mut scans[scan].projection;
        if !proj.contains(&col) {
            proj.push(col);
        }
    }
    // A scan that contributes nothing downstream still ships its key-widest
    // representation; keep at least one column so widths are non-zero.
    for s in scans {
        if s.projection.is_empty() {
            if let Some(first) = catalog
                .get(&s.table)
                .and_then(|t| t.schema().columns().first().map(|c| c.name.clone()))
            {
                s.projection.push(first);
            }
        }
    }
}

struct Analyzer<'a> {
    catalog: &'a Catalog,
    literals: &'a dyn LiteralResolver,
    scans: Vec<ScanSpec>,
}

impl<'a> Analyzer<'a> {
    fn add_scan(&mut self, table: &str, binding: &str) -> Result<(), QueryError> {
        if self.catalog.get(table).is_none() {
            return Err(QueryError::semantic(format!("unknown table `{table}`")));
        }
        if self.scans.iter().any(|s| s.binding == binding) {
            return Err(QueryError::semantic(format!("duplicate table binding `{binding}`")));
        }
        self.scans.push(ScanSpec {
            table: table.to_string(),
            binding: binding.to_string(),
            predicate: Predicate::True,
            projection: Vec::new(),
        });
        Ok(())
    }

    /// Resolve a column reference to (scan index, column name).
    fn resolve(&self, c: &ColRef) -> Result<(usize, String), QueryError> {
        if let Some(q) = &c.qualifier {
            let idx = self
                .scans
                .iter()
                .position(|s| s.binding == *q)
                .ok_or_else(|| QueryError::semantic(format!("unknown table binding `{q}`")))?;
            let table = self.catalog.get(&self.scans[idx].table).expect("checked in add_scan");
            if table.schema().index_of(&c.name).is_none() {
                return Err(QueryError::semantic(format!(
                    "no column `{}` in table `{}`",
                    c.name, self.scans[idx].table
                )));
            }
            return Ok((idx, c.name.clone()));
        }
        let mut found = None;
        for (i, s) in self.scans.iter().enumerate() {
            let table = self.catalog.get(&s.table).expect("checked in add_scan");
            if table.schema().index_of(&c.name).is_some() {
                if found.is_some() {
                    return Err(QueryError::semantic(format!("ambiguous column `{}`", c.name)));
                }
                found = Some(i);
            }
        }
        match found {
            Some(i) => Ok((i, c.name.clone())),
            None => Err(QueryError::semantic(format!("unknown column `{}`", c.name))),
        }
    }

    /// Lower one top-level conjunct and attach it to its (single) scan.
    fn push_predicate(&mut self, p: &AstPred) -> Result<(), QueryError> {
        let mut scan = None;
        for c in p.columns() {
            let (s, _) = self.resolve(c)?;
            match scan {
                None => scan = Some(s),
                Some(prev) if prev == s => {}
                Some(_) => {
                    return Err(QueryError::semantic(format!(
                        "predicate `{p:?}` spans multiple tables; only single-table \
                         predicates and equi-join conditions are supported"
                    )))
                }
            }
        }
        let scan = scan.ok_or_else(|| QueryError::semantic("predicate with no columns"))?;
        let lowered = self.lower_pred(p, scan)?;
        let current = std::mem::replace(&mut self.scans[scan].predicate, Predicate::True);
        self.scans[scan].predicate = current.and(lowered);
        Ok(())
    }

    fn lower_pred(&self, p: &AstPred, scan: usize) -> Result<Predicate, QueryError> {
        Ok(match p {
            AstPred::Cmp { col, op, lit } => Predicate::Cmp {
                column: col.name.clone(),
                op: *op,
                value: self.lower_literal(lit, scan, &col.name),
            },
            AstPred::Between { col, lo, hi } => Predicate::Between {
                column: col.name.clone(),
                lo: self.lower_literal(lo, scan, &col.name),
                hi: self.lower_literal(hi, scan, &col.name),
            },
            AstPred::InList { col, items } => {
                // `x IN (…)` lowers to a disjunction of equalities.
                items
                    .iter()
                    .map(|lit| Predicate::Cmp {
                        column: col.name.clone(),
                        op: sapred_relation::expr::CmpOp::Eq,
                        value: self.lower_literal(lit, scan, &col.name),
                    })
                    .reduce(|a, b| a.or(b))
                    .expect("parser rejects empty IN lists")
            }
            AstPred::And(a, b) => Predicate::And(
                Box::new(self.lower_pred(a, scan)?),
                Box::new(self.lower_pred(b, scan)?),
            ),
            AstPred::Or(a, b) => Predicate::Or(
                Box::new(self.lower_pred(a, scan)?),
                Box::new(self.lower_pred(b, scan)?),
            ),
        })
    }

    fn lower_literal(&self, lit: &Literal, scan: usize, column: &str) -> f64 {
        match lit {
            Literal::Num(n) => *n,
            Literal::Str(s) => {
                if let Some(d) = parse_date(s) {
                    d as f64
                } else {
                    self.literals.resolve_str(&self.scans[scan].table, column, s)
                }
            }
        }
    }
}

/// Recognize `YYYY-MM-DD` literals and encode them onto the day domain.
fn parse_date(s: &str) -> Option<i64> {
    let b = s.as_bytes();
    if b.len() != 10 || b[4] != b'-' || b[7] != b'-' {
        return None;
    }
    let digits = |r: std::ops::Range<usize>| -> Option<i64> {
        let part = &s[r];
        if part.bytes().all(|c| c.is_ascii_digit()) {
            part.parse().ok()
        } else {
            None
        }
    };
    let (y, m, d) = (digits(0..4)?, digits(5..7)?, digits(8..10)?);
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(encode_date(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use sapred_relation::expr::CmpOp;
    use sapred_relation::gen::{generate, GenConfig};

    fn db() -> Database {
        generate(GenConfig::new(0.1).with_seed(5))
    }

    fn compile(sql: &str) -> Result<AnalyzedQuery, QueryError> {
        let db = db();
        analyze(&parse(sql).unwrap(), db.catalog(), &db)
    }

    #[test]
    fn q11_analysis() {
        let a = compile(
            "SELECT ps_partkey, sum(ps_supplycost*ps_availqty) \
             FROM nation n JOIN supplier s ON \
             s.s_nationkey=n.n_nationkey AND n.n_name<>'CHINA' \
             JOIN partsupp ps ON ps.ps_suppkey=s.s_suppkey \
             GROUP BY ps_partkey;",
        )
        .unwrap();
        assert_eq!(a.scans.len(), 3);
        assert_eq!(a.joins.len(), 2);
        // The residual predicate landed on the nation scan.
        assert!(!a.scans[0].predicate.is_true());
        assert!(a.scans[1].predicate.is_true());
        // The CHINA literal resolved through the dictionary (code 18).
        match &a.scans[0].predicate {
            Predicate::Cmp { column, op, value } => {
                assert_eq!(column, "n_name");
                assert_eq!(*op, CmpOp::Ne);
                assert_eq!(*value, 18.0);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(a.group_by, vec!["ps_partkey".to_string()]);
        assert_eq!(a.aggs.len(), 1);
        // Join 2 connects partsupp (right) to supplier (scan 1).
        assert_eq!(a.joins[1].left_scan, 1);
        assert_eq!(a.joins[1].right_scan, 2);
    }

    #[test]
    fn date_literals_lowered() {
        let a = compile(
            "SELECT l_partkey FROM lineitem \
             WHERE l_shipdate >= '1994-03-01' AND l_shipdate < '1994-04-01'",
        )
        .unwrap();
        let cols = a.scans[0].predicate.columns();
        assert_eq!(cols, vec!["l_shipdate"]);
        match &a.scans[0].predicate {
            Predicate::And(l, _) => match **l {
                Predicate::Cmp { value, .. } => {
                    assert_eq!(value, encode_date(1994, 3, 1) as f64)
                }
                ref other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn projection_excludes_predicate_only_columns() {
        let a = compile(
            "SELECT l_partkey, sum(l_extendedprice) FROM lineitem \
             WHERE l_shipdate >= 100 GROUP BY l_partkey",
        )
        .unwrap();
        let p = &a.scans[0].projection;
        assert!(p.contains(&"l_partkey".to_string()));
        assert!(p.contains(&"l_extendedprice".to_string()));
        assert!(!p.contains(&"l_shipdate".to_string()));
    }

    #[test]
    fn ambiguous_column_rejected() {
        // l_partkey vs ps_partkey are distinct, but joining part twice would
        // duplicate bindings; use an actually ambiguous case: joining
        // lineitem with itself is rejected on duplicate binding first.
        let err =
            compile("SELECT l_quantity FROM lineitem JOIN lineitem ON l_orderkey = l_orderkey")
                .unwrap_err();
        assert!(matches!(err, QueryError::Semantic { .. }));
    }

    #[test]
    fn unknown_table_and_column() {
        assert!(compile("SELECT x FROM nowhere").is_err());
        assert!(compile("SELECT not_a_col FROM nation").is_err());
    }

    #[test]
    fn cross_table_predicate_rejected() {
        let err = compile(
            "SELECT s_suppkey FROM supplier JOIN nation ON s_nationkey = n_nationkey \
             WHERE s_acctbal > 0 OR n_regionkey = 1",
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::Semantic { .. }));
    }

    #[test]
    fn join_without_equi_condition_rejected() {
        let err =
            compile("SELECT s_suppkey FROM supplier JOIN nation ON n_name <> 'CHINA'").unwrap_err();
        assert!(matches!(err, QueryError::Semantic { .. }));
    }

    #[test]
    fn unqualified_unique_columns_resolve_across_tables() {
        let a =
            compile("SELECT s_name, n_name FROM supplier JOIN nation ON s_nationkey = n_nationkey")
                .unwrap();
        assert_eq!(a.joins[0].left_scan, 0);
        assert_eq!(a.joins[0].left_col, "s_nationkey");
        assert!(a.scans[1].projection.contains(&"n_name".to_string()));
    }

    #[test]
    fn hash_resolver_is_stable_and_spread() {
        let r = HashResolver;
        let a = r.resolve_str("t", "c", "ALPHA");
        let b = r.resolve_str("t", "c", "ALPHA");
        let c = r.resolve_str("t", "c", "BETA");
        assert_eq!(a, b, "same literal, same code");
        assert_ne!(a, c, "different literals, different codes");
        assert!((0.0..1_000_000.0).contains(&a));
    }

    #[test]
    fn analysis_against_persisted_catalog() {
        // A catalog loaded from JSON (no materialized data) still supports
        // analysis with the hash resolver.
        if !sapred_relation::persist::serialization_available() {
            eprintln!("skipped: serde_json stand-in cannot serialize (vendor/README.md)");
            return;
        }
        let db = db();
        let json = sapred_relation::persist::catalog_to_json(db.catalog()).unwrap();
        let catalog = sapred_relation::persist::catalog_from_json(&json).unwrap();
        let a = analyze(
            &parse("SELECT l_partkey FROM lineitem WHERE l_quantity > 40").unwrap(),
            &catalog,
            &HashResolver,
        )
        .unwrap();
        assert_eq!(a.scans[0].table, "lineitem");
    }

    #[test]
    fn date_parser_edge_cases() {
        assert_eq!(parse_date("1994-01-01"), Some(encode_date(1994, 1, 1)));
        assert_eq!(parse_date("not-a-date"), None);
        assert_eq!(parse_date("1994-13-01"), None);
        assert_eq!(parse_date("1994-1-1"), None);
    }
}
