//! Abstract syntax tree of the HiveQL subset.

pub use sapred_relation::expr::CmpOp;

/// A possibly-qualified column reference (`alias.column` or `column`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    /// Table alias qualifying the column, when written as `alias.column`.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

impl ColRef {
    /// An unqualified column reference.
    pub fn bare(name: impl Into<String>) -> Self {
        Self { qualifier: None, name: name.into() }
    }

    /// A reference qualified by a table binding (`q.name`).
    pub fn qualified(q: impl Into<String>, name: impl Into<String>) -> Self {
        Self { qualifier: Some(q.into()), name: name.into() }
    }
}

impl std::fmt::Display for ColRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Literal value in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Numeric literal.
    Num(f64),
    /// String literal (single-quoted in query text).
    Str(String),
}

/// Scalar expression in the SELECT list or inside an aggregate.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference.
    Col(ColRef),
    /// A numeric constant.
    Num(f64),
    /// `+ - * /`
    BinOp {
        /// One of `+ - * /`.
        op: char,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// All column references in the expression.
    pub fn columns(&self) -> Vec<&ColRef> {
        let mut v = Vec::new();
        self.collect(&mut v);
        v
    }

    fn collect<'a>(&'a self, out: &mut Vec<&'a ColRef>) {
        match self {
            Expr::Col(c) => out.push(c),
            Expr::Num(_) => {}
            Expr::BinOp { lhs, rhs, .. } => {
                lhs.collect(out);
                rhs.collect(out);
            }
        }
    }
}

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `sum(expr)`.
    Sum,
    /// `count(expr)` / `count(*)`.
    Count,
    /// `avg(expr)`.
    Avg,
    /// `min(expr)`.
    Min,
    /// `max(expr)`.
    Max,
}

impl AggFunc {
    /// Parse an aggregate function name (case-insensitive).
    pub fn from_name(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "sum" => Some(AggFunc::Sum),
            "count" => Some(AggFunc::Count),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain expression with an optional alias.
    Expr {
        /// The selected expression.
        expr: Expr,
        /// Optional `AS alias`.
        alias: Option<String>,
    },
    /// `agg(expr)` or `count(*)` (arg = None).
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// Argument expression (`None` = `count(*)`).
        arg: Option<Expr>,
        /// Optional `AS alias`.
        alias: Option<String>,
    },
}

/// Syntactic predicate (columns unresolved, literals unlowered).
#[derive(Debug, Clone, PartialEq)]
pub enum AstPred {
    /// `col op literal`.
    Cmp {
        /// Compared column.
        col: ColRef,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand literal.
        lit: Literal,
    },
    /// `col BETWEEN lo AND hi` (inclusive).
    Between {
        /// Tested column.
        col: ColRef,
        /// Lower bound (inclusive).
        lo: Literal,
        /// Upper bound (inclusive).
        hi: Literal,
    },
    /// `col IN (v1, v2, …)` — lowered to a disjunction of equalities.
    InList {
        /// Tested column.
        col: ColRef,
        /// Accepted values.
        items: Vec<Literal>,
    },
    /// Conjunction.
    And(Box<AstPred>, Box<AstPred>),
    /// Disjunction.
    Or(Box<AstPred>, Box<AstPred>),
}

impl AstPred {
    /// Split a predicate into its top-level AND conjuncts.
    pub fn conjuncts(&self) -> Vec<&AstPred> {
        let mut out = Vec::new();
        fn walk<'a>(p: &'a AstPred, out: &mut Vec<&'a AstPred>) {
            match p {
                AstPred::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// All column references in the predicate.
    pub fn columns(&self) -> Vec<&ColRef> {
        match self {
            AstPred::Cmp { col, .. }
            | AstPred::Between { col, .. }
            | AstPred::InList { col, .. } => vec![col],
            AstPred::And(a, b) | AstPred::Or(a, b) => {
                let mut v = a.columns();
                v.extend(b.columns());
                v
            }
        }
    }
}

/// A condition in an ON clause: either an equi-join or a residual predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum OnCond {
    /// `left = right` between two tables' columns.
    Equi {
        /// Column on one side.
        left: ColRef,
        /// Column on the other side.
        right: ColRef,
    },
    /// A single-table predicate written inside the ON clause.
    Residual(AstPred),
}

/// A table reference with its optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name as written in the query.
    pub table: String,
    /// Optional alias (`FROM nation n` or `FROM nation AS n`).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is addressed by in the query.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// A JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The joined (right-side) table.
    pub table: TableRef,
    /// ON-clause conditions: at least one equi-join plus residuals.
    pub conds: Vec<OnCond>,
}

/// A full parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `SELECT DISTINCT`: deduplicate the selected rows (compiles to a
    /// group-by on the selected columns when no aggregates are present).
    pub distinct: bool,
    /// SELECT-list items in order.
    pub select: Vec<SelectItem>,
    /// The leading FROM table.
    pub from: TableRef,
    /// JOIN clauses in query order (left-deep).
    pub joins: Vec<JoinClause>,
    /// The WHERE predicate, if any.
    pub where_pred: Option<AstPred>,
    /// GROUP BY keys, possibly empty.
    pub group_by: Vec<ColRef>,
    /// (column, descending)
    pub order_by: Vec<(ColRef, bool)>,
    /// LIMIT row count, if any.
    pub limit: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting() {
        let p = AstPred::And(
            Box::new(AstPred::Cmp {
                col: ColRef::bare("a"),
                op: CmpOp::Eq,
                lit: Literal::Num(1.0),
            }),
            Box::new(AstPred::Or(
                Box::new(AstPred::Cmp {
                    col: ColRef::bare("b"),
                    op: CmpOp::Lt,
                    lit: Literal::Num(2.0),
                }),
                Box::new(AstPred::Cmp {
                    col: ColRef::bare("c"),
                    op: CmpOp::Gt,
                    lit: Literal::Num(3.0),
                }),
            )),
        );
        let cs = p.conjuncts();
        assert_eq!(cs.len(), 2);
        assert_eq!(p.columns().len(), 3);
    }

    #[test]
    fn expr_columns() {
        let e = Expr::BinOp {
            op: '*',
            lhs: Box::new(Expr::Col(ColRef::bare("x"))),
            rhs: Box::new(Expr::BinOp {
                op: '+',
                lhs: Box::new(Expr::Col(ColRef::qualified("t", "y"))),
                rhs: Box::new(Expr::Num(1.0)),
            }),
        };
        let cols = e.columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[1].qualifier.as_deref(), Some("t"));
    }

    #[test]
    fn table_binding_prefers_alias() {
        let t = TableRef { table: "nation".into(), alias: Some("n".into()) };
        assert_eq!(t.binding(), "n");
        let t = TableRef { table: "nation".into(), alias: None };
        assert_eq!(t.binding(), "nation");
    }

    #[test]
    fn agg_func_names() {
        assert_eq!(AggFunc::from_name("SUM"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::from_name("avg"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::from_name("median"), None);
    }
}
