//! Error type shared by the lexer, parser and analyzer.

use std::fmt;

/// Anything that can go wrong while compiling query text.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset of the offending character.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Parse error with a human-readable description.
    Parse {
        /// What went wrong.
        message: String,
    },
    /// Semantic error (unknown table/column, ambiguity, unsupported shape).
    Semantic {
        /// What went wrong.
        message: String,
    },
}

impl QueryError {
    /// A parse error.
    pub fn parse(message: impl Into<String>) -> Self {
        QueryError::Parse { message: message.into() }
    }

    /// A semantic error.
    pub fn semantic(message: impl Into<String>) -> Self {
        QueryError::Semantic { message: message.into() }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            QueryError::Parse { message } => write!(f, "parse error: {message}"),
            QueryError::Semantic { message } => write!(f, "semantic error: {message}"),
        }
    }
}

impl std::error::Error for QueryError {}
