//! Hand-written lexer for the HiveQL subset.

use crate::error::QueryError;

/// Lexical token. Keywords are recognized later (identifiers are kept as
/// spelled so `sum` works both as a keyword and as a column name prefix).
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (lowercased; Hive identifiers are case-insensitive).
    Ident(String),
    /// Numeric literal.
    Num(f64),
    /// Single-quoted string literal (quotes stripped).
    Str(String),
    /// Punctuation / operator: one of `( ) , . * + - / = < > <= >= <>`.
    Sym(&'static str),
}

impl Token {
    /// Case-insensitive keyword test for identifier tokens.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize `input`, returning tokens plus their byte offsets.
pub fn tokenize(input: &str) -> Result<Vec<(Token, usize)>, QueryError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if !bytes[i].is_ascii() {
            return Err(QueryError::Lex {
                offset: i,
                message: "non-ASCII character in query text".to_string(),
            });
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments `-- ...`
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            // Identifiers are case-insensitive (Hive lowercases them).
            out.push((Token::Ident(input[start..i].to_ascii_lowercase()), start));
        } else if c.is_ascii_digit() {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_digit()
                    || bytes[i] == b'.'
                    || bytes[i] == b'e'
                    || bytes[i] == b'E'
                    || ((bytes[i] == b'+' || bytes[i] == b'-')
                        && matches!(bytes.get(i - 1), Some(b'e') | Some(b'E'))))
            {
                i += 1;
            }
            let text = &input[start..i];
            let n: f64 = text.parse().map_err(|_| QueryError::Lex {
                offset: start,
                message: format!("bad number literal `{text}`"),
            })?;
            out.push((Token::Num(n), start));
        } else if c == '\'' {
            i += 1;
            let sstart = i;
            while i < bytes.len() && bytes[i] != b'\'' {
                i += 1;
            }
            if i >= bytes.len() {
                return Err(QueryError::Lex {
                    offset: start,
                    message: "unterminated string literal".to_string(),
                });
            }
            out.push((Token::Str(input[sstart..i].to_string()), start));
            i += 1; // closing quote
        } else {
            let two = if i + 1 < bytes.len() { &input[i..i + 2] } else { "" };
            let sym: &'static str = match two {
                "<=" => "<=",
                ">=" => ">=",
                "<>" => "<>",
                "!=" => "<>",
                _ => match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    '*' => "*",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    '=' => "=",
                    '<' => "<",
                    '>' => ">",
                    ';' => ";",
                    _ => {
                        return Err(QueryError::Lex {
                            offset: i,
                            message: format!("unexpected character `{c}`"),
                        })
                    }
                },
            };
            i += sym.len().max(1);
            if sym == "<>" && two == "!=" {
                // "!=" consumed two bytes but maps to "<>".
            }
            out.push((Token::Sym(sym), start));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn words_numbers_strings() {
        assert_eq!(
            toks("select x, 3.5 from 't'"),
            vec![
                Token::Ident("select".into()),
                Token::Ident("x".into()),
                Token::Sym(","),
                Token::Num(3.5),
                Token::Ident("from".into()),
                Token::Str("t".into()),
            ]
        );
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            toks("a <= b >= c <> d != e"),
            vec![
                Token::Ident("a".into()),
                Token::Sym("<="),
                Token::Ident("b".into()),
                Token::Sym(">="),
                Token::Ident("c".into()),
                Token::Sym("<>"),
                Token::Ident("d".into()),
                Token::Sym("<>"),
                Token::Ident("e".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a -- comment\n b"),
            vec![Token::Ident("a".into()), Token::Ident("b".into())]
        );
    }

    #[test]
    fn qualified_names() {
        assert_eq!(
            toks("s.s_suppkey"),
            vec![Token::Ident("s".into()), Token::Sym("."), Token::Ident("s_suppkey".into())]
        );
    }

    #[test]
    fn scientific_numbers() {
        assert_eq!(toks("1e3"), vec![Token::Num(1000.0)]);
        assert_eq!(toks("2.5e-2"), vec![Token::Num(0.025)]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(tokenize("'abc"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn bad_char_errors() {
        assert!(matches!(tokenize("a ยง b"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let t = Token::Ident("SeLeCt".into());
        assert!(t.is_kw("select"));
        assert!(!t.is_kw("from"));
    }
}
