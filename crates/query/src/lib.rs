#![warn(missing_docs)]
//! HiveQL-subset front end: lexing, parsing and semantic analysis.
//!
//! This crate reproduces the slice of the Hive compiler the paper's
//! framework hooks into: it turns declarative query text into an analyzed
//! form carrying *query semantics* — per-table predicates, projections, join
//! structure, group-by keys, sort/limit — which the planner
//! (`sapred-plan`) compiles into a DAG of MapReduce jobs and the estimator
//! (`sapred-selectivity`) consumes for selectivity estimation.
//!
//! Supported grammar (uppercase keywords are case-insensitive):
//!
//! ```text
//! SELECT item (',' item)*
//! FROM table [AS? alias]
//! (JOIN table [AS? alias] ON cond (AND cond)*)*
//! [WHERE predicate]
//! [GROUP BY column (',' column)*]
//! [ORDER BY column [ASC|DESC] (',' ...)*]
//! [LIMIT k]
//! ```
//!
//! where `item` is a column, arithmetic expression, or aggregate
//! (`SUM|COUNT|AVG|MIN|MAX`), and ON conditions are either equi-join
//! equalities (`a.x = b.y`) or single-table residual predicates
//! (`n.n_name <> 'CHINA'`), exactly as in the paper's modified TPC-H Q11.

pub mod analyze;
pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pig;

pub use analyze::{analyze, AnalyzedQuery, JoinSpec, LiteralResolver, ScanSpec};
pub use ast::{AggFunc, AstPred, ColRef, Literal, Query, SelectItem};
pub use error::QueryError;
pub use parser::parse;
pub use pig::PigScript;

/// Parse and analyze in one step.
pub fn compile_text(
    sql: &str,
    catalog: &sapred_relation::stats::Catalog,
    literals: &dyn LiteralResolver,
) -> Result<AnalyzedQuery, QueryError> {
    analyze(&parse(sql)?, catalog, literals)
}
