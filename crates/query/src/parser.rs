//! Recursive-descent parser for the HiveQL subset.

use crate::ast::*;
use crate::error::QueryError;
use crate::lexer::{tokenize, Token};

/// Parse one query.
pub fn parse(sql: &str) -> Result<Query, QueryError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.eat_sym(";").ok(); // optional trailing semicolon
    if !p.at_end() {
        return Err(QueryError::parse(format!("trailing input at token {:?}", p.peek())));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(QueryError::parse(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    fn eat_sym(&mut self, s: &str) -> Result<(), QueryError> {
        match self.peek() {
            Some(Token::Sym(x)) if *x == s => {
                self.pos += 1;
                Ok(())
            }
            other => Err(QueryError::parse(format!("expected `{s}`, found {other:?}"))),
        }
    }

    fn try_sym(&mut self, s: &str) -> bool {
        self.eat_sym(s).is_ok()
    }

    fn ident(&mut self) -> Result<String, QueryError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(QueryError::parse(format!("expected identifier, found {other:?}"))),
        }
    }

    fn query(&mut self) -> Result<Query, QueryError> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let select = self.select_list()?;
        self.expect_kw("from")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        while self.eat_kw("join") || (self.eat_kw("inner") && self.eat_kw("join")) {
            joins.push(self.join_clause()?);
        }
        let where_pred = if self.eat_kw("where") { Some(self.pred()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.colref()?);
                if !self.try_sym(",") {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let c = self.colref()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push((c, desc));
                if !self.try_sym(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.bump() {
                Some(Token::Num(n)) if n >= 0.0 && n.fract() == 0.0 => Some(n as u64),
                other => {
                    return Err(QueryError::parse(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query { distinct, select, from, joins, where_pred, group_by, order_by, limit })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, QueryError> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.try_sym(",") {
                break;
            }
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, QueryError> {
        // Aggregate?
        if let Some(Token::Ident(name)) = self.peek() {
            if let Some(func) = AggFunc::from_name(name) {
                // Lookahead for '(' to distinguish a column named e.g. `count`.
                if matches!(self.tokens.get(self.pos + 1), Some((Token::Sym("("), _))) {
                    self.pos += 2; // name + '('
                    let arg = if matches!(self.peek(), Some(Token::Sym("*"))) {
                        self.pos += 1;
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.eat_sym(")")?;
                    let alias = self.opt_alias()?;
                    return Ok(SelectItem::Agg { func, arg, alias });
                }
            }
        }
        let expr = self.expr()?;
        let alias = self.opt_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn opt_alias(&mut self) -> Result<Option<String>, QueryError> {
        if self.eat_kw("as") {
            return Ok(Some(self.ident()?));
        }
        Ok(None)
    }

    fn table_ref(&mut self) -> Result<TableRef, QueryError> {
        let table = self.ident()?;
        // Optional alias: `AS alias` or a bare identifier that is not a
        // clause keyword.
        if self.eat_kw("as") {
            return Ok(TableRef { table, alias: Some(self.ident()?) });
        }
        if let Some(Token::Ident(next)) = self.peek() {
            const CLAUSES: [&str; 8] =
                ["join", "inner", "where", "group", "order", "limit", "on", "select"];
            if !CLAUSES.iter().any(|k| next.eq_ignore_ascii_case(k)) {
                let alias = self.ident()?;
                return Ok(TableRef { table, alias: Some(alias) });
            }
        }
        Ok(TableRef { table, alias: None })
    }

    fn join_clause(&mut self) -> Result<JoinClause, QueryError> {
        let table = self.table_ref()?;
        self.expect_kw("on")?;
        let mut conds = vec![self.on_cond()?];
        while self.eat_kw("and") {
            conds.push(self.on_cond()?);
        }
        Ok(JoinClause { table, conds })
    }

    /// One ON condition: `col = col` (equi-join) or a residual predicate.
    fn on_cond(&mut self) -> Result<OnCond, QueryError> {
        let col = self.colref()?;
        let op = self.cmp_op()?;
        // Right-hand side: column ⇒ equi-join (only for `=`), else literal.
        if let Some(Token::Ident(_)) = self.peek() {
            let right = self.colref()?;
            if op != CmpOp::Eq {
                return Err(QueryError::parse(
                    "only equality joins are supported between columns".to_string(),
                ));
            }
            return Ok(OnCond::Equi { left: col, right });
        }
        let lit = self.literal()?;
        Ok(OnCond::Residual(AstPred::Cmp { col, op, lit }))
    }

    fn cmp_op(&mut self) -> Result<CmpOp, QueryError> {
        match self.bump() {
            Some(Token::Sym("=")) => Ok(CmpOp::Eq),
            Some(Token::Sym("<>")) => Ok(CmpOp::Ne),
            Some(Token::Sym("<")) => Ok(CmpOp::Lt),
            Some(Token::Sym("<=")) => Ok(CmpOp::Le),
            Some(Token::Sym(">")) => Ok(CmpOp::Gt),
            Some(Token::Sym(">=")) => Ok(CmpOp::Ge),
            other => Err(QueryError::parse(format!("expected comparison, found {other:?}"))),
        }
    }

    fn literal(&mut self) -> Result<Literal, QueryError> {
        match self.bump() {
            Some(Token::Num(n)) => Ok(Literal::Num(n)),
            Some(Token::Str(s)) => Ok(Literal::Str(s)),
            Some(Token::Sym("-")) => match self.bump() {
                Some(Token::Num(n)) => Ok(Literal::Num(-n)),
                other => {
                    Err(QueryError::parse(format!("expected number after `-`, found {other:?}")))
                }
            },
            other => Err(QueryError::parse(format!("expected literal, found {other:?}"))),
        }
    }

    fn colref(&mut self) -> Result<ColRef, QueryError> {
        let first = self.ident()?;
        if self.try_sym(".") {
            let name = self.ident()?;
            Ok(ColRef::qualified(first, name))
        } else {
            Ok(ColRef::bare(first))
        }
    }

    // Predicate grammar: or_pred := and_pred (OR and_pred)*
    fn pred(&mut self) -> Result<AstPred, QueryError> {
        let mut lhs = self.and_pred()?;
        while self.eat_kw("or") {
            let rhs = self.and_pred()?;
            lhs = AstPred::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_pred(&mut self) -> Result<AstPred, QueryError> {
        let mut lhs = self.atom_pred()?;
        while self.eat_kw("and") {
            let rhs = self.atom_pred()?;
            lhs = AstPred::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn atom_pred(&mut self) -> Result<AstPred, QueryError> {
        if self.try_sym("(") {
            let p = self.pred()?;
            self.eat_sym(")")?;
            return Ok(p);
        }
        let col = self.colref()?;
        if self.eat_kw("between") {
            let lo = self.literal()?;
            self.expect_kw("and")?;
            let hi = self.literal()?;
            return Ok(AstPred::Between { col, lo, hi });
        }
        if self.eat_kw("in") {
            self.eat_sym("(")?;
            let mut items = vec![self.literal()?];
            while self.try_sym(",") {
                items.push(self.literal()?);
            }
            self.eat_sym(")")?;
            if items.is_empty() {
                return Err(QueryError::parse("empty IN list"));
            }
            return Ok(AstPred::InList { col, items });
        }
        let op = self.cmp_op()?;
        let lit = self.literal()?;
        Ok(AstPred::Cmp { col, op, lit })
    }

    fn expr(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym("+")) => '+',
                Some(Token::Sym("-")) => '-',
                _ => break,
            };
            self.pos += 1;
            let rhs = self.term()?;
            lhs = Expr::BinOp { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym("*")) => '*',
                Some(Token::Sym("/")) => '/',
                _ => break,
            };
            self.pos += 1;
            let rhs = self.factor()?;
            lhs = Expr::BinOp { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, QueryError> {
        match self.peek() {
            Some(Token::Num(_)) => {
                if let Some(Token::Num(n)) = self.bump() {
                    Ok(Expr::Num(n))
                } else {
                    unreachable!()
                }
            }
            Some(Token::Sym("(")) => {
                self.pos += 1;
                let e = self.expr()?;
                self.eat_sym(")")?;
                Ok(e)
            }
            Some(Token::Ident(_)) => Ok(Expr::Col(self.colref()?)),
            other => Err(QueryError::parse(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_select() {
        let q = parse("SELECT l_quantity FROM lineitem").unwrap();
        assert_eq!(q.select.len(), 1);
        assert_eq!(q.from.table, "lineitem");
        assert!(q.joins.is_empty());
        assert!(q.where_pred.is_none());
    }

    #[test]
    fn where_group_order_limit() {
        let q = parse(
            "SELECT l_partkey, sum(l_extendedprice) FROM lineitem \
             WHERE l_shipdate >= 100 AND l_shipdate < 130 \
             GROUP BY l_partkey ORDER BY l_partkey DESC LIMIT 10;",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.order_by, vec![(ColRef::bare("l_partkey"), true)]);
        assert_eq!(q.limit, Some(10));
        let conj = q.where_pred.as_ref().unwrap().conjuncts().len();
        assert_eq!(conj, 2);
    }

    #[test]
    fn paper_q11_parses() {
        let q = parse(
            "SELECT ps_partkey, sum(ps_supplycost*ps_availqty) \
             FROM nation n JOIN supplier s ON \
             s.s_nationkey=n.n_nationkey AND n.n_name<>'CHINA' \
             JOIN partsupp ps ON ps.ps_suppkey=s.s_suppkey \
             GROUP BY ps_partkey;",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.from.binding(), "n");
        match &q.joins[0].conds[..] {
            [OnCond::Equi { left, right }, OnCond::Residual(_)] => {
                assert_eq!(left.qualifier.as_deref(), Some("s"));
                assert_eq!(right.name, "n_nationkey");
            }
            other => panic!("unexpected conds {other:?}"),
        }
        match &q.select[1] {
            SelectItem::Agg {
                func: AggFunc::Sum, arg: Some(Expr::BinOp { op: '*', .. }), ..
            } => {}
            other => panic!("unexpected select item {other:?}"),
        }
    }

    #[test]
    fn between_and_strings() {
        let q = parse(
            "SELECT c_custkey FROM customer WHERE c_acctbal BETWEEN 0 AND 100 \
             OR c_mktsegment = 'BUILDING'",
        )
        .unwrap();
        match q.where_pred.unwrap() {
            AstPred::Or(a, b) => {
                assert!(matches!(*a, AstPred::Between { .. }));
                assert!(matches!(*b, AstPred::Cmp { lit: Literal::Str(_), .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_star() {
        let q = parse("SELECT count(*) FROM orders").unwrap();
        assert!(matches!(q.select[0], SelectItem::Agg { func: AggFunc::Count, arg: None, .. }));
    }

    #[test]
    fn negative_literal() {
        let q = parse("SELECT s_suppkey FROM supplier WHERE s_acctbal > -100").unwrap();
        match q.where_pred.unwrap() {
            AstPred::Cmp { lit: Literal::Num(n), .. } => assert_eq!(n, -100.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(
            parse("SELECT a FROM t blah blah").is_err() || parse("SELECT a FROM t 42").is_err()
        );
    }

    #[test]
    fn non_equality_column_join_rejected() {
        let r = parse("SELECT a FROM t JOIN u ON t.a < u.b");
        assert!(r.is_err());
    }

    #[test]
    fn alias_without_as() {
        let q = parse("SELECT n.n_name FROM nation n WHERE n.n_regionkey = 1").unwrap();
        assert_eq!(q.from.alias.as_deref(), Some("n"));
    }

    #[test]
    fn in_list_parses() {
        let q = parse("SELECT n_name FROM nation WHERE n_regionkey IN (1, 2, 4)").unwrap();
        match q.where_pred.unwrap() {
            AstPred::InList { items, .. } => assert_eq!(items.len(), 3),
            other => panic!("{other:?}"),
        }
        assert!(parse("SELECT a FROM t WHERE b IN ()").is_err());
    }

    #[test]
    fn select_distinct_parses() {
        let q = parse("SELECT DISTINCT l_partkey, l_suppkey FROM lineitem").unwrap();
        assert!(q.distinct);
        let q = parse("SELECT l_partkey FROM lineitem").unwrap();
        assert!(!q.distinct);
    }

    #[test]
    fn limit_must_be_integer() {
        assert!(parse("SELECT a FROM t LIMIT 2.5").is_err());
    }
}
