//! Property tests for the SQL front end: randomly composed queries within
//! the supported grammar always parse and analyze; malformed inputs error
//! without panicking.

use proptest::prelude::*;
use sapred_query::{analyze, parse};
use sapred_relation::gen::{generate, Database, GenConfig};

fn db() -> Database {
    generate(GenConfig::new(0.05).with_seed(1))
}

/// Columns of lineitem usable in numeric predicates.
const NUM_COLS: [&str; 4] = ["l_quantity", "l_shipdate", "l_extendedprice", "l_discount"];
const KEY_COLS: [&str; 3] = ["l_orderkey", "l_partkey", "l_suppkey"];
const OPS: [&str; 6] = ["=", "<>", "<", "<=", ">", ">="];

fn pred_strategy() -> impl Strategy<Value = String> {
    let atom = (0..NUM_COLS.len(), 0..OPS.len(), -100.0f64..3000.0)
        .prop_map(|(c, o, v)| format!("{} {} {:.2}", NUM_COLS[c], OPS[o], v));
    let between = (0..NUM_COLS.len(), 0.0f64..1000.0, 0.0f64..1000.0)
        .prop_map(|(c, a, b)| format!("{} BETWEEN {:.1} AND {:.1}", NUM_COLS[c], a, a + b));
    let leaf = prop_oneof![atom, between];
    leaf.prop_recursive(3, 12, 2, |inner| {
        (inner.clone(), prop::sample::select(vec!["AND", "OR"]), inner)
            .prop_map(|(a, conj, b)| format!("({a} {conj} {b})"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_filters_compile(pred in pred_strategy(), limit in prop::option::of(1u64..100000)) {
        let db = db();
        let limit_clause = limit.map(|k| format!(" LIMIT {k}")).unwrap_or_default();
        let sql = format!("SELECT l_orderkey, l_quantity FROM lineitem WHERE {pred}{limit_clause}");
        let q = parse(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let a = analyze(&q, db.catalog(), &db).unwrap_or_else(|e| panic!("{sql}: {e}"));
        prop_assert_eq!(a.scans.len(), 1);
        prop_assert_eq!(a.limit, limit);
    }

    #[test]
    fn random_groupbys_compile(
        key in 0..KEY_COLS.len(),
        agg_col in 0..NUM_COLS.len(),
        pred in pred_strategy(),
    ) {
        let db = db();
        let sql = format!(
            "SELECT {k}, sum({a}), count(*) FROM lineitem WHERE {pred} GROUP BY {k}",
            k = KEY_COLS[key],
            a = NUM_COLS[agg_col]
        );
        let a = analyze(&parse(&sql).unwrap(), db.catalog(), &db).unwrap();
        prop_assert_eq!(a.group_by.len(), 1);
        prop_assert_eq!(a.aggs.len(), 2);
        // Group key must be in the scan projection; predicate columns only
        // if they are also selected.
        prop_assert!(a.scans[0].projection.contains(&KEY_COLS[key].to_string()));
    }

    #[test]
    fn whitespace_and_case_are_insignificant(extra_ws in 1usize..5) {
        let db = db();
        let ws = " ".repeat(extra_ws);
        let sql =
            format!("select{ws}L_ORDERKEY{ws}FROM{ws}lineitem{ws}WhErE{ws}l_quantity{ws}>{ws}10");
        let a = analyze(&parse(&sql).unwrap(), db.catalog(), &db).unwrap();
        prop_assert_eq!(a.scans[0].table.as_str(), "lineitem");
    }

    #[test]
    fn garbage_never_panics(junk in "[ -~]{0,80}") {
        // Arbitrary printable ASCII: parsing may fail but must not panic.
        let _ = parse(&junk);
    }

    #[test]
    fn truncated_queries_error_cleanly(cut in 0usize..60) {
        let sql = "SELECT l_orderkey FROM lineitem WHERE l_quantity > 10 ORDER BY l_orderkey";
        let truncated = &sql[..cut.min(sql.len())];
        // Prefixes of a valid query are either valid or clean errors.
        let _ = parse(truncated);
    }
}
