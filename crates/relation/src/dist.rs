//! Sampling utilities implemented directly on top of `rand`.
//!
//! The approved offline crate set does not include `rand_distr`, so the three
//! distributions the reproduction needs — Zipf (skewed join/groupby keys),
//! log-normal (multiplicative task-time noise) and Poisson (query arrivals,
//! paper §5.1) — are implemented here from first principles.

use rand::Rng;

/// A Zipf(α) sampler over the integer domain `1..=n`.
///
/// Uses a precomputed cumulative weight table with binary-search inversion,
/// which is exact and O(log n) per sample. Suitable for the key-skew regimes
/// used in join-cardinality experiments (α in `[0, ~2]`).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `1..=n` with exponent `alpha >= 0`.
    /// `alpha == 0` degenerates to the discrete uniform distribution.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is negative/non-finite.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(alpha >= 0.0 && alpha.is_finite(), "alpha must be finite and >= 0");
        let mut cumulative = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for k in 1..=n {
            total += (k as f64).powf(-alpha);
            cumulative.push(total);
        }
        // Normalize so the last entry is exactly 1.0.
        let norm = 1.0 / total;
        for c in &mut cumulative {
            *c *= norm;
        }
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Self { cumulative }
    }

    /// Domain size `n`.
    pub fn n(&self) -> u64 {
        self.cumulative.len() as u64
    }

    /// Draw one value in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in table")) {
            Ok(i) | Err(i) => (i as u64 + 1).min(self.n()),
        }
    }
}

/// Sample a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would give ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample a log-normal multiplicative factor with median 1 and the given
/// `sigma` of the underlying normal. Used as run-to-run task-time noise.
pub fn lognormal_factor<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    (standard_normal(rng) * sigma).exp()
}

/// Sample an exponential inter-arrival gap with the given rate (events per
/// unit time), i.e. the gap process of a Poisson arrival stream.
pub fn exponential_gap<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "arrival rate must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Sample a Poisson-distributed count with mean `lambda` (Knuth's method for
/// small lambda, normal approximation above 60).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0);
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 60.0 {
        let x = lambda + lambda.sqrt() * standard_normal(rng);
        return x.max(0.0).round() as u64;
    }
    let limit = (-lambda).exp();
    let mut product: f64 = rng.gen();
    let mut count = 0;
    while product > limit {
        product *= rng.gen::<f64>();
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_uniform_when_alpha_zero() {
        let mut rng = StdRng::seed_from_u64(7);
        let z = Zipf::new(10, 0.0);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[(z.sample(&mut rng) - 1) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket should hold ~10% of the mass.
            assert!((c as f64 - 10_000.0).abs() < 800.0, "counts = {counts:?}");
        }
    }

    #[test]
    fn zipf_skews_toward_small_keys() {
        let mut rng = StdRng::seed_from_u64(7);
        let z = Zipf::new(100, 1.2);
        let mut head = 0u32;
        let n = 50_000;
        for _ in 0..n {
            if z.sample(&mut rng) <= 5 {
                head += 1;
            }
        }
        // With alpha = 1.2 the top-5 keys carry well over a third of the mass.
        assert!(head as f64 / n as f64 > 0.35, "head fraction {}", head as f64 / n as f64);
    }

    #[test]
    fn zipf_stays_in_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = Zipf::new(17, 0.9);
        for _ in 0..10_000 {
            let v = z.sample(&mut rng);
            assert!((1..=17).contains(&v));
        }
    }

    #[test]
    fn lognormal_median_near_one() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut samples: Vec<f64> = (0..20_001).map(|_| lognormal_factor(&mut rng, 0.25)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
        assert!(samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = StdRng::seed_from_u64(13);
        for &lambda in &[0.5, 4.0, 30.0, 90.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!((mean - lambda).abs() < 0.1 * lambda + 0.1, "lambda {lambda} mean {mean}");
        }
    }

    #[test]
    fn exponential_gap_mean_is_inverse_rate() {
        let mut rng = StdRng::seed_from_u64(17);
        let rate = 2.5;
        let n = 50_000;
        let total: f64 = (0..n).map(|_| exponential_gap(&mut rng, rate)).sum();
        let mean = total / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.02, "mean {mean}");
    }
}
