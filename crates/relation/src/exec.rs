//! Count-only relational execution: the ground truth the estimator is judged
//! against.
//!
//! A real Hadoop job materializes its intermediate and final data on disk;
//! the paper measures `D_med`/`D_out` from job counters. Here we execute the
//! relational semantics of each job exactly — filters, projections, hash
//! joins, group-bys, map-side combiners — over the generated tables, keeping
//! only the columns later operators need, and report exact tuple counts. The
//! byte-level accounting (widths × tuples × scale) is done by the planner.

use crate::expr::Predicate;
use crate::table::{Column, Table};
use std::collections::{HashMap, HashSet};

/// A lightweight materialized relation flowing between job stages.
#[derive(Debug, Clone)]
pub struct Rel {
    names: Vec<String>,
    widths: Vec<f64>,
    cols: Vec<Column>,
    rows: usize,
}

impl Rel {
    /// Filter a base table with `pred` and keep only `projection` columns.
    /// An empty projection keeps every column.
    pub fn from_table(table: &Table, pred: &Predicate, projection: &[String]) -> Self {
        let keep: Vec<usize> = if projection.is_empty() {
            (0..table.schema().len()).collect()
        } else {
            projection
                .iter()
                .map(|n| {
                    table
                        .schema()
                        .index_of(n)
                        .unwrap_or_else(|| panic!("unknown column {n} in {}", table.name()))
                })
                .collect()
        };
        let mut selected = Vec::new();
        for i in 0..table.rows() {
            if pred.eval(table, i) {
                selected.push(i);
            }
        }
        let cols: Vec<Column> = keep
            .iter()
            .map(|&c| match table.column_at(c) {
                Column::Int(v) => Column::Int(selected.iter().map(|&i| v[i]).collect()),
                Column::Float(v) => Column::Float(selected.iter().map(|&i| v[i]).collect()),
            })
            .collect();
        let names = keep.iter().map(|&c| table.schema().columns()[c].name.clone()).collect();
        let widths = keep.iter().map(|&c| table.schema().columns()[c].dtype.width()).collect();
        Self { names, widths, cols, rows: selected.len() }
    }

    /// Build a relation directly from columns (tests, synthetic inputs).
    pub fn from_columns(names: Vec<String>, widths: Vec<f64>, cols: Vec<Column>) -> Self {
        assert_eq!(names.len(), cols.len());
        assert_eq!(widths.len(), cols.len());
        let rows = cols.first().map_or(0, Column::len);
        assert!(cols.iter().all(|c| c.len() == rows), "ragged relation");
        Self { names, widths, cols, rows }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Average tuple width of this relation in bytes.
    pub fn tuple_width(&self) -> f64 {
        self.widths.iter().sum()
    }

    /// Physical bytes of the relation.
    pub fn physical_bytes(&self) -> f64 {
        self.rows as f64 * self.tuple_width()
    }

    /// Column data by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.names.iter().position(|n| n == name).map(|i| &self.cols[i])
    }

    fn col_index(&self, name: &str) -> usize {
        self.names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("unknown column {name} (have {:?})", self.names))
    }

    /// Evaluate a predicate over this relation's row `i`.
    fn eval_pred(&self, pred: &Predicate, i: usize) -> bool {
        match pred {
            Predicate::True => true,
            Predicate::Cmp { column, op, value } => {
                op.eval(self.cols[self.col_index(column)].get_f64(i), *value)
            }
            Predicate::Between { column, lo, hi } => {
                let v = self.cols[self.col_index(column)].get_f64(i);
                *lo <= v && v <= *hi
            }
            Predicate::And(a, b) => self.eval_pred(a, i) && self.eval_pred(b, i),
            Predicate::Or(a, b) => self.eval_pred(a, i) || self.eval_pred(b, i),
        }
    }

    /// Filter this relation by `pred`.
    pub fn filter(&self, pred: &Predicate) -> Rel {
        let selected: Vec<usize> = (0..self.rows).filter(|&i| self.eval_pred(pred, i)).collect();
        let cols = self
            .cols
            .iter()
            .map(|c| match c {
                Column::Int(v) => Column::Int(selected.iter().map(|&i| v[i]).collect()),
                Column::Float(v) => Column::Float(selected.iter().map(|&i| v[i]).collect()),
            })
            .collect();
        Rel { names: self.names.clone(), widths: self.widths.clone(), cols, rows: selected.len() }
    }

    /// Keep only the named columns.
    pub fn project(&self, keep: &[String]) -> Rel {
        let idx: Vec<usize> = keep.iter().map(|n| self.col_index(n)).collect();
        Rel {
            names: idx.iter().map(|&i| self.names[i].clone()).collect(),
            widths: idx.iter().map(|&i| self.widths[i]).collect(),
            cols: idx.iter().map(|&i| self.cols[i].clone()).collect(),
            rows: self.rows,
        }
    }

    /// Rename a column (used to disambiguate self-join outputs).
    pub fn rename_column(&mut self, old: &str, new: impl Into<String>) {
        let i = self.col_index(old);
        self.names[i] = new.into();
    }

    /// Append a column (e.g. aggregate placeholder columns on a group-by
    /// output, so downstream byte accounting sees their width).
    ///
    /// # Panics
    /// Panics if the column length differs from the relation's row count.
    pub fn push_column(&mut self, name: impl Into<String>, width: f64, col: Column) {
        assert_eq!(col.len(), self.rows, "column length mismatch");
        self.names.push(name.into());
        self.widths.push(width);
        self.cols.push(col);
    }

    /// First `n` rows (LIMIT semantics; order is the relation's row order).
    pub fn head(&self, n: usize) -> Rel {
        let keep = n.min(self.rows);
        let cols = self
            .cols
            .iter()
            .map(|c| match c {
                Column::Int(v) => Column::Int(v[..keep].to_vec()),
                Column::Float(v) => Column::Float(v[..keep].to_vec()),
            })
            .collect();
        Rel { names: self.names.clone(), widths: self.widths.clone(), cols, rows: keep }
    }

    /// Number of distinct combinations of the key columns (exact group count).
    pub fn group_count(&self, keys: &[String]) -> usize {
        let idx: Vec<usize> = keys.iter().map(|k| self.col_index(k)).collect();
        let mut seen: HashSet<Vec<i64>> = HashSet::new();
        for i in 0..self.rows {
            let key: Vec<i64> =
                idx.iter().map(|&c| self.cols[c].get_f64(i).to_bits() as i64).collect();
            seen.insert(key);
        }
        seen.len()
    }

    /// Collapse to one row per distinct key combination (group-by output with
    /// the key columns only; aggregate widths are accounted for logically by
    /// the planner).
    pub fn groupby(&self, keys: &[String]) -> Rel {
        let idx: Vec<usize> = keys.iter().map(|k| self.col_index(k)).collect();
        let mut seen: HashSet<Vec<i64>> = HashSet::new();
        let mut rows_kept: Vec<usize> = Vec::new();
        for i in 0..self.rows {
            let key: Vec<i64> =
                idx.iter().map(|&c| self.cols[c].get_f64(i).to_bits() as i64).collect();
            if seen.insert(key) {
                rows_kept.push(i);
            }
        }
        let cols = idx
            .iter()
            .map(|&c| match &self.cols[c] {
                Column::Int(v) => Column::Int(rows_kept.iter().map(|&i| v[i]).collect()),
                Column::Float(v) => Column::Float(rows_kept.iter().map(|&i| v[i]).collect()),
            })
            .collect();
        Rel {
            names: keys.to_vec(),
            widths: idx.iter().map(|&i| self.widths[i]).collect(),
            cols,
            rows: rows_kept.len(),
        }
    }

    /// Ground truth for a map-side combiner: split the relation into
    /// `n_splits` contiguous chunks (HDFS splits preserve file order) and sum
    /// the per-split distinct key counts. Clustered layouts give ≈ the global
    /// distinct count; random layouts approach `n_splits ×` it (paper Eq. 2's
    /// two cases emerge from the data rather than being assumed).
    pub fn combine_output(&self, keys: &[String], n_splits: usize) -> usize {
        assert!(n_splits > 0);
        if self.rows == 0 {
            return 0;
        }
        let idx: Vec<usize> = keys.iter().map(|k| self.col_index(k)).collect();
        let per_split = self.rows.div_ceil(n_splits);
        let mut total = 0usize;
        let mut start = 0usize;
        while start < self.rows {
            let end = (start + per_split).min(self.rows);
            let mut seen: HashSet<Vec<i64>> = HashSet::new();
            for i in start..end {
                let key: Vec<i64> =
                    idx.iter().map(|&c| self.cols[c].get_f64(i).to_bits() as i64).collect();
                seen.insert(key);
            }
            total += seen.len();
            start = end;
        }
        total
    }
}

/// Exact inner equi-join: materializes all matching row pairs, keeping every
/// column of both sides (callers project first to bound memory).
///
/// # Panics
/// Panics if a key column is missing, or if the two sides share a column
/// name (qualify names before joining).
pub fn hash_join(left: &Rel, right: &Rel, left_key: &str, right_key: &str) -> Rel {
    for n in left.names() {
        assert!(
            !right.names().contains(n),
            "duplicate column {n} across join sides; qualify names first"
        );
    }
    // Build on the smaller side.
    let (build, probe, build_key, probe_key, build_is_left) = if left.rows() <= right.rows() {
        (left, right, left_key, right_key, true)
    } else {
        (right, left, right_key, left_key, false)
    };
    let bkey = build.col_index(build_key);
    let pkey = probe.col_index(probe_key);
    let mut ht: HashMap<i64, Vec<u32>> = HashMap::new();
    for i in 0..build.rows() {
        ht.entry(build.cols[bkey].get_i64(i)).or_default().push(i as u32);
    }
    let mut build_rows: Vec<u32> = Vec::new();
    let mut probe_rows: Vec<u32> = Vec::new();
    for i in 0..probe.rows() {
        if let Some(matches) = ht.get(&probe.cols[pkey].get_i64(i)) {
            for &b in matches {
                build_rows.push(b);
                probe_rows.push(i as u32);
            }
        }
    }
    let take = |rel: &Rel, rows: &[u32]| -> Vec<Column> {
        rel.cols
            .iter()
            .map(|c| match c {
                Column::Int(v) => Column::Int(rows.iter().map(|&i| v[i as usize]).collect()),
                Column::Float(v) => Column::Float(rows.iter().map(|&i| v[i as usize]).collect()),
            })
            .collect()
    };
    let (lrows, rrows) =
        if build_is_left { (&build_rows, &probe_rows) } else { (&probe_rows, &build_rows) };
    let (lrel, rrel) = if build_is_left { (build, probe) } else { (probe, build) };
    let mut names = lrel.names.clone();
    names.extend(rrel.names.iter().cloned());
    let mut widths = lrel.widths.clone();
    widths.extend(rrel.widths.iter().copied());
    let mut cols = take(lrel, lrows);
    cols.extend(take(rrel, rrows));
    Rel { names, widths, cols, rows: build_rows.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Predicate};
    use crate::schema::{ColumnDef, DataType, Schema};

    fn base_table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("k", DataType::Int),
            ColumnDef::new("g", DataType::Int),
            ColumnDef::new("v", DataType::Float),
        ]);
        Table::new(
            "t",
            schema,
            vec![
                Column::Int(vec![0, 1, 2, 3, 4, 5]),
                Column::Int(vec![0, 0, 1, 1, 2, 2]),
                Column::Float(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
            ],
        )
    }

    #[test]
    fn filter_and_project() {
        let t = base_table();
        let r =
            Rel::from_table(&t, &Predicate::cmp("v", CmpOp::Gt, 3.0), &["k".into(), "g".into()]);
        assert_eq!(r.rows(), 3);
        assert_eq!(r.names(), &["k".to_string(), "g".to_string()]);
        assert_eq!(r.tuple_width(), 16.0);
    }

    #[test]
    fn empty_projection_keeps_all() {
        let t = base_table();
        let r = Rel::from_table(&t, &Predicate::True, &[]);
        assert_eq!(r.rows(), 6);
        assert_eq!(r.names().len(), 3);
        assert_eq!(r.tuple_width(), 24.0);
    }

    #[test]
    fn group_count_exact() {
        let t = base_table();
        let r = Rel::from_table(&t, &Predicate::True, &[]);
        assert_eq!(r.group_count(&["g".into()]), 3);
        assert_eq!(r.group_count(&["g".into(), "k".into()]), 6);
        let g = r.groupby(&["g".into()]);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.names(), &["g".to_string()]);
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let l = Rel::from_columns(
            vec!["a".into(), "x".into()],
            vec![8.0, 8.0],
            vec![Column::Int(vec![1, 2, 2, 3]), Column::Int(vec![10, 20, 21, 30])],
        );
        let r = Rel::from_columns(
            vec!["b".into(), "y".into()],
            vec![8.0, 8.0],
            vec![Column::Int(vec![2, 2, 3, 4]), Column::Int(vec![200, 201, 300, 400])],
        );
        let j = hash_join(&l, &r, "a", "b");
        // a=2 matches twice on each side (2×2=4), a=3 once: 5 rows total.
        assert_eq!(j.rows(), 5);
        assert_eq!(j.names().len(), 4);
        // Column preservation: every output row satisfies a == b.
        let a = j.column("a").unwrap();
        let b = j.column("b").unwrap();
        for i in 0..j.rows() {
            assert_eq!(a.get_i64(i), b.get_i64(i));
        }
    }

    #[test]
    fn join_empty_side_yields_empty() {
        let l = Rel::from_columns(vec!["a".into()], vec![8.0], vec![Column::Int(vec![])]);
        let r = Rel::from_columns(vec!["b".into()], vec![8.0], vec![Column::Int(vec![1, 2])]);
        assert_eq!(hash_join(&l, &r, "a", "b").rows(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn join_rejects_ambiguous_names() {
        let l = Rel::from_columns(vec!["a".into()], vec![8.0], vec![Column::Int(vec![1])]);
        let r = Rel::from_columns(vec!["a".into()], vec![8.0], vec![Column::Int(vec![1])]);
        hash_join(&l, &r, "a", "a");
    }

    #[test]
    fn combiner_clustered_vs_random() {
        // 100 groups × 10 tuples each.
        let clustered: Vec<i64> = (0..100).flat_map(|g| std::iter::repeat_n(g, 10)).collect();
        // Deterministic round-robin interleave: every split sees every group.
        let random: Vec<i64> = (0..1000).map(|i| i % 100).collect();
        let mk = |vals: Vec<i64>| {
            Rel::from_columns(vec!["g".into()], vec![8.0], vec![Column::Int(vals)])
        };
        let c = mk(clustered).combine_output(&["g".into()], 10);
        let r = mk(random).combine_output(&["g".into()], 10);
        // Clustered: each split sees ~10 distinct keys; total ≈ 100 + boundary
        // overlaps. Random: every split sees ~100 keys; total ≈ 1000.
        assert!(c <= 110, "clustered combine {c}");
        assert!(r >= 900, "random combine {r}");
    }

    #[test]
    fn combine_output_single_split_is_group_count() {
        let t = base_table();
        let r = Rel::from_table(&t, &Predicate::True, &[]);
        assert_eq!(r.combine_output(&["g".into()], 1), r.group_count(&["g".into()]));
    }

    #[test]
    fn filter_on_rel() {
        let t = base_table();
        let r = Rel::from_table(&t, &Predicate::True, &[]);
        let f = r.filter(&Predicate::between("v", 2.0, 4.0));
        assert_eq!(f.rows(), 3);
    }
}
