//! Predicate expressions shared by the executor (exact evaluation) and the
//! selectivity estimator (histogram evaluation).
//!
//! A predicate here is what the paper's §3.1.1 calls a *predicate clause*:
//! comparisons of a column against constants, combined with AND/OR. String
//! literals are lowered to dictionary codes before reaching this layer.

use crate::table::Table;

/// Comparison operator of a simple predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    #[inline]
    /// Apply the comparison to two values.
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A predicate over a single table's columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (no WHERE clause).
    True,
    /// `column op constant`.
    Cmp {
        /// Compared column.
        column: String,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand constant (string literals already lowered to codes).
        value: f64,
    },
    /// `column BETWEEN lo AND hi` (inclusive).
    Between {
        /// Tested column.
        column: String,
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// Conjunction of two predicates.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction of two predicates.
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// `column op value`.
    pub fn cmp(column: impl Into<String>, op: CmpOp, value: f64) -> Self {
        Predicate::Cmp { column: column.into(), op, value }
    }

    /// `column BETWEEN lo AND hi`.
    pub fn between(column: impl Into<String>, lo: f64, hi: f64) -> Self {
        Predicate::Between { column: column.into(), lo, hi }
    }

    /// Conjoin with `other`, collapsing `True` operands.
    pub fn and(self, other: Predicate) -> Self {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (a, b) => Predicate::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjoin with `other`.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Evaluate the predicate against row `i` of `table`.
    pub fn eval(&self, table: &Table, i: usize) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp { column, op, value } => {
                let col = table
                    .column(column)
                    .unwrap_or_else(|| panic!("unknown column {column} in {}", table.name()));
                op.eval(col.get_f64(i), *value)
            }
            Predicate::Between { column, lo, hi } => {
                let col = table
                    .column(column)
                    .unwrap_or_else(|| panic!("unknown column {column} in {}", table.name()));
                let v = col.get_f64(i);
                *lo <= v && v <= *hi
            }
            Predicate::And(a, b) => a.eval(table, i) && b.eval(table, i),
            Predicate::Or(a, b) => a.eval(table, i) || b.eval(table, i),
        }
    }

    /// All column names referenced by this predicate.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::True => {}
            Predicate::Cmp { column, .. } | Predicate::Between { column, .. } => {
                out.push(column.as_str());
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
        }
    }

    /// Whether this predicate is trivially true.
    pub fn is_true(&self) -> bool {
        matches!(self, Predicate::True)
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::Cmp { column, op, value } => write!(f, "{column} {op} {value}"),
            Predicate::Between { column, lo, hi } => {
                write!(f, "{column} between {lo} and {hi}")
            }
            Predicate::And(a, b) => write!(f, "({a} and {b})"),
            Predicate::Or(a, b) => write!(f, "({a} or {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType, Schema};
    use crate::table::Column;

    fn t() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Float),
        ]);
        Table::new(
            "t",
            schema,
            vec![Column::Int(vec![1, 5, 9]), Column::Float(vec![0.1, 0.5, 0.9])],
        )
    }

    #[test]
    fn cmp_eval() {
        let t = t();
        let p = Predicate::cmp("a", CmpOp::Ge, 5.0);
        assert!(!p.eval(&t, 0));
        assert!(p.eval(&t, 1));
        assert!(p.eval(&t, 2));
    }

    #[test]
    fn between_is_inclusive() {
        let t = t();
        let p = Predicate::between("b", 0.1, 0.5);
        assert!(p.eval(&t, 0));
        assert!(p.eval(&t, 1));
        assert!(!p.eval(&t, 2));
    }

    #[test]
    fn and_or_combinators() {
        let t = t();
        let p = Predicate::cmp("a", CmpOp::Gt, 2.0).and(Predicate::cmp("b", CmpOp::Lt, 0.9));
        assert!(!p.eval(&t, 0));
        assert!(p.eval(&t, 1));
        assert!(!p.eval(&t, 2));
        let q = Predicate::cmp("a", CmpOp::Eq, 1.0).or(Predicate::cmp("a", CmpOp::Eq, 9.0));
        assert!(q.eval(&t, 0));
        assert!(!q.eval(&t, 1));
        assert!(q.eval(&t, 2));
    }

    #[test]
    fn and_with_true_collapses() {
        let p = Predicate::True.and(Predicate::cmp("a", CmpOp::Eq, 1.0));
        assert_eq!(p, Predicate::cmp("a", CmpOp::Eq, 1.0));
    }

    #[test]
    fn columns_are_deduped() {
        let p = Predicate::cmp("a", CmpOp::Gt, 1.0)
            .and(Predicate::cmp("b", CmpOp::Lt, 2.0).or(Predicate::cmp("a", CmpOp::Eq, 3.0)));
        assert_eq!(p.columns(), vec!["a", "b"]);
    }
}
