//! TPC-H-shaped synthetic database generator.
//!
//! The paper trains and evaluates on TPC-H / TPC-DS data between 1 GB and
//! 400 GB. We generate the eight TPC-H tables with the standard row-count
//! ratios, down-scaled by [`crate::SCALE_DOWN`], and with *controllable key
//! distributions* (uniform / Zipf-skewed foreign keys, clustered / random row
//! layout) so that every selectivity-estimation code path of §3 — including
//! the clustered-vs-random `S_comb` cases of Eq. 2 and the skewed-join
//! buckets of Eq. 5 — is exercised by real data.

use crate::dist::Zipf;
use crate::schema::{ColumnDef, DataType, Schema};
use crate::stats::{Catalog, HistogramKind, TableStats, DEFAULT_BUCKETS};
use crate::table::{Column, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Distribution of foreign-key columns in the fact tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Keys drawn uniformly from the referenced domain.
    Uniform,
    /// Keys drawn Zipf(alpha); hot keys concentrate join/groupby mass.
    Zipf(f64),
}

/// Physical row order of the fact tables, which determines how effective a
/// map-side combiner is (paper Eq. 2: clustered vs randomly distributed
/// group-by keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Rows sorted by their primary grouping key: a combiner sees each key in
    /// one map split only.
    Clustered,
    /// Rows in random order: every map split sees (almost) every hot key.
    Random,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Nominal scale factor in "paper gigabytes" (fractional allowed).
    pub scale_gb: f64,
    /// RNG seed: same seed, same database.
    pub seed: u64,
    /// Distribution of fact-table foreign keys.
    pub key_dist: KeyDist,
    /// Physical row order of the fact tables.
    pub layout: Layout,
    /// Histogram buckets used when gathering catalog statistics.
    pub buckets: usize,
    /// Histogram family gathered into the catalog.
    pub hist_kind: HistogramKind,
}

impl GenConfig {
    /// Defaults: uniform keys, random layout, 64 equi-width buckets.
    pub fn new(scale_gb: f64) -> Self {
        Self {
            scale_gb,
            seed: 42,
            key_dist: KeyDist::Uniform,
            layout: Layout::Random,
            buckets: DEFAULT_BUCKETS,
            hist_kind: HistogramKind::EquiWidth,
        }
    }

    /// Set the generator seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the foreign-key distribution.
    pub fn with_key_dist(mut self, d: KeyDist) -> Self {
        self.key_dist = d;
        self
    }

    /// Set the fact-table row layout.
    pub fn with_layout(mut self, l: Layout) -> Self {
        self.layout = l;
        self
    }

    /// Set the histogram bucket count gathered into the catalog.
    pub fn with_buckets(mut self, b: usize) -> Self {
        self.buckets = b;
        self
    }

    /// Set the histogram family gathered into the catalog.
    pub fn with_hist_kind(mut self, k: HistogramKind) -> Self {
        self.hist_kind = k;
        self
    }
}

/// A generated database instance: materialized tables plus gathered catalog.
#[derive(Debug, Clone)]
pub struct Database {
    /// The configuration this instance was generated with.
    pub config: GenConfig,
    tables: HashMap<String, Table>,
    catalog: Catalog,
}

impl Database {
    /// Look up a materialized table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// The gathered metastore statistics.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

/// Date domain: days since 1992-01-01, seven years.
pub const DATE_MIN: i64 = 0;
/// Last representable day (end of 1998).
pub const DATE_MAX: i64 = 7 * 365;

/// Convert `YYYY-MM-DD` within 1992..=1998 into our day encoding (approximate
/// 30.4-day months are fine: predicate constants and data use the same map).
pub fn encode_date(y: i64, m: i64, d: i64) -> i64 {
    ((y - 1992) * 365 + (m - 1) * 304 / 10 + (d - 1)).clamp(DATE_MIN, DATE_MAX)
}

const SEGMENTS: [&str; 5] = ["BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const RETURNFLAGS: [&str; 3] = ["A", "N", "R"];
const STATUSES: [&str; 3] = ["F", "O", "P"];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];

fn dict_of(names: &[&str]) -> HashMap<String, i64> {
    names.iter().enumerate().map(|(i, n)| (n.to_string(), i as i64)).collect()
}

/// Per-table row counts for a given nominal scale (already down-scaled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowCounts {
    /// `supplier` rows.
    pub supplier: usize,
    /// `customer` rows.
    pub customer: usize,
    /// `part` rows.
    pub part: usize,
    /// `partsupp` rows.
    pub partsupp: usize,
    /// `orders` rows.
    pub orders: usize,
    /// `lineitem` rows (the dominant fact table).
    pub lineitem: usize,
}

/// TPC-H row-count ratios at 1/[`crate::SCALE_DOWN`] scale with small-table
/// floors so tiny scale factors still produce meaningful joins.
pub fn row_counts(scale_gb: f64) -> RowCounts {
    let s = scale_gb.max(0.01);
    RowCounts {
        supplier: ((10.0 * s).round() as usize).max(25),
        customer: ((150.0 * s).round() as usize).max(100),
        part: ((200.0 * s).round() as usize).max(100),
        partsupp: ((800.0 * s).round() as usize).max(400),
        orders: ((1500.0 * s).round() as usize).max(500),
        lineitem: ((6000.0 * s).round() as usize).max(2000),
    }
}

/// Generate a full database instance.
pub fn generate(config: GenConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let rc = row_counts(config.scale_gb);
    let mut tables = HashMap::new();

    tables.insert("region".to_string(), gen_region());
    tables.insert("nation".to_string(), gen_nation(&mut rng));
    tables.insert("supplier".to_string(), gen_supplier(rc.supplier, &mut rng));
    tables.insert("customer".to_string(), gen_customer(rc.customer, &mut rng));
    tables.insert("part".to_string(), gen_part(rc.part, &mut rng));
    tables.insert(
        "partsupp".to_string(),
        gen_partsupp(rc.partsupp, rc.part, rc.supplier, config.key_dist, &mut rng),
    );
    tables.insert("orders".to_string(), gen_orders(rc.orders, rc.customer, &mut rng));
    tables.insert(
        "lineitem".to_string(),
        gen_lineitem(rc.lineitem, rc.orders, rc.part, rc.supplier, &config, &mut rng),
    );

    let mut catalog = Catalog::new();
    for t in tables.values() {
        catalog.insert(TableStats::gather_kind(t, config.buckets, config.hist_kind));
    }
    Database { config, tables, catalog }
}

fn fk_sampler(dist: KeyDist, n: usize) -> Box<dyn FnMut(&mut StdRng) -> i64> {
    match dist {
        KeyDist::Uniform => Box::new(move |rng: &mut StdRng| rng.gen_range(0..n as i64)),
        KeyDist::Zipf(a) => {
            let z = Zipf::new(n as u64, a);
            Box::new(move |rng: &mut StdRng| (z.sample(rng) - 1) as i64)
        }
    }
}

fn gen_region() -> Table {
    let schema = Schema::new(vec![
        ColumnDef::new("r_regionkey", DataType::Int),
        ColumnDef::new("r_name", DataType::Str { avg_width: 12 }),
    ]);
    let mut t = Table::new(
        "region",
        schema,
        vec![Column::Int((0..5).collect()), Column::Int((0..5).collect())],
    );
    t.set_dict("r_name", dict_of(&REGIONS));
    t
}

fn gen_nation(rng: &mut StdRng) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::new("n_nationkey", DataType::Int),
        ColumnDef::new("n_name", DataType::Str { avg_width: 14 }),
        ColumnDef::new("n_regionkey", DataType::Int),
    ]);
    let regions: Vec<i64> = (0..25).map(|_| rng.gen_range(0..5)).collect();
    let mut t = Table::new(
        "nation",
        schema,
        vec![Column::Int((0..25).collect()), Column::Int((0..25).collect()), Column::Int(regions)],
    );
    t.set_dict("n_name", dict_of(&NATIONS));
    t
}

fn gen_supplier(n: usize, rng: &mut StdRng) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::new("s_suppkey", DataType::Int),
        ColumnDef::new("s_name", DataType::Str { avg_width: 18 }),
        ColumnDef::new("s_nationkey", DataType::Int),
        ColumnDef::new("s_acctbal", DataType::Float),
    ]);
    Table::new(
        "supplier",
        schema,
        vec![
            Column::Int((0..n as i64).collect()),
            Column::Int((0..n as i64).collect()),
            Column::Int((0..n).map(|_| rng.gen_range(0..25)).collect()),
            Column::Float((0..n).map(|_| rng.gen_range(-999.0..9999.0)).collect()),
        ],
    )
}

fn gen_customer(n: usize, rng: &mut StdRng) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::new("c_custkey", DataType::Int),
        ColumnDef::new("c_name", DataType::Str { avg_width: 18 }),
        ColumnDef::new("c_nationkey", DataType::Int),
        ColumnDef::new("c_acctbal", DataType::Float),
        ColumnDef::new("c_mktsegment", DataType::Str { avg_width: 10 }),
    ]);
    let mut t = Table::new(
        "customer",
        schema,
        vec![
            Column::Int((0..n as i64).collect()),
            Column::Int((0..n as i64).collect()),
            Column::Int((0..n).map(|_| rng.gen_range(0..25)).collect()),
            Column::Float((0..n).map(|_| rng.gen_range(-999.0..9999.0)).collect()),
            Column::Int((0..n).map(|_| rng.gen_range(0..SEGMENTS.len() as i64)).collect()),
        ],
    );
    t.set_dict("c_mktsegment", dict_of(&SEGMENTS));
    t
}

fn gen_part(n: usize, rng: &mut StdRng) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::new("p_partkey", DataType::Int),
        ColumnDef::new("p_name", DataType::Str { avg_width: 32 }),
        ColumnDef::new("p_brand", DataType::Str { avg_width: 10 }),
        ColumnDef::new("p_type", DataType::Str { avg_width: 20 }),
        ColumnDef::new("p_size", DataType::Int),
        ColumnDef::new("p_container", DataType::Str { avg_width: 10 }),
        ColumnDef::new("p_retailprice", DataType::Float),
    ]);
    let brands: Vec<String> =
        (1..=5).flat_map(|a| (1..=5).map(move |b| format!("Brand#{a}{b}"))).collect();
    let brand_refs: Vec<&str> = brands.iter().map(String::as_str).collect();
    let containers: Vec<String> = ["SM", "MED", "LG", "JUMBO", "WRAP"]
        .iter()
        .flat_map(|s| {
            ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]
                .iter()
                .map(move |c| format!("{s} {c}"))
        })
        .collect();
    let container_refs: Vec<&str> = containers.iter().map(String::as_str).collect();
    let types: Vec<String> = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
        .iter()
        .flat_map(|a| {
            ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"].iter().flat_map(move |b| {
                ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
                    .iter()
                    .map(move |c| format!("{a} {b} {c}"))
            })
        })
        .collect();
    let type_refs: Vec<&str> = types.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "part",
        schema,
        vec![
            Column::Int((0..n as i64).collect()),
            Column::Int((0..n as i64).collect()),
            Column::Int((0..n).map(|_| rng.gen_range(0..brand_refs.len() as i64)).collect()),
            Column::Int((0..n).map(|_| rng.gen_range(0..type_refs.len() as i64)).collect()),
            Column::Int((0..n).map(|_| rng.gen_range(1..51)).collect()),
            Column::Int((0..n).map(|_| rng.gen_range(0..container_refs.len() as i64)).collect()),
            Column::Float((0..n).map(|_| rng.gen_range(900.0..2100.0)).collect()),
        ],
    );
    t.set_dict("p_brand", dict_of(&brand_refs));
    t.set_dict("p_container", dict_of(&container_refs));
    t.set_dict("p_type", dict_of(&type_refs));
    t
}

fn gen_partsupp(
    n: usize,
    parts: usize,
    suppliers: usize,
    dist: KeyDist,
    rng: &mut StdRng,
) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::new("ps_partkey", DataType::Int),
        ColumnDef::new("ps_suppkey", DataType::Int),
        ColumnDef::new("ps_availqty", DataType::Int),
        ColumnDef::new("ps_supplycost", DataType::Float),
    ]);
    let mut part_fk = fk_sampler(dist, parts);
    // Every part gets at least one supplier row where possible so
    // referential-integrity-style joins behave like TPC-H.
    let mut pk: Vec<i64> =
        (0..n).map(|i| if i < parts { i as i64 } else { part_fk(rng) }).collect();
    // Shuffle so clustering is not accidental.
    for i in (1..pk.len()).rev() {
        pk.swap(i, rng.gen_range(0..=i));
    }
    Table::new(
        "partsupp",
        schema,
        vec![
            Column::Int(pk),
            Column::Int((0..n).map(|_| rng.gen_range(0..suppliers as i64)).collect()),
            Column::Int((0..n).map(|_| rng.gen_range(1..10_000)).collect()),
            Column::Float((0..n).map(|_| rng.gen_range(1.0..1000.0)).collect()),
        ],
    )
}

fn gen_orders(n: usize, customers: usize, rng: &mut StdRng) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::new("o_orderkey", DataType::Int),
        ColumnDef::new("o_custkey", DataType::Int),
        ColumnDef::new("o_orderstatus", DataType::Str { avg_width: 4 }),
        ColumnDef::new("o_totalprice", DataType::Float),
        ColumnDef::new("o_orderdate", DataType::Int),
        ColumnDef::new("o_orderpriority", DataType::Str { avg_width: 12 }),
    ]);
    let mut t = Table::new(
        "orders",
        schema,
        vec![
            Column::Int((0..n as i64).collect()),
            Column::Int((0..n).map(|_| rng.gen_range(0..customers as i64)).collect()),
            Column::Int((0..n).map(|_| rng.gen_range(0..STATUSES.len() as i64)).collect()),
            Column::Float((0..n).map(|_| rng.gen_range(1000.0..500_000.0)).collect()),
            Column::Int((0..n).map(|_| rng.gen_range(DATE_MIN..=DATE_MAX)).collect()),
            Column::Int((0..n).map(|_| rng.gen_range(0..PRIORITIES.len() as i64)).collect()),
        ],
    );
    t.set_dict("o_orderstatus", dict_of(&STATUSES));
    t.set_dict("o_orderpriority", dict_of(&PRIORITIES));
    t
}

fn gen_lineitem(
    n: usize,
    orders: usize,
    parts: usize,
    suppliers: usize,
    config: &GenConfig,
    rng: &mut StdRng,
) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::new("l_orderkey", DataType::Int),
        ColumnDef::new("l_partkey", DataType::Int),
        ColumnDef::new("l_suppkey", DataType::Int),
        ColumnDef::new("l_quantity", DataType::Int),
        ColumnDef::new("l_extendedprice", DataType::Float),
        ColumnDef::new("l_discount", DataType::Float),
        ColumnDef::new("l_tax", DataType::Float),
        ColumnDef::new("l_returnflag", DataType::Str { avg_width: 2 }),
        ColumnDef::new("l_linestatus", DataType::Str { avg_width: 2 }),
        ColumnDef::new("l_shipdate", DataType::Int),
        ColumnDef::new("l_receiptdate", DataType::Int),
        ColumnDef::new("l_shipmode", DataType::Str { avg_width: 8 }),
    ]);
    let mut part_fk = fk_sampler(config.key_dist, parts);
    // (orderkey, partkey, suppkey, qty, price, discount, tax, flag, status,
    // shipdate, receiptdate, shipmode)
    type LineitemRow = (i64, i64, i64, i64, f64, f64, f64, i64, i64, i64, i64, i64);
    let mut rows: Vec<LineitemRow> = (0..n)
        .map(|_| {
            let ship = rng.gen_range(DATE_MIN..=DATE_MAX);
            (
                rng.gen_range(0..orders as i64),
                part_fk(rng),
                rng.gen_range(0..suppliers as i64),
                rng.gen_range(1..51),
                rng.gen_range(900.0..105_000.0),
                rng.gen_range(0.0..0.11),
                rng.gen_range(0.0..0.09),
                rng.gen_range(0..RETURNFLAGS.len() as i64),
                rng.gen_range(0..2),
                ship,
                (ship + rng.gen_range(1..31)).min(DATE_MAX),
                rng.gen_range(0..SHIPMODES.len() as i64),
            )
        })
        .collect();
    if config.layout == Layout::Clustered {
        // Clustered on l_partkey: each key's tuples are contiguous, so a
        // map-side combiner sees each group inside one split (Eq. 2 case 1).
        rows.sort_by_key(|r| r.1);
    }
    let mut t = Table::new(
        "lineitem",
        schema,
        vec![
            Column::Int(rows.iter().map(|r| r.0).collect()),
            Column::Int(rows.iter().map(|r| r.1).collect()),
            Column::Int(rows.iter().map(|r| r.2).collect()),
            Column::Int(rows.iter().map(|r| r.3).collect()),
            Column::Float(rows.iter().map(|r| r.4).collect()),
            Column::Float(rows.iter().map(|r| r.5).collect()),
            Column::Float(rows.iter().map(|r| r.6).collect()),
            Column::Int(rows.iter().map(|r| r.7).collect()),
            Column::Int(rows.iter().map(|r| r.8).collect()),
            Column::Int(rows.iter().map(|r| r.9).collect()),
            Column::Int(rows.iter().map(|r| r.10).collect()),
            Column::Int(rows.iter().map(|r| r.11).collect()),
        ],
    );
    t.set_dict("l_returnflag", dict_of(&RETURNFLAGS));
    t.set_dict("l_linestatus", dict_of(&["F", "O"]));
    t.set_dict("l_shipmode", dict_of(&SHIPMODES));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Predicate};

    #[test]
    fn generates_all_eight_tables() {
        let db = generate(GenConfig::new(1.0));
        assert_eq!(
            db.table_names(),
            vec![
                "customer", "lineitem", "nation", "orders", "part", "partsupp", "region",
                "supplier"
            ]
        );
        assert_eq!(db.catalog().len(), 8);
    }

    #[test]
    fn row_counts_scale_linearly() {
        let a = row_counts(10.0);
        let b = row_counts(100.0);
        assert_eq!(a.lineitem, 60_000);
        assert_eq!(b.lineitem, 600_000);
        assert_eq!(b.orders, 10 * a.orders);
    }

    #[test]
    fn small_scale_has_floors() {
        let rc = row_counts(0.05);
        assert!(rc.lineitem >= 2000);
        assert!(rc.supplier >= 25);
    }

    #[test]
    fn foreign_keys_reference_valid_domains() {
        let db = generate(GenConfig::new(0.5).with_seed(9));
        let li = db.table("lineitem").unwrap();
        let orders = db.table("orders").unwrap().rows() as i64;
        let ok = li.column("l_orderkey").unwrap().as_int().unwrap();
        assert!(ok.iter().all(|&k| (0..orders).contains(&k)));
        let parts = db.table("part").unwrap().rows() as i64;
        let pk = li.column("l_partkey").unwrap().as_int().unwrap();
        assert!(pk.iter().all(|&k| (0..parts).contains(&k)));
    }

    #[test]
    fn zipf_keys_are_skewed() {
        let uni = generate(GenConfig::new(1.0).with_key_dist(KeyDist::Uniform));
        let skew = generate(GenConfig::new(1.0).with_key_dist(KeyDist::Zipf(1.2)));
        let hot = |db: &Database| {
            let li = db.table("lineitem").unwrap();
            let pk = li.column("l_partkey").unwrap().as_int().unwrap();
            pk.iter().filter(|&&k| k < 5).count() as f64 / pk.len() as f64
        };
        assert!(hot(&skew) > 5.0 * hot(&uni), "skew {} uni {}", hot(&skew), hot(&uni));
    }

    #[test]
    fn clustered_layout_sorts_partkey() {
        let db = generate(GenConfig::new(0.5).with_layout(Layout::Clustered));
        let pk = db.table("lineitem").unwrap().column("l_partkey").unwrap().as_int().unwrap();
        assert!(pk.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn dictionary_predicates_select_rows() {
        let db = generate(GenConfig::new(0.2).with_seed(3));
        let nation = db.table("nation").unwrap();
        let code = nation.dict_code("n_name", "CHINA");
        assert!(code >= 0);
        let p = Predicate::cmp("n_name", CmpOp::Ne, code as f64);
        let kept = (0..nation.rows()).filter(|&i| p.eval(nation, i)).count();
        assert_eq!(kept, 24); // 24 of 25 nations survive n_name <> 'CHINA'.
    }

    #[test]
    fn date_encoding_monotone() {
        assert!(encode_date(1994, 3, 1) > encode_date(1994, 2, 1));
        assert!(encode_date(1995, 1, 1) > encode_date(1994, 12, 31));
        assert_eq!(encode_date(1992, 1, 1), 0);
    }

    #[test]
    fn catalog_stats_match_tables() {
        let db = generate(GenConfig::new(0.3));
        for name in db.table_names() {
            let t = db.table(name).unwrap();
            let s = db.catalog().get(name).unwrap();
            assert_eq!(s.rows(), t.rows() as f64, "table {name}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = generate(GenConfig::new(0.2).with_seed(77));
        let b = generate(GenConfig::new(0.2).with_seed(77));
        let ka = a.table("lineitem").unwrap().column("l_partkey").unwrap().as_int().unwrap();
        let kb = b.table("lineitem").unwrap().column("l_partkey").unwrap().as_int().unwrap();
        assert_eq!(ka, kb);
    }
}
