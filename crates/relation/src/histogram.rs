//! Equi-width histograms with per-bucket tuple and distinct counts.
//!
//! The paper (§3.1.1) builds *off-line equi-width histograms* on filterable
//! attributes, assuming a piece-wise uniform distribution of values inside
//! each bucket [Piatetsky-Shapiro & Connell '84]. The same structure also
//! carries per-bucket distinct counts so the per-bucket join-size formula
//! (paper Eq. 5, after Bell et al. '89) can be evaluated directly.

use crate::expr::{CmpOp, Predicate};
use crate::table::Column;
use std::collections::HashSet;

/// One histogram bucket: `[lo, hi)` (the last bucket is closed on both ends).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Bucket {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound (inclusive for the last bucket).
    pub hi: f64,
    /// Number of tuples whose value falls in the bucket.
    pub count: f64,
    /// Number of distinct values observed in the bucket.
    pub distinct: f64,
}

/// An equi-width histogram over a numeric column.
///
/// ```
/// use sapred_relation::histogram::Histogram;
/// use sapred_relation::table::Column;
/// use sapred_relation::expr::CmpOp;
///
/// let col = Column::Int((0..100).collect());
/// let h = Histogram::build(&col, 0.0, 100.0, 10);
/// let s = h.selectivity_cmp(CmpOp::Lt, 25.0);
/// assert!((s - 0.25).abs() < 0.03);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    width: f64,
    buckets: Vec<Bucket>,
    total: f64,
}

impl Histogram {
    /// Build a histogram over `[min, max]` with `n` equal-width buckets.
    /// Values outside the domain are clamped into the edge buckets (they can
    /// arise when a shared join-key domain is wider than one table's range).
    ///
    /// # Panics
    /// Panics if `n == 0` or `min > max`.
    pub fn build(column: &Column, min: f64, max: f64, n: usize) -> Self {
        assert!(n > 0, "need at least one bucket");
        assert!(min <= max, "invalid domain [{min}, {max}]");
        let width = if max > min { (max - min) / n as f64 } else { 1.0 };
        let mut counts = vec![0u64; n];
        let mut distinct: Vec<HashSet<i64>> = vec![HashSet::new(); n];
        let rows = column.len();
        for i in 0..rows {
            let v = column.get_f64(i);
            let b = Self::bucket_index_for(v, min, width, n);
            counts[b] += 1;
            // Distinct tracking uses the bit pattern of the value so float
            // columns are handled exactly as well.
            distinct[b].insert(column.get_f64(i).to_bits() as i64);
        }
        let buckets = (0..n)
            .map(|b| Bucket {
                lo: min + b as f64 * width,
                hi: min + (b + 1) as f64 * width,
                count: counts[b] as f64,
                distinct: distinct[b].len() as f64,
            })
            .collect();
        Self { min, max, width, buckets, total: rows as f64 }
    }

    /// Build an equi-*depth* histogram: bucket boundaries at value
    /// quantiles, so each bucket holds ≈ the same number of tuples. Under
    /// heavy skew this resolves the hot keys that equi-width bucketing
    /// smears (the classic alternative of Piatetsky-Shapiro & Connell).
    /// Duplicate quantile boundaries are merged, so the result may have
    /// fewer than `n` buckets.
    pub fn build_equi_depth(column: &Column, n: usize) -> Self {
        assert!(n > 0, "need at least one bucket");
        let rows = column.len();
        if rows == 0 {
            return Self::build(column, 0.0, 0.0, 1);
        }
        let mut sorted: Vec<f64> = (0..rows).map(|i| column.get_f64(i)).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let (min, max) = (sorted[0], sorted[rows - 1]);
        // Quantile boundaries, kept strictly increasing: when a heavy value
        // spans several quantiles, advance to the next distinct value so
        // the hot value gets isolated in its own bucket instead of being
        // smeared (this is what makes equi-depth effective under skew).
        let mut bounds: Vec<f64> = vec![min];
        for q in 1..n {
            let last = *bounds.last().expect("non-empty");
            let candidate = sorted[q * rows / n];
            let v = if candidate > last {
                candidate
            } else {
                // Smallest value strictly greater than the last boundary.
                let idx = sorted.partition_point(|&x| x <= last);
                if idx >= rows {
                    break;
                }
                sorted[idx]
            };
            if v > *bounds.last().expect("non-empty") {
                bounds.push(v);
            }
        }
        let top = max + 1e-9; // half-open buckets must cover the maximum
        if top > *bounds.last().expect("non-empty") {
            bounds.push(top);
        } else {
            bounds.push(*bounds.last().unwrap() + 1e-9);
        }
        let mut buckets: Vec<Bucket> = bounds
            .windows(2)
            .map(|w| Bucket { lo: w[0], hi: w[1], count: 0.0, distinct: 0.0 })
            .collect();
        // Fill counts/distincts from the sorted values in one pass.
        let mut b = 0usize;
        let mut prev: Option<f64> = None;
        for &v in &sorted {
            while b + 1 < buckets.len() && v >= buckets[b].hi {
                b += 1;
                prev = None;
            }
            buckets[b].count += 1.0;
            if prev != Some(v) {
                buckets[b].distinct += 1.0;
                prev = Some(v);
            }
        }
        let width = (max - min).max(1e-9) / buckets.len() as f64;
        Self { min, max, width, buckets, total: rows as f64 }
    }

    /// Build with the domain taken from the column itself.
    pub fn from_column(column: &Column, n: usize) -> Self {
        let rows = column.len();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for i in 0..rows {
            let v = column.get_f64(i);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if rows == 0 {
            lo = 0.0;
            hi = 0.0;
        }
        Self::build(column, lo, hi, n)
    }

    #[inline]
    fn bucket_index_for(v: f64, min: f64, width: f64, n: usize) -> usize {
        let raw = ((v - min) / width).floor();
        (raw.max(0.0) as usize).min(n - 1)
    }

    /// Index of the bucket containing `v`, valid for both equi-width and
    /// equi-depth (variable-width) bucketing.
    fn bucket_of(&self, v: f64) -> usize {
        match self.buckets.binary_search_by(|b| b.lo.partial_cmp(&v).expect("no NaN")) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => (i - 1).min(self.buckets.len() - 1),
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The buckets in domain order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Total tuple mass.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// `(min, max)` of the covered value domain.
    pub fn domain(&self) -> (f64, f64) {
        (self.min, self.max)
    }

    /// Total distinct-count estimate (sum of per-bucket distincts; exact when
    /// buckets partition the value space, which equi-width bucketing ensures).
    pub fn distinct_total(&self) -> f64 {
        self.buckets.iter().map(|b| b.distinct).sum()
    }

    /// Estimated fraction of tuples satisfying `value op constant`, the
    /// paper's `S_pred` for a single comparison, under the piece-wise uniform
    /// assumption.
    pub fn selectivity_cmp(&self, op: CmpOp, value: f64) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        let sel = match op {
            CmpOp::Lt => self.mass_below(value, false),
            CmpOp::Le => self.mass_below(value, true),
            CmpOp::Gt => self.total - self.mass_below(value, true),
            CmpOp::Ge => self.total - self.mass_below(value, false),
            CmpOp::Eq => self.mass_eq(value),
            CmpOp::Ne => self.total - self.mass_eq(value),
        };
        (sel / self.total).clamp(0.0, 1.0)
    }

    /// Estimated fraction of tuples in `[lo, hi]` (inclusive BETWEEN).
    pub fn selectivity_between(&self, lo: f64, hi: f64) -> f64 {
        if self.total == 0.0 || hi < lo {
            return 0.0;
        }
        let mass = self.mass_below(hi, true) - self.mass_below(lo, false);
        (mass / self.total).clamp(0.0, 1.0)
    }

    /// Tuples with value strictly below `v` (or `<= v` when `inclusive`),
    /// interpolating linearly inside the straddled bucket.
    fn mass_below(&self, v: f64, inclusive: bool) -> f64 {
        let mut acc = 0.0;
        for b in &self.buckets {
            if v >= b.hi {
                acc += b.count;
            } else if v > b.lo || (inclusive && v == b.lo) {
                // A zero-width bucket (a constant column, or a degenerate
                // persisted histogram) holds a single point value; straddling
                // it means the whole bucket is below. Guard the 0/0.
                let width = b.hi - b.lo;
                let frac = if width > 0.0 { ((v - b.lo) / width).clamp(0.0, 1.0) } else { 1.0 };
                let mut m = b.count * frac;
                if inclusive && b.distinct > 0.0 {
                    // Include the equality mass of `v` itself.
                    m += b.count / b.distinct * 0.5_f64.min(1.0 / b.distinct);
                    m = m.min(b.count);
                }
                acc += m;
                break;
            } else {
                break;
            }
        }
        acc.min(self.total)
    }

    /// Estimated number of tuples equal to `v`: bucket count spread uniformly
    /// over the bucket's distinct values.
    fn mass_eq(&self, v: f64) -> f64 {
        if v < self.min || v > self.max {
            return 0.0;
        }
        let b = &self.buckets[self.bucket_of(v)];
        if b.distinct == 0.0 {
            0.0
        } else {
            b.count / b.distinct
        }
    }

    /// Estimated `S_pred` for a full predicate tree over *this column*
    /// (conjuncts/disjuncts over other columns must be combined by the caller
    /// under the independence assumption).
    pub fn selectivity_pred(&self, pred: &Predicate) -> f64 {
        match pred {
            Predicate::True => 1.0,
            Predicate::Cmp { op, value, .. } => self.selectivity_cmp(*op, *value),
            Predicate::Between { lo, hi, .. } => self.selectivity_between(*lo, *hi),
            Predicate::And(a, b) => self.selectivity_pred(a) * self.selectivity_pred(b),
            Predicate::Or(a, b) => {
                let (sa, sb) = (self.selectivity_pred(a), self.selectivity_pred(b));
                (sa + sb - sa * sb).clamp(0.0, 1.0)
            }
        }
    }

    /// Return a copy whose per-bucket counts are scaled by the estimated
    /// selectivity of `pred` *within each bucket*. This implements the
    /// "updated piece-wise distribution" propagation the paper borrows from
    /// Bell et al. for chained joins on unshared keys (§3.1.2).
    pub fn filtered(&self, pred: &Predicate) -> Histogram {
        let mut out = self.clone();
        let mut new_total = 0.0;
        for b in &mut out.buckets {
            // Evaluate the predicate selectivity restricted to this bucket by
            // building a single-bucket view.
            let view = Histogram {
                min: b.lo,
                max: b.hi,
                width: b.hi - b.lo,
                buckets: vec![*b],
                total: b.count,
            };
            let s = view.selectivity_pred(pred);
            b.count *= s;
            b.distinct = b.distinct.min(b.count).max(if b.count > 0.0 { 1.0 } else { 0.0 });
            // Distinct values thin out slower than tuples; keep at least the
            // uniform expectation.
            new_total += b.count;
        }
        out.total = new_total;
        out
    }

    /// Overwrite one bucket's count and distinct (used when constructing
    /// derived histograms such as join outputs); the running total is kept
    /// consistent.
    pub fn set_bucket(&mut self, i: usize, count: f64, distinct: f64) {
        assert!(count >= 0.0 && distinct >= 0.0);
        let b = &mut self.buckets[i];
        self.total += count - b.count;
        b.count = count;
        b.distinct = distinct;
    }

    /// Return a copy where each bucket's tuple count is replaced by its
    /// distinct count: the histogram of a relation that keeps exactly one
    /// tuple per distinct value (a group-by output keyed on this column).
    pub fn distinct_as_count(&self) -> Histogram {
        let mut out = self.clone();
        for b in &mut out.buckets {
            b.count = b.distinct;
        }
        out.total = out.buckets.iter().map(|b| b.count).sum();
        out
    }

    /// Return a copy with every bucket's tuple count scaled by `factor`
    /// (distinct counts are capped by the scaled counts). Used to propagate a
    /// histogram through an operator that thins or fans out tuples uniformly
    /// (e.g. a filter on another column, or a join fan-out).
    pub fn scaled(&self, factor: f64) -> Histogram {
        assert!(factor >= 0.0 && factor.is_finite());
        let mut out = self.clone();
        for b in &mut out.buckets {
            b.count *= factor;
            if factor < 1.0 {
                b.distinct = b.distinct.min(b.count).max(if b.count > 0.0 { 1.0 } else { 0.0 });
            }
        }
        out.total *= factor;
        out
    }

    /// Rebucket this histogram onto an explicit common domain, preserving
    /// total mass (needed to align two join sides, paper Eq. 5).
    pub fn rebucket(&self, min: f64, max: f64, n: usize) -> Histogram {
        assert!(n > 0 && min <= max);
        let width = if max > min { (max - min) / n as f64 } else { 1.0 };
        let mut buckets: Vec<Bucket> = (0..n)
            .map(|b| Bucket {
                lo: min + b as f64 * width,
                hi: min + (b + 1) as f64 * width,
                count: 0.0,
                distinct: 0.0,
            })
            .collect();
        for src in &self.buckets {
            if src.count == 0.0 {
                continue;
            }
            // Spread the source bucket's mass uniformly over its extent and
            // deposit it into overlapping destination buckets.
            let src_w = (src.hi - src.lo).max(f64::MIN_POSITIVE);
            for dst in &mut buckets {
                let lo = src.lo.max(dst.lo);
                let hi = src.hi.min(dst.hi);
                if hi > lo {
                    let frac = (hi - lo) / src_w;
                    dst.count += src.count * frac;
                    dst.distinct += src.distinct * frac;
                }
            }
        }
        Histogram { min, max, width, buckets, total: self.total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_hist() -> Histogram {
        // Values 0..=99, one tuple each.
        let col = Column::Int((0..100).collect());
        Histogram::build(&col, 0.0, 100.0, 10)
    }

    #[test]
    fn mass_is_conserved() {
        let h = uniform_hist();
        let total: f64 = h.buckets().iter().map(|b| b.count).sum();
        assert_eq!(total, 100.0);
        assert_eq!(h.total(), 100.0);
    }

    #[test]
    fn range_selectivity_uniform() {
        let h = uniform_hist();
        let s = h.selectivity_cmp(CmpOp::Lt, 50.0);
        assert!((s - 0.5).abs() < 0.02, "s = {s}");
        let s = h.selectivity_cmp(CmpOp::Ge, 75.0);
        assert!((s - 0.25).abs() < 0.03, "s = {s}");
    }

    #[test]
    fn eq_selectivity_uniform() {
        let h = uniform_hist();
        let s = h.selectivity_cmp(CmpOp::Eq, 42.0);
        assert!((s - 0.01).abs() < 1e-9, "s = {s}");
        let s = h.selectivity_cmp(CmpOp::Ne, 42.0);
        assert!((s - 0.99).abs() < 1e-9, "s = {s}");
    }

    #[test]
    fn between_selectivity() {
        let h = uniform_hist();
        let s = h.selectivity_between(20.0, 40.0);
        assert!((s - 0.2).abs() < 0.03, "s = {s}");
        assert_eq!(h.selectivity_between(40.0, 20.0), 0.0);
    }

    #[test]
    fn out_of_domain_eq_is_zero() {
        let h = uniform_hist();
        assert_eq!(h.selectivity_cmp(CmpOp::Eq, 1000.0), 0.0);
        assert_eq!(h.selectivity_cmp(CmpOp::Eq, -5.0), 0.0);
    }

    #[test]
    fn skewed_distinct_counts() {
        // 90 copies of value 1 plus 0..=9 once each.
        let mut vals = vec![1i64; 90];
        vals.extend(0..10);
        let col = Column::Int(vals);
        let h = Histogram::build(&col, 0.0, 10.0, 1);
        assert_eq!(h.buckets()[0].distinct, 10.0);
        assert_eq!(h.total(), 100.0);
        // Equality on the hot key is estimated at count/distinct = 10 tuples,
        // an underestimate that is the known cost of equi-width histograms.
        let s = h.selectivity_cmp(CmpOp::Eq, 1.0);
        assert!((s - 0.1).abs() < 1e-9);
    }

    #[test]
    fn pred_tree_independence() {
        let h = uniform_hist();
        let p = Predicate::cmp("x", CmpOp::Lt, 50.0).and(Predicate::cmp("x", CmpOp::Ge, 0.0));
        let s = h.selectivity_pred(&p);
        assert!((s - 0.5).abs() < 0.03, "s = {s}");
        let p = Predicate::cmp("x", CmpOp::Lt, 10.0).or(Predicate::cmp("x", CmpOp::Ge, 90.0));
        let s = h.selectivity_pred(&p);
        assert!((s - 0.2).abs() < 0.05, "s = {s}");
    }

    #[test]
    fn filtered_histogram_scales_mass() {
        let h = uniform_hist();
        let f = h.filtered(&Predicate::cmp("x", CmpOp::Lt, 30.0));
        assert!((f.total() - 30.0).abs() < 3.0, "total = {}", f.total());
        // Buckets above the cut are empty.
        assert!(f.buckets()[5].count < 1e-9);
    }

    #[test]
    fn rebucket_preserves_mass() {
        let h = uniform_hist();
        let r = h.rebucket(0.0, 100.0, 4);
        let total: f64 = r.buckets().iter().map(|b| b.count).sum();
        assert!((total - 100.0).abs() < 1e-6);
        assert_eq!(r.num_buckets(), 4);
        assert!((r.buckets()[0].count - 25.0).abs() < 1e-6);
    }

    #[test]
    fn from_column_autodomain() {
        let col = Column::Float(vec![2.0, 4.0, 6.0, 8.0]);
        let h = Histogram::from_column(&col, 2);
        assert_eq!(h.domain(), (2.0, 8.0));
        assert_eq!(h.total(), 4.0);
    }

    #[test]
    fn equi_depth_balances_counts() {
        // Zipf-ish data: value v repeated (100 - v) times.
        let vals: Vec<i64> =
            (0..100).flat_map(|v| std::iter::repeat_n(v, 100 - v as usize)).collect();
        let h = Histogram::build_equi_depth(&Column::Int(vals.clone()), 10);
        let total: f64 = h.buckets().iter().map(|b| b.count).sum();
        assert_eq!(total, vals.len() as f64);
        // Every bucket holds within 2x of the ideal share.
        let ideal = vals.len() as f64 / h.num_buckets() as f64;
        for b in h.buckets() {
            assert!(b.count < 2.5 * ideal, "bucket {b:?} ideal {ideal}");
        }
        // Buckets tile the domain in order.
        for w in h.buckets().windows(2) {
            assert!((w[0].hi - w[1].lo).abs() < 1e-9);
        }
    }

    #[test]
    fn equi_depth_hot_key_equality_is_sharper() {
        // 900 copies of 0 plus 1..=99 once each: equi-depth isolates the
        // hot key in its own buckets, so Eq-selectivity on it is accurate.
        let mut vals = vec![0i64; 900];
        vals.extend(1..100);
        let col = Column::Int(vals);
        let width = Histogram::build(&col, 0.0, 100.0, 10);
        let depth = Histogram::build_equi_depth(&col, 10);
        let exact = 0.9;
        let e_width = (width.selectivity_cmp(CmpOp::Eq, 0.0) - exact).abs();
        let e_depth = (depth.selectivity_cmp(CmpOp::Eq, 0.0) - exact).abs();
        assert!(e_depth < e_width, "depth err {e_depth} width err {e_width}");
    }

    #[test]
    fn equi_depth_range_selectivity_sane() {
        let vals: Vec<i64> = (0..1000).collect();
        let h = Histogram::build_equi_depth(&Column::Int(vals), 16);
        let s = h.selectivity_cmp(CmpOp::Lt, 250.0);
        assert!((s - 0.25).abs() < 0.05, "s = {s}");
    }

    #[test]
    fn equi_depth_single_value_column() {
        let h = Histogram::build_equi_depth(&Column::Int(vec![7; 50]), 8);
        assert_eq!(h.total(), 50.0);
        let s = h.selectivity_cmp(CmpOp::Eq, 7.0);
        assert!(s > 0.9, "s = {s}");
    }

    #[test]
    fn empty_column() {
        let col = Column::Int(vec![]);
        let h = Histogram::from_column(&col, 4);
        assert_eq!(h.total(), 0.0);
        assert_eq!(h.selectivity_cmp(CmpOp::Lt, 1.0), 0.0);
    }
}
