#![warn(missing_docs)]
//! Relational substrate for the semantics-aware prediction framework.
//!
//! This crate stands in for the HDFS + Hive-metastore layer of the paper's
//! testbed. It provides:
//!
//! * columnar in-memory tables with typed columns ([`Table`], [`Column`]),
//! * table/column statistics ([`TableStats`], [`ColumnStats`]) of the kind a
//!   Hive metastore keeps (row counts, distinct counts, average widths),
//! * equi-width histograms ([`Histogram`]) as used by the paper for
//!   piece-wise-uniform selectivity estimation (paper §3.1),
//! * a TPC-H-shaped synthetic data generator ([`gen`]) with controllable key
//!   distributions (uniform, clustered, Zipf-skewed), and
//! * *count-only* relational operator execution ([`exec`]) that computes the
//!   exact ground-truth cardinalities and byte sizes a real Hadoop job would
//!   produce, without materializing intermediate data.
//!
//! The paper's experiments range from 1 GB to 400 GB of TPC-H/TPC-DS data.
//! We reproduce them at laptop scale by mapping a *nominal* gigabyte onto a
//! fixed row budget (see [`SCALE_DOWN`]) while reporting *modeled bytes* at
//! full scale, so task counts and data-size features match the paper's regime.

pub mod dist;
pub mod exec;
pub mod expr;
pub mod gen;
pub mod histogram;
pub mod persist;
pub mod schema;
pub mod stats;
pub mod table;

pub use expr::{CmpOp, Predicate};
pub use histogram::Histogram;
pub use schema::{ColumnDef, DataType, Schema};
pub use stats::{ColumnStats, TableStats};
pub use table::{Column, Table};

/// Down-scaling factor between nominal (paper-scale) data and the rows we
/// actually materialize. One nominal gigabyte of a table corresponds to
/// `rows_at_sf1 / SCALE_DOWN` physical rows; all byte sizes reported to the
/// planner/simulator are multiplied back by `SCALE_DOWN` so that the
/// prediction features and MapReduce task counts live in the paper's regime.
pub const SCALE_DOWN: f64 = 1000.0;

/// Convert physical (materialized) bytes to modeled (paper-scale) bytes.
#[inline]
pub fn modeled_bytes(physical: f64) -> f64 {
    physical * SCALE_DOWN
}
