//! Catalog persistence: save/load the metastore statistics (schemas, row
//! counts, distinct counts, histograms) as JSON.
//!
//! The paper's estimator reads *off-line* statistics: "equi-width
//! histograms are built on tables' attributes … and stored on HDFS"
//! (§3.1.1). This module plays the HDFS role — a deployment gathers
//! statistics once ([`crate::stats::TableStats::gather`]) and ships the
//! serialized catalog to wherever prediction runs; the estimator never
//! needs the data itself.

use crate::stats::Catalog;
use std::io;
use std::path::Path;

/// Serialize a catalog to pretty JSON.
pub fn catalog_to_json(catalog: &Catalog) -> serde_json::Result<String> {
    serde_json::to_string_pretty(catalog)
}

/// Deserialize a catalog from JSON.
pub fn catalog_from_json(json: &str) -> serde_json::Result<Catalog> {
    serde_json::from_str(json)
}

/// Whether the linked `serde_json` implementation can actually serialize.
/// False under the hermetic vendor stand-in (see vendor/README.md), where
/// serialization is a typed runtime error; true with the real crates.
pub fn serialization_available() -> bool {
    serde_json::to_string(&0u32).is_ok()
}

/// Save a catalog to a JSON file.
pub fn save_catalog(catalog: &Catalog, path: impl AsRef<Path>) -> io::Result<()> {
    let json = catalog_to_json(catalog).map_err(io::Error::other)?;
    std::fs::write(path, json)
}

/// Load a catalog from a JSON file.
pub fn load_catalog(path: impl AsRef<Path>) -> io::Result<Catalog> {
    let json = std::fs::read_to_string(path)?;
    catalog_from_json(&json).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn catalog_roundtrips_through_json() {
        if !serialization_available() {
            eprintln!("skipped: serde_json stand-in cannot serialize (vendor/README.md)");
            return;
        }
        let db = generate(GenConfig::new(0.2).with_seed(13));
        let json = catalog_to_json(db.catalog()).unwrap();
        let restored = catalog_from_json(&json).unwrap();
        assert_eq!(restored.len(), db.catalog().len());
        for table in db.catalog().tables() {
            let r = restored.get(table.name()).expect("table survives");
            assert_eq!(r.rows(), table.rows());
            assert_eq!(r.tuple_width(), table.tuple_width());
            // Histogram estimates agree exactly after the round trip.
            for col in ["l_shipdate", "l_quantity"] {
                if let (Some(a), Some(b)) = (table.histogram(col), r.histogram(col)) {
                    for v in [0.0, 100.0, 1000.0] {
                        assert_eq!(
                            a.selectivity_cmp(CmpOp::Lt, v),
                            b.selectivity_cmp(CmpOp::Lt, v)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        if !serialization_available() {
            eprintln!("skipped: serde_json stand-in cannot serialize (vendor/README.md)");
            return;
        }
        let db = generate(GenConfig::new(0.05).with_seed(3));
        let dir = std::env::temp_dir().join("sapred_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.json");
        save_catalog(db.catalog(), &path).unwrap();
        let loaded = load_catalog(&path).unwrap();
        assert_eq!(loaded.len(), db.catalog().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(catalog_from_json("{not json").is_err());
        assert!(load_catalog("/nonexistent/path/catalog.json").is_err());
    }
}
