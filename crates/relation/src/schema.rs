//! Table schemas: column names, types and byte widths.
//!
//! Widths drive every byte-size estimate in the paper (projection selectivity
//! `S_proj` is a ratio of attribute widths to tuple width, §3.1.1), so each
//! column carries an explicit average on-disk width.

use std::fmt;

/// Logical column type. Strings carry their *average* serialized width since
/// the estimator only ever needs widths, never values, for string columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DataType {
    /// 64-bit integer (keys, quantities, dates encoded as days).
    Int,
    /// 64-bit float (prices, discounts).
    Float,
    /// Variable-width string with a declared average width in bytes.
    Str {
        /// Average serialized width in bytes.
        avg_width: u32,
    },
}

impl DataType {
    /// Average serialized width in bytes of one value of this type.
    pub fn width(&self) -> f64 {
        match self {
            DataType::Int => 8.0,
            DataType::Float => 8.0,
            DataType::Str { avg_width } => *avg_width as f64,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "int"),
            DataType::Float => write!(f, "float"),
            DataType::Str { avg_width } => write!(f, "string({avg_width})"),
        }
    }
}

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type (with width).
    pub dtype: DataType,
}

impl ColumnDef {
    /// A named, typed column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Self { name: name.into(), dtype }
    }
}

/// An ordered set of named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema.
    ///
    /// # Panics
    /// Panics on duplicate column names.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            assert!(seen.insert(c.name.clone()), "duplicate column name {}", c.name);
        }
        Self { columns }
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Average full-tuple width in bytes: the denominator of `S_proj`.
    pub fn tuple_width(&self) -> f64 {
        self.columns.iter().map(|c| c.dtype.width()).sum()
    }

    /// Combined average width of the named columns: the numerator of
    /// `S_proj`. Unknown names panic — the semantic analyzer guarantees
    /// resolution before estimation.
    pub fn width_of(&self, names: &[impl AsRef<str>]) -> f64 {
        names
            .iter()
            .map(|n| {
                self.column(n.as_ref())
                    .unwrap_or_else(|| panic!("unknown column {}", n.as_ref()))
                    .dtype
                    .width()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("k", DataType::Int),
            ColumnDef::new("v", DataType::Float),
            ColumnDef::new("s", DataType::Str { avg_width: 24 }),
        ])
    }

    #[test]
    fn tuple_width_sums_column_widths() {
        assert_eq!(schema().tuple_width(), 8.0 + 8.0 + 24.0);
    }

    #[test]
    fn width_of_projection() {
        let s = schema();
        assert_eq!(s.width_of(&["k", "s"]), 32.0);
        assert_eq!(s.width_of(&["v"]), 8.0);
    }

    #[test]
    fn index_lookup() {
        let s = schema();
        assert_eq!(s.index_of("v"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_rejected() {
        Schema::new(vec![ColumnDef::new("k", DataType::Int), ColumnDef::new("k", DataType::Int)]);
    }
}
