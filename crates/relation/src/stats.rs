//! Metastore-style statistics: what the paper's estimator reads off-line.
//!
//! [`TableStats`] captures exactly the statistical information §3.1 relies
//! on: row counts, per-column distinct counts (`T.d_x`), average widths (for
//! `S_proj`) and equi-width histograms (for `S_pred` and Eq. 5). A
//! [`Catalog`] collects the stats of every table in a database instance and
//! is the object that *percolates* to the prediction layer.

use crate::histogram::Histogram;
use crate::schema::Schema;
use crate::table::Table;
use std::collections::HashMap;

/// Default histogram resolution; the ablation bench sweeps this.
pub const DEFAULT_BUCKETS: usize = 64;

/// Which histogram family the metastore builds. The paper uses equi-width
/// (§3.1.1); equi-depth is provided for the A2 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HistogramKind {
    #[default]
    /// Equal-width buckets over the value domain (the paper's choice).
    EquiWidth,
    /// Buckets at value quantiles: ≈ equal tuple mass per bucket.
    EquiDepth,
}

/// Per-column statistics.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Exact number of distinct values (`T.d_x` in the paper).
    pub distinct: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Average serialized width in bytes.
    pub width: f64,
}

/// Per-table statistics plus per-column histograms.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TableStats {
    name: String,
    schema: Schema,
    rows: f64,
    columns: HashMap<String, ColumnStats>,
    histograms: HashMap<String, Histogram>,
}

impl TableStats {
    /// Gather statistics from a materialized table, building an equi-width
    /// histogram with `buckets` buckets on every numeric/dictionary column.
    pub fn gather(table: &Table, buckets: usize) -> Self {
        Self::gather_kind(table, buckets, HistogramKind::EquiWidth)
    }

    /// Gather statistics with an explicit histogram family.
    pub fn gather_kind(table: &Table, buckets: usize, kind: HistogramKind) -> Self {
        let mut columns = HashMap::new();
        let mut histograms = HashMap::new();
        for (i, def) in table.schema().columns().iter().enumerate() {
            let col = table.column_at(i);
            let hist = match kind {
                HistogramKind::EquiWidth => Histogram::from_column(col, buckets),
                HistogramKind::EquiDepth => Histogram::build_equi_depth(col, buckets),
            };
            let (min, max) = hist.domain();
            columns.insert(
                def.name.clone(),
                ColumnStats {
                    name: def.name.clone(),
                    distinct: hist.distinct_total(),
                    min,
                    max,
                    width: def.dtype.width(),
                },
            );
            histograms.insert(def.name.clone(), hist);
        }
        Self {
            name: table.name().to_string(),
            schema: table.schema().clone(),
            rows: table.rows() as f64,
            columns,
            histograms,
        }
    }

    /// Construct synthetic stats without materialized data (used by unit
    /// tests and by TPC-DS-style templates whose tables we model abstractly).
    pub fn synthetic(
        name: impl Into<String>,
        schema: Schema,
        rows: f64,
        columns: Vec<ColumnStats>,
        histograms: HashMap<String, Histogram>,
    ) -> Self {
        Self {
            name: name.into(),
            schema,
            rows,
            columns: columns.into_iter().map(|c| (c.name.clone(), c)).collect(),
            histograms,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// `|T|`: number of tuples.
    pub fn rows(&self) -> f64 {
        self.rows
    }

    /// Average tuple width in bytes.
    pub fn tuple_width(&self) -> f64 {
        self.schema.tuple_width()
    }

    /// Modeled input bytes of a full scan of this table.
    pub fn modeled_bytes(&self) -> f64 {
        crate::modeled_bytes(self.rows * self.tuple_width())
    }

    /// Per-column statistics, by name.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }

    /// The column's histogram, by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Product of distinct counts over `keys` (`T.d_xy` in Eq. 2), capped at
    /// the row count since a table cannot hold more groups than tuples.
    pub fn distinct_product(&self, keys: &[impl AsRef<str>]) -> f64 {
        let product = keys
            .iter()
            .map(|k| self.column(k.as_ref()).map_or(1.0, |c| c.distinct))
            .product::<f64>();
        product.min(self.rows.max(1.0))
    }
}

/// All table statistics of one database instance.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct Catalog {
    tables: HashMap<String, TableStats>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace) one table's statistics.
    pub fn insert(&mut self, stats: TableStats) {
        self.tables.insert(stats.name().to_string(), stats);
    }

    /// Look up a table's statistics.
    pub fn get(&self, table: &str) -> Option<&TableStats> {
        self.tables.get(table)
    }

    /// Iterate over all tables' statistics.
    pub fn tables(&self) -> impl Iterator<Item = &TableStats> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType};
    use crate::table::Column;

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("k", DataType::Int),
            ColumnDef::new("w", DataType::Str { avg_width: 16 }),
        ]);
        Table::new(
            "t",
            schema,
            vec![Column::Int(vec![1, 2, 2, 3, 3, 3]), Column::Int(vec![0, 0, 1, 1, 2, 2])],
        )
    }

    #[test]
    fn gather_counts_distincts() {
        let s = TableStats::gather(&table(), 8);
        assert_eq!(s.rows(), 6.0);
        assert_eq!(s.column("k").unwrap().distinct, 3.0);
        assert_eq!(s.column("w").unwrap().distinct, 3.0);
        assert_eq!(s.column("k").unwrap().min, 1.0);
        assert_eq!(s.column("k").unwrap().max, 3.0);
    }

    #[test]
    fn widths_come_from_schema() {
        let s = TableStats::gather(&table(), 8);
        assert_eq!(s.column("w").unwrap().width, 16.0);
        assert_eq!(s.tuple_width(), 24.0);
        assert_eq!(s.modeled_bytes(), crate::modeled_bytes(6.0 * 24.0));
    }

    #[test]
    fn distinct_product_capped_by_rows() {
        let s = TableStats::gather(&table(), 8);
        // 3 * 3 = 9 > 6 rows, so capped.
        assert_eq!(s.distinct_product(&["k", "w"]), 6.0);
        assert_eq!(s.distinct_product(&["k"]), 3.0);
    }

    #[test]
    fn catalog_roundtrip() {
        let mut c = Catalog::new();
        c.insert(TableStats::gather(&table(), 8));
        assert_eq!(c.len(), 1);
        assert!(c.get("t").is_some());
        assert!(c.get("nope").is_none());
    }
}
