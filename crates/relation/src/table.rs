//! Columnar in-memory tables.
//!
//! String-typed columns are dictionary-encoded: the stored data is the `i64`
//! code while the declared [`DataType::Str`] width is what byte-size
//! estimation uses. Per-column dictionaries map literal strings (as they
//! appear in query text) to codes.

use crate::schema::{DataType, Schema};
use std::collections::HashMap;

/// Physical column storage. `Str` columns are stored as `Int` codes.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers (also backs dictionary-encoded strings).
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read row `i` as an f64 regardless of physical type (used by generic
    /// predicate evaluation; exact for i64 values up to 2^53, far beyond any
    /// key domain we generate).
    #[inline]
    pub fn get_f64(&self, i: usize) -> f64 {
        match self {
            Column::Int(v) => v[i] as f64,
            Column::Float(v) => v[i],
        }
    }

    /// Read row `i` as an i64, truncating floats. Used for hash keys.
    #[inline]
    pub fn get_i64(&self, i: usize) -> i64 {
        match self {
            Column::Int(v) => v[i],
            Column::Float(v) => v[i] as i64,
        }
    }

    /// The backing `i64` slice, if integer-typed.
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            Column::Float(_) => None,
        }
    }

    /// The backing `f64` slice, if float-typed.
    pub fn as_float(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            Column::Int(_) => None,
        }
    }
}

/// A named table: a schema plus one physical [`Column`] per schema column and
/// optional per-column string dictionaries.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    /// String literal -> dictionary code, per string-typed column name.
    dicts: HashMap<String, HashMap<String, i64>>,
    rows: usize,
}

impl Table {
    /// Build a table. Every column must have the same length and a physical
    /// representation consistent with its declared type (`Str` ⇒ `Int` codes).
    pub fn new(name: impl Into<String>, schema: Schema, columns: Vec<Column>) -> Self {
        assert_eq!(schema.len(), columns.len(), "schema/column arity mismatch");
        let rows = columns.first().map_or(0, Column::len);
        for (def, col) in schema.columns().iter().zip(&columns) {
            assert_eq!(col.len(), rows, "ragged column {}", def.name);
            let ok = matches!(
                (def.dtype, col),
                (DataType::Int, Column::Int(_))
                    | (DataType::Float, Column::Float(_))
                    | (DataType::Str { .. }, Column::Int(_))
            );
            assert!(ok, "column {} physical type mismatch", def.name);
        }
        Self { name: name.into(), schema, columns, dicts: HashMap::new(), rows }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column data by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Column data by schema position.
    pub fn column_at(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Register the string dictionary for a `Str` column.
    pub fn set_dict(&mut self, column: &str, dict: HashMap<String, i64>) {
        assert!(self.schema.index_of(column).is_some(), "unknown column {column}");
        self.dicts.insert(column.to_string(), dict);
    }

    /// Resolve a string literal to its dictionary code for `column`.
    /// Unknown literals resolve to a code that matches no row (`i64::MIN`),
    /// mirroring a predicate that selects nothing.
    pub fn dict_code(&self, column: &str, literal: &str) -> i64 {
        self.dicts.get(column).and_then(|d| d.get(literal)).copied().unwrap_or(i64::MIN)
    }

    /// Physical bytes of the materialized rows (average widths × rows).
    pub fn physical_bytes(&self) -> f64 {
        self.rows as f64 * self.schema.tuple_width()
    }

    /// Modeled (paper-scale) bytes, see [`crate::modeled_bytes`].
    pub fn modeled_bytes(&self) -> f64 {
        crate::modeled_bytes(self.physical_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn t() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("k", DataType::Int),
            ColumnDef::new("v", DataType::Float),
            ColumnDef::new("name", DataType::Str { avg_width: 10 }),
        ]);
        let mut table = Table::new(
            "t",
            schema,
            vec![
                Column::Int(vec![1, 2, 3]),
                Column::Float(vec![0.5, 1.5, 2.5]),
                Column::Int(vec![0, 1, 0]),
            ],
        );
        let mut d = HashMap::new();
        d.insert("alpha".to_string(), 0);
        d.insert("beta".to_string(), 1);
        table.set_dict("name", d);
        table
    }

    #[test]
    fn basic_accessors() {
        let t = t();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.column("k").unwrap().as_int().unwrap(), &[1, 2, 3]);
        assert_eq!(t.column("v").unwrap().get_f64(1), 1.5);
        assert!(t.column("missing").is_none());
    }

    #[test]
    fn dict_lookup() {
        let t = t();
        assert_eq!(t.dict_code("name", "beta"), 1);
        assert_eq!(t.dict_code("name", "unknown"), i64::MIN);
    }

    #[test]
    fn byte_accounting() {
        let t = t();
        assert_eq!(t.physical_bytes(), 3.0 * 26.0);
        assert_eq!(t.modeled_bytes(), 3.0 * 26.0 * crate::SCALE_DOWN);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_columns_rejected() {
        let schema = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Int),
        ]);
        Table::new("bad", schema, vec![Column::Int(vec![1]), Column::Int(vec![])]);
    }

    #[test]
    #[should_panic(expected = "physical type mismatch")]
    fn type_mismatch_rejected() {
        let schema = Schema::new(vec![ColumnDef::new("a", DataType::Int)]);
        Table::new("bad", schema, vec![Column::Float(vec![1.0])]);
    }
}
