//! Property tests: histogram estimates against brute-force ground truth,
//! and count-only execution invariants.

use proptest::prelude::*;
use sapred_relation::exec::{hash_join, Rel};
use sapred_relation::expr::{CmpOp, Predicate};
use sapred_relation::histogram::Histogram;
use sapred_relation::table::Column;

fn rel(name: &str, vals: &[i64]) -> Rel {
    Rel::from_columns(vec![name.to_string()], vec![8.0], vec![Column::Int(vals.to_vec())])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn range_selectivity_matches_brute_force_within_bucket_error(
        values in prop::collection::vec(0i64..1000, 20..400),
        threshold in 0.0f64..1000.0,
    ) {
        // With many buckets relative to the domain, the piece-wise-uniform
        // estimate of a range predicate converges to the exact fraction.
        let h = Histogram::build(&Column::Int(values.clone()), 0.0, 1000.0, 100);
        let est = h.selectivity_cmp(CmpOp::Lt, threshold);
        let exact = values.iter().filter(|&&v| (v as f64) < threshold).count() as f64
            / values.len() as f64;
        // One bucket holds at most everything in a 10-wide slot; allow the
        // mass of two buckets as slack.
        let slack = 2.0 * 10.0 / 1000.0 + 2.0 / values.len() as f64 + 0.05;
        prop_assert!((est - exact).abs() <= slack, "est {est} exact {exact}");
    }

    #[test]
    fn eq_mass_sums_to_total(
        values in prop::collection::vec(0i64..50, 1..200),
    ) {
        // Summing the equality estimate over every distinct value must give
        // back ~total mass (count/distinct per bucket is an average).
        let h = Histogram::build(&Column::Int(values.clone()), 0.0, 50.0, 10);
        let mut distinct: Vec<i64> = values.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let n = values.len() as f64;
        let total: f64 = distinct
            .iter()
            .map(|&v| h.selectivity_cmp(CmpOp::Eq, v as f64) * n)
            .sum();
        prop_assert!((total - n).abs() / n < 0.05, "total {total} vs {n}");
    }

    #[test]
    fn filtered_histogram_never_gains_mass(
        values in prop::collection::vec(-200i64..200, 1..300),
        lo in -250.0f64..250.0,
        span in 0.0f64..200.0,
    ) {
        let h = Histogram::from_column(&Column::Int(values), 16);
        let f = h.filtered(&Predicate::between("x", lo, lo + span));
        prop_assert!(f.total() <= h.total() + 1e-9);
        for (fb, hb) in f.buckets().iter().zip(h.buckets()) {
            prop_assert!(fb.count <= hb.count + 1e-9);
        }
    }

    #[test]
    fn hash_join_matches_nested_loop_count(
        left in prop::collection::vec(0i64..20, 0..60),
        right in prop::collection::vec(0i64..20, 0..60),
    ) {
        let l = rel("a", &left);
        let r = rel("b", &right);
        let j = hash_join(&l, &r, "a", "b");
        let brute: usize = left
            .iter()
            .map(|x| right.iter().filter(|y| *y == x).count())
            .sum();
        prop_assert_eq!(j.rows(), brute);
    }

    #[test]
    fn combine_output_bounds(
        values in prop::collection::vec(0i64..40, 1..300),
        splits in 1usize..20,
    ) {
        let r = rel("g", &values);
        let combined = r.combine_output(&["g".to_string()], splits);
        let groups = r.group_count(&["g".to_string()]);
        prop_assert!(combined >= groups, "combiner output below group count");
        prop_assert!(combined <= values.len(), "combiner output above input");
        prop_assert!(combined <= groups * splits, "combiner output above groups x splits");
    }

    #[test]
    fn filter_project_consistency(
        values in prop::collection::vec(0i64..100, 1..200),
        cut in 0.0f64..100.0,
    ) {
        let r = rel("v", &values);
        let f = r.filter(&Predicate::cmp("v", CmpOp::Lt, cut));
        let exact = values.iter().filter(|&&v| (v as f64) < cut).count();
        prop_assert_eq!(f.rows(), exact);
        // head() is idempotent at the boundary.
        prop_assert_eq!(f.head(f.rows() + 10).rows(), f.rows());
    }
}
