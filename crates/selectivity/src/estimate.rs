//! DAG-walking estimator: per-job `IS`/`FS`, data sizes and the join skew
//! ratio `P`, with histogram propagation between jobs.

use crate::formulas::{join_size_bucketed, p_ratio, s_comb};
use crate::pred::{pred_selectivity, split_conjuncts};
use crate::profile::{ColProfile, RelProfile};
use sapred_plan::dag::{BroadcastJoin, InputSrc, JobCategory, JobKind, QueryDag};
use sapred_relation::expr::Predicate;
use sapred_relation::stats::Catalog;
use sapred_relation::{modeled_bytes, SCALE_DOWN};

/// The paper testbed's HDFS block size (256 MB) in modeled bytes: the
/// default for [`EstimatorConfig::block_size`], which determines estimated
/// map counts.
pub const DEFAULT_BLOCK_SIZE: f64 = 256.0 * 1024.0 * 1024.0;

/// Estimator configuration.
#[derive(Debug, Clone, Copy)]
pub struct EstimatorConfig {
    /// HDFS block size in modeled bytes; determines estimated map counts
    /// ([`DEFAULT_BLOCK_SIZE`] = the paper testbed's 256 MB).
    pub block_size: f64,
    /// Metastore layout hint: whether group-by keys are clustered in file
    /// order (selects between the two `S_comb` cases of Eq. 2).
    pub clustered_keys: bool,
    /// Which [`CardinalityEstimator`](crate::estimator::CardinalityEstimator)
    /// refines join sizes. The default (histogram) is the paper's Eq. 5 path
    /// and changes nothing relative to [`estimate_dag`].
    pub kind: crate::estimator::EstimatorKind,
    /// Random walks per join for the sampling estimator.
    pub sample_walks: usize,
    /// Base RNG seed for the sampling estimator (mixed per job and per walk,
    /// so estimates are bit-reproducible and walk-schedule-independent).
    pub sample_seed: u64,
    /// Heavy-hitter keys tracked per join-path step by the catalog
    /// estimator.
    pub path_top_k: usize,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self {
            block_size: DEFAULT_BLOCK_SIZE,
            clustered_keys: false,
            kind: crate::estimator::EstimatorKind::Histogram,
            sample_walks: 512,
            sample_seed: 0x5eed,
            path_top_k: 64,
        }
    }
}

/// The estimator's prediction of one job's data dynamics.
#[derive(Debug, Clone)]
pub struct JobEstimate {
    /// Operator category of the job.
    pub category: JobCategory,
    /// Modeled input/intermediate/output bytes.
    pub d_in: f64,

    /// Modeled intermediate (map-output) bytes.
    pub d_med: f64,
    /// Modeled output bytes.
    pub d_out: f64,
    /// Physical tuple counts.
    pub tuples_in: f64,

    /// Estimated intermediate tuples (post-filter / post-combine).
    pub tuples_med: f64,
    /// Estimated output tuples.
    pub tuples_out: f64,
    /// Intermediate selectivity `D_med / D_in`.
    pub is: f64,
    /// Final selectivity `D_out / D_in`.
    pub fs: f64,
    /// Join skew ratio `P` of Eq. 7 (`None` for non-join jobs).
    pub p_ratio: Option<f64>,
    /// Estimated number of map splits.
    pub n_maps: usize,
}

/// Estimate every job of `dag` against `catalog` statistics, in job order.
///
/// This is the paper's pure-histogram path (§3, Eqs. 1–6). To route join
/// sizes through a different
/// [`CardinalityEstimator`](crate::estimator::CardinalityEstimator), use
/// [`estimate_dag_with`](crate::estimator::estimate_dag_with).
pub fn estimate_dag(
    dag: &QueryDag,
    catalog: &Catalog,
    config: &EstimatorConfig,
) -> Vec<JobEstimate> {
    estimate_dag_sized(dag, catalog, config, &mut |_| None)
}

/// [`estimate_dag`] with a join-size override hook: `join_sizer(job_id)`
/// may return a refined output tuple count for a join job, computed by a
/// non-histogram estimator. The refined count replaces Eq. 5's and the
/// propagated output profile is rescaled to it, so the refinement flows to
/// every downstream job exactly like a histogram estimate would.
pub(crate) fn estimate_dag_sized(
    dag: &QueryDag,
    catalog: &Catalog,
    config: &EstimatorConfig,
    join_sizer: &mut dyn FnMut(usize) -> Option<f64>,
) -> Vec<JobEstimate> {
    let mut profiles: Vec<RelProfile> = Vec::with_capacity(dag.len());
    let mut estimates: Vec<JobEstimate> = Vec::with_capacity(dag.len());
    for job in dag.jobs() {
        let refined = join_sizer(job.id);
        let (est, prof) = estimate_job(
            &job.kind,
            &job.broadcasts,
            catalog,
            &profiles,
            &estimates,
            config,
            refined,
        );
        profiles.push(prof);
        estimates.push(est);
    }
    estimates
}

/// A resolved job input as the estimator sees it.
struct Input {
    /// Raw bytes read by the map phase.
    raw_bytes: f64,
    /// Raw tuples read by the map phase.
    raw_tuples: f64,
    /// Predicate selectivity applied during the map scan (1 for job inputs).
    s_pred: f64,
    /// Projection selectivity of the map scan (1 for job inputs).
    s_proj: f64,
    /// Profile of the data after filter+projection.
    profile: RelProfile,
}

fn resolve(
    input: &InputSrc,
    catalog: &Catalog,
    profiles: &[RelProfile],
    estimates: &[JobEstimate],
) -> Input {
    match input {
        InputSrc::Job(j) => Input {
            raw_bytes: estimates[*j].d_out,
            raw_tuples: estimates[*j].tuples_out,
            s_pred: 1.0,
            s_proj: 1.0,
            profile: profiles[*j].clone(),
        },
        InputSrc::Table(t) => {
            let stats = catalog
                .get(&t.table)
                .unwrap_or_else(|| panic!("no catalog stats for table {}", t.table));
            let s_pred = pred_selectivity(stats, &t.predicate);
            let projection: Vec<String> = if t.projection.is_empty() {
                stats.schema().columns().iter().map(|c| c.name.clone()).collect()
            } else {
                t.projection.clone()
            };
            let proj_width: f64 =
                projection.iter().map(|c| stats.column(c).map_or(8.0, |s| s.width)).sum();
            // A degenerate schema (zero tuple width) would make this 0/0;
            // fall back to "projection keeps everything" — the projection
            // cannot drop bytes a zero-width tuple does not have.
            let tuple_width = stats.tuple_width();
            let s_proj =
                if tuple_width > 0.0 { (proj_width / tuple_width).clamp(0.0, 1.0) } else { 1.0 };
            let tuples = stats.rows() * s_pred;

            // Per-column propagation: conjuncts on a column reshape its
            // histogram; everything else scales it uniformly.
            let (per_col, _residual) = split_conjuncts(&t.predicate);
            let mut profile = RelProfile::new(tuples);
            for name in &projection {
                let col_pred: Predicate = per_col
                    .iter()
                    .filter(|(c, _)| c == name)
                    .fold(Predicate::True, |acc, (_, p)| acc.and(p.clone()));
                let width = stats.column(name).map_or(8.0, |s| s.width);
                let (distinct, histogram) = match stats.histogram(name) {
                    Some(h) => {
                        let own = h.selectivity_pred(&col_pred).max(1e-12);
                        let other = (s_pred / own).clamp(0.0, 1.0);
                        let filtered = h.filtered(&col_pred).scaled(other);
                        (filtered.distinct_total().min(tuples.max(1.0)), Some(filtered))
                    }
                    None => (
                        stats.column(name).map_or(tuples, |s| s.distinct).min(tuples.max(1.0)),
                        None,
                    ),
                };
                profile.push(name.clone(), ColProfile { width, distinct, histogram });
            }
            Input {
                raw_bytes: stats.modeled_bytes(),
                raw_tuples: stats.rows(),
                s_pred,
                s_proj,
                profile,
            }
        }
    }
}

fn splits_for(d_in: f64, block: f64) -> usize {
    ((d_in / block).ceil() as usize).max(1)
}

/// Estimate the join of two profiles on `left_key = right_key`, renaming
/// the right side's colliding columns with `suffix`. Returns the estimated
/// output tuples and the propagated output profile (Eq. 5 with histogram
/// propagation, closed-form fallback otherwise).
fn join_profiles(
    lprof: &RelProfile,
    rprof: &RelProfile,
    left_key: &str,
    right_key: &str,
    suffix: &str,
) -> (f64, RelProfile) {
    let mut right_cols: Vec<(String, ColProfile)> = Vec::new();
    let mut rkey = right_key.to_string();
    for (name, col) in rprof.columns() {
        if lprof.contains(name) {
            let renamed = format!("{name}{suffix}");
            if name == rkey {
                rkey = renamed.clone();
            }
            right_cols.push((renamed, col.clone()));
        } else {
            right_cols.push((name.to_string(), col.clone()));
        }
    }
    let lh = lprof.column(left_key).and_then(|c| c.histogram.clone());
    let rh = right_cols.iter().find(|(n, _)| *n == rkey).and_then(|(_, c)| c.histogram.clone());
    let (mut tuples_out, joint) = match (lh, rh) {
        (Some(a), Some(b)) => {
            let (t, j) = join_size_bucketed(&a, &b);
            (t, Some(j))
        }
        _ => {
            let d1 = lprof.column(left_key).map_or(1.0, |c| c.distinct);
            let d2 = right_cols.iter().find(|(n, _)| *n == rkey).map_or(1.0, |(_, c)| c.distinct);
            (lprof.tuples * rprof.tuples / d1.max(d2).max(1.0), None)
        }
    };
    tuples_out = tuples_out.min(lprof.tuples * rprof.tuples).max(0.0);
    let mut out = RelProfile::new(tuples_out);
    let fan_l = tuples_out / lprof.tuples.max(1.0);
    let fan_r = tuples_out / rprof.tuples.max(1.0);
    for (name, col) in lprof.columns() {
        out.push(name.to_string(), propagate_col(col, name == left_key, &joint, fan_l, tuples_out));
    }
    for (name, col) in &right_cols {
        out.push(name.clone(), propagate_col(col, *name == rkey, &joint, fan_r, tuples_out));
    }
    (tuples_out, out)
}

/// Fold map-side (broadcast) joins into a resolved primary input: the
/// profile becomes the joined profile, raw bytes/tuples grow by the
/// broadcast tables, and the effective `S_pred`/`S_proj` are recomputed so
/// that downstream IS/FS formulas stay consistent.
fn apply_broadcasts(
    mut input: Input,
    broadcasts: &[BroadcastJoin],
    catalog: &Catalog,
    profiles: &[RelProfile],
    estimates: &[JobEstimate],
) -> Input {
    if broadcasts.is_empty() {
        return input;
    }
    for b in broadcasts {
        let side = resolve(&InputSrc::Table(b.table.clone()), catalog, profiles, estimates);
        let (_, joined) =
            join_profiles(&input.profile, &side.profile, &b.stream_key, &b.table_key, "__b");
        input.raw_bytes += side.raw_bytes;
        input.raw_tuples += side.raw_tuples;
        input.profile = joined;
    }
    // Effective scan selectivities after the map-side joins.
    let tuple_ratio = (input.profile.tuples / input.raw_tuples.max(1.0)).max(0.0);
    let byte_ratio = (input.profile.bytes() / input.raw_bytes.max(1.0)).max(0.0);
    input.s_pred = tuple_ratio;
    input.s_proj = if tuple_ratio > 0.0 { (byte_ratio / tuple_ratio).min(1.0) } else { 1.0 };
    input
}

fn estimate_job(
    kind: &JobKind,
    broadcasts: &[BroadcastJoin],
    catalog: &Catalog,
    profiles: &[RelProfile],
    estimates: &[JobEstimate],
    config: &EstimatorConfig,
    join_override: Option<f64>,
) -> (JobEstimate, RelProfile) {
    match kind {
        JobKind::Join { left, right, left_key, right_key } => {
            let l = apply_broadcasts(
                resolve(left, catalog, profiles, estimates),
                broadcasts,
                catalog,
                profiles,
                estimates,
            );
            let r = resolve(right, catalog, profiles, estimates);
            let d_in = l.raw_bytes + r.raw_bytes;
            let r1 = if d_in > 0.0 { l.raw_bytes / d_in } else { 0.5 };
            // Eq. 3.
            let is = l.s_pred * l.s_proj * r1 + r.s_pred * r.s_proj * (1.0 - r1);
            let d_med = is * d_in;
            let tuples_med = l.profile.tuples + r.profile.tuples;

            // Rename collisions, estimate the join size (Eq. 5) and build
            // the propagated output profile.
            let (mut tuples_out, mut out) =
                join_profiles(&l.profile, &r.profile, left_key, right_key, "__r");
            // A non-histogram estimator may refine the join size; rescale
            // the propagated profile so downstream jobs see the refinement.
            if let Some(refined) = join_override {
                let cap = (l.profile.tuples * r.profile.tuples).max(0.0);
                let refined = refined.clamp(0.0, cap);
                if tuples_out > 0.0 && refined.is_finite() {
                    out = rescale_profile(&out, refined / tuples_out, refined);
                    tuples_out = refined;
                }
            }
            let p = p_ratio(l.profile.tuples, r.profile.tuples);
            let d_out = out.bytes();
            let est = JobEstimate {
                category: JobCategory::Join,
                d_in,
                d_med,
                d_out,
                tuples_in: l.raw_tuples + r.raw_tuples,
                tuples_med,
                tuples_out,
                is,
                fs: ratio(d_out, d_in),
                p_ratio: Some(p),
                n_maps: splits_for(d_in, config.block_size),
            };
            (est, out)
        }
        JobKind::Groupby { input, keys, n_aggs } => {
            let i = apply_broadcasts(
                resolve(input, catalog, profiles, estimates),
                broadcasts,
                catalog,
                profiles,
                estimates,
            );
            let d_in = i.raw_bytes;
            let n_maps = splits_for(d_in, config.block_size);
            let d_keys = i.profile.distinct_product(keys);
            // Eq. 2 (clustered / random variants).
            let sc = s_comb(i.s_pred, d_keys, i.raw_tuples, n_maps, config.clustered_keys);
            let combined = sc * i.raw_tuples;
            let key_width: f64 =
                keys.iter().map(|k| i.profile.column(k).map_or(8.0, |c| c.width)).sum();
            let out_width = key_width + 8.0 * *n_aggs as f64;
            let d_med = modeled_bytes(combined * out_width);
            // |Out| = min(T.d_keys, |T| × S_pred)  (§3.1.2, generalized).
            let tuples_out = d_keys.min(i.profile.tuples).max(0.0);
            let d_out = modeled_bytes(tuples_out * out_width);

            let mut out = RelProfile::new(tuples_out);
            for k in keys {
                if let Some(c) = i.profile.column(k) {
                    out.push(
                        k.clone(),
                        ColProfile {
                            width: c.width,
                            distinct: c.distinct.min(tuples_out.max(1.0)),
                            histogram: c.histogram.as_ref().map(|h| h.distinct_as_count()),
                        },
                    );
                } else {
                    out.push(
                        k.clone(),
                        ColProfile { width: 8.0, distinct: tuples_out, histogram: None },
                    );
                }
            }
            for a in 0..*n_aggs {
                out.push(
                    format!("__agg{a}"),
                    ColProfile { width: 8.0, distinct: tuples_out, histogram: None },
                );
            }
            let est = JobEstimate {
                category: JobCategory::Groupby,
                d_in,
                d_med,
                d_out,
                tuples_in: i.raw_tuples,
                tuples_med: combined,
                tuples_out,
                is: ratio(d_med, d_in),
                fs: ratio(d_out, d_in),
                p_ratio: None,
                n_maps,
            };
            (est, out)
        }
        JobKind::Sort { input, keys: _, limit } => {
            let i = apply_broadcasts(
                resolve(input, catalog, profiles, estimates),
                broadcasts,
                catalog,
                profiles,
                estimates,
            );
            let d_in = i.raw_bytes;
            let d_med = modeled_bytes(i.profile.tuples * i.profile.width());
            // §3.1.2 Extract: |Out| = min(|In|, k) for `limit k`, |In| for
            // order-by. Limits are nominal rows; convert to physical.
            let tuples_out = match limit {
                Some(k) => {
                    let phys = ((*k as f64) / SCALE_DOWN).ceil().max(1.0);
                    i.profile.tuples.min(phys)
                }
                None => i.profile.tuples,
            };
            let shrink = tuples_out / i.profile.tuples.max(1.0);
            let mut out = RelProfile::new(tuples_out);
            for (name, col) in i.profile.columns() {
                out.push(
                    name.to_string(),
                    ColProfile {
                        width: col.width,
                        distinct: col.distinct.min(tuples_out.max(1.0)),
                        histogram: col.histogram.as_ref().map(|h| h.scaled(shrink)),
                    },
                );
            }
            let d_out = out.bytes();
            let est = JobEstimate {
                category: JobCategory::Extract,
                d_in,
                d_med,
                d_out,
                tuples_in: i.raw_tuples,
                tuples_med: i.profile.tuples,
                tuples_out,
                is: ratio(d_med, d_in),
                fs: ratio(d_out, d_in),
                p_ratio: None,
                n_maps: splits_for(d_in, config.block_size),
            };
            (est, out)
        }
        JobKind::MapOnly { input } => {
            let i = apply_broadcasts(
                resolve(input, catalog, profiles, estimates),
                broadcasts,
                catalog,
                profiles,
                estimates,
            );
            let d_in = i.raw_bytes;
            // IS = S_pred × S_proj (§3.1.1 Extract); map-only jobs have no
            // reduce phase, so D_out = D_med.
            let d_med = modeled_bytes(i.profile.tuples * i.profile.width());
            let est = JobEstimate {
                category: JobCategory::Extract,
                d_in,
                d_med,
                d_out: d_med,
                tuples_in: i.raw_tuples,
                tuples_med: i.profile.tuples,
                tuples_out: i.profile.tuples,
                is: ratio(d_med, d_in),
                fs: ratio(d_med, d_in),
                p_ratio: None,
                n_maps: splits_for(d_in, config.block_size),
            };
            let profile = i.profile;
            (est, profile)
        }
    }
}

/// Rescale a join output profile to a refined tuple count: every column
/// histogram scales by `factor` and distinct counts re-cap at the new
/// cardinality. Keeps the *shape* of the histogram propagation while
/// adopting the refined total.
fn rescale_profile(prof: &RelProfile, factor: f64, tuples: f64) -> RelProfile {
    let mut out = RelProfile::new(tuples);
    for (name, col) in prof.columns() {
        out.push(
            name.to_string(),
            ColProfile {
                width: col.width,
                distinct: col.distinct.min(tuples.max(1.0)),
                histogram: col.histogram.as_ref().map(|h| h.scaled(factor)),
            },
        );
    }
    out
}

fn propagate_col(
    col: &ColProfile,
    is_key: bool,
    joint: &Option<sapred_relation::histogram::Histogram>,
    fanout: f64,
    out_tuples: f64,
) -> ColProfile {
    if is_key {
        if let Some(j) = joint {
            return ColProfile {
                width: col.width,
                distinct: j.distinct_total().min(out_tuples.max(1.0)),
                histogram: Some(j.clone()),
            };
        }
    }
    ColProfile {
        width: col.width,
        distinct: col.distinct.min(out_tuples.max(1.0)),
        histogram: col.histogram.as_ref().map(|h| h.scaled(fanout)),
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapred_plan::compile::compile;
    use sapred_plan::ground_truth::execute_dag;
    use sapred_query::{analyze, parse};
    use sapred_relation::gen::{generate, Database, GenConfig, Layout};

    fn db() -> Database {
        generate(GenConfig::new(1.0).with_seed(21))
    }

    fn setup(sql: &str, db: &Database) -> (Vec<JobEstimate>, Vec<sapred_plan::JobActual>) {
        let a = analyze(&parse(sql).unwrap(), db.catalog(), db).unwrap();
        let dag = compile("q", &a);
        let cfg = EstimatorConfig {
            clustered_keys: db.config.layout == Layout::Clustered,
            ..Default::default()
        };
        let est = estimate_dag(&dag, db.catalog(), &cfg);
        let act = execute_dag(&dag, db, cfg.block_size);
        (est, act)
    }

    fn rel_err(est: f64, act: f64) -> f64 {
        if act == 0.0 {
            est.abs()
        } else {
            (est - act).abs() / act
        }
    }

    #[test]
    fn map_only_extract_is() {
        let db = db();
        let (est, act) = setup("SELECT l_partkey FROM lineitem WHERE l_quantity > 40", &db);
        // IS = S_pred × S_proj should track the exact ratio closely.
        assert!(
            rel_err(est[0].is, act[0].is_ratio()) < 0.1,
            "{} vs {}",
            est[0].is,
            act[0].is_ratio()
        );
        assert_eq!(est[0].d_out, est[0].d_med);
        assert_eq!(est[0].fs, est[0].is);
    }

    #[test]
    fn fk_join_cardinality() {
        let db = db();
        let (est, act) = setup(
            "SELECT l_quantity, p_size FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey",
            &db,
        );
        assert!(
            rel_err(est[0].tuples_out, act[0].tuples_out) < 0.15,
            "est {} act {}",
            est[0].tuples_out,
            act[0].tuples_out
        );
        let p = est[0].p_ratio.unwrap();
        assert!(p > 0.5 && p < 1.0);
    }

    #[test]
    fn filtered_join_cardinality() {
        let db = db();
        let (est, act) = setup(
            "SELECT l_quantity, p_size FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey \
             WHERE p_size < 10 AND l_shipdate < 1200",
            &db,
        );
        assert!(
            rel_err(est[0].tuples_out, act[0].tuples_out) < 0.3,
            "est {} act {}",
            est[0].tuples_out,
            act[0].tuples_out
        );
        assert!(rel_err(est[0].d_med, act[0].d_med) < 0.2, "{} vs {}", est[0].d_med, act[0].d_med);
    }

    #[test]
    fn groupby_cardinality_and_combine() {
        let db = db();
        let (est, act) =
            setup("SELECT l_partkey, sum(l_extendedprice) FROM lineitem GROUP BY l_partkey", &db);
        assert!(
            rel_err(est[0].tuples_out, act[0].tuples_out) < 0.15,
            "est {} act {}",
            est[0].tuples_out,
            act[0].tuples_out
        );
        // Combine estimate within 2x of truth (random layout, Eq. 2 case 2).
        assert!(
            rel_err(est[0].tuples_med, act[0].tuples_med) < 1.0,
            "est {} act {}",
            est[0].tuples_med,
            act[0].tuples_med
        );
    }

    #[test]
    fn clustered_combine_is_smaller() {
        let cl = generate(GenConfig::new(1.0).with_seed(21).with_layout(Layout::Clustered));
        let sql = "SELECT l_partkey, sum(l_extendedprice) FROM lineitem GROUP BY l_partkey";
        let (est_cl, act_cl) = setup(sql, &cl);
        let rnd = db();
        let (est_rnd, act_rnd) = setup(sql, &rnd);
        // Both layouts should be tracked by their matching Eq. 2 case.
        assert!(act_cl[0].tuples_med <= act_rnd[0].tuples_med);
        assert!(est_cl[0].tuples_med <= est_rnd[0].tuples_med);
    }

    #[test]
    fn q11_paper_walkthrough() {
        // §3.2: predicate on nation is 96% selective; the group-by output is
        // bounded by the partkey cardinality.
        let db = db();
        let (est, act) = setup(
            "SELECT ps_partkey, sum(ps_supplycost*ps_availqty) \
             FROM nation n JOIN supplier s ON \
             s.s_nationkey=n.n_nationkey AND n.n_name<>'CHINA' \
             JOIN partsupp ps ON ps.ps_suppkey=s.s_suppkey \
             GROUP BY ps_partkey;",
            &db,
        );
        assert_eq!(est.len(), 3);
        // Job 1 output ≈ 96% of supplier rows (each supplier matches one
        // nation; 24/25 survive).
        assert!(
            rel_err(est[0].tuples_out, act[0].tuples_out) < 0.25,
            "est {} act {}",
            est[0].tuples_out,
            act[0].tuples_out
        );
        // Job 2: partsupp ⋈ surviving suppliers ≈ 96% of partsupp.
        assert!(
            rel_err(est[1].tuples_out, act[1].tuples_out) < 0.25,
            "est {} act {}",
            est[1].tuples_out,
            act[1].tuples_out
        );
        // Job 3: group count ≤ partkey cardinality, tracked within 25%.
        assert!(
            rel_err(est[2].tuples_out, act[2].tuples_out) < 0.25,
            "est {} act {}",
            est[2].tuples_out,
            act[2].tuples_out
        );
    }

    #[test]
    fn chained_unshared_key_joins_propagate() {
        // lineitem ⋈ orders on orderkey, then ⋈ part on partkey: the second
        // join uses the *propagated* partkey histogram of the first join's
        // output (Bell et al. technique, §3.1.2).
        let db = db();
        let (est, act) = setup(
            "SELECT o_totalprice, p_size FROM lineitem l \
             JOIN orders o ON l.l_orderkey = o.o_orderkey \
             JOIN part p ON l.l_partkey = p.p_partkey \
             WHERE o_orderdate < 1500",
            &db,
        );
        assert!(
            rel_err(est[1].tuples_out, act[1].tuples_out) < 0.35,
            "est {} act {}",
            est[1].tuples_out,
            act[1].tuples_out
        );
    }

    #[test]
    fn sort_limit_final_selectivity() {
        let db = db();
        let (est, act) =
            setup("SELECT o_orderkey FROM orders ORDER BY o_totalprice DESC LIMIT 5000", &db);
        assert_eq!(est[0].tuples_out, act[0].tuples_out);
        assert!(est[0].fs < est[0].is);
    }

    #[test]
    fn estimates_are_finite_and_nonnegative() {
        let db = db();
        let queries = [
            "SELECT count(*) FROM lineitem",
            "SELECT l_partkey FROM lineitem WHERE l_quantity > 100", // empty
            "SELECT n_name FROM nation ORDER BY n_name",
        ];
        for q in queries {
            let (est, _) = setup(q, &db);
            for e in est {
                assert_all_fields_finite(&e, q);
            }
        }
    }

    /// Every numeric field of a [`JobEstimate`] must be finite and
    /// non-negative; NaN here poisons predictions and, downstream, WRD.
    fn assert_all_fields_finite(e: &JobEstimate, ctx: &str) {
        for (name, v) in [
            ("d_in", e.d_in),
            ("d_med", e.d_med),
            ("d_out", e.d_out),
            ("tuples_in", e.tuples_in),
            ("tuples_med", e.tuples_med),
            ("tuples_out", e.tuples_out),
            ("is", e.is),
            ("fs", e.fs),
        ] {
            assert!(v.is_finite() && v >= 0.0, "{ctx}: {name} = {v}");
        }
        if let Some(p) = e.p_ratio {
            assert!(p.is_finite() && p >= 0.0, "{ctx}: p_ratio = {p}");
        }
        assert!(e.n_maps >= 1, "{ctx}: n_maps = {}", e.n_maps);
    }

    #[test]
    fn degenerate_tables_yield_finite_estimates() {
        use sapred_plan::dag::{InputSrc, JobKind, MrJob, QueryDag, TableInput};
        use sapred_relation::expr::{CmpOp, Predicate};
        use sapred_relation::schema::{ColumnDef, DataType, Schema};
        use sapred_relation::stats::{Catalog, TableStats};
        use sapred_relation::table::{Column, Table};

        // `empty` has zero rows, `konst` a single repeated value (its
        // histogram is one point), `thin` a zero-width column (so its
        // tuple width — the S_proj denominator — is zero).
        let empty = Table::new(
            "empty",
            Schema::new(vec![ColumnDef::new("k", DataType::Int)]),
            vec![Column::Int(vec![])],
        );
        let konst = Table::new(
            "konst",
            Schema::new(vec![ColumnDef::new("k", DataType::Int)]),
            vec![Column::Int(vec![7; 100])],
        );
        let thin = Table::new(
            "thin",
            Schema::new(vec![ColumnDef::new("k", DataType::Str { avg_width: 0 })]),
            vec![Column::Int(vec![1, 2, 3])],
        );
        let mut catalog = Catalog::new();
        catalog.insert(TableStats::gather(&empty, 8));
        catalog.insert(TableStats::gather(&konst, 8));
        catalog.insert(TableStats::gather(&thin, 8));

        let scan = |table: &str| {
            InputSrc::Table(TableInput {
                table: table.into(),
                predicate: Predicate::cmp("k", CmpOp::Le, 7.0),
                projection: vec!["k".into()],
            })
        };
        let dag = QueryDag::new(
            "degenerate",
            vec![
                MrJob::new(
                    0,
                    JobKind::Join {
                        left: scan("empty"),
                        right: scan("konst"),
                        left_key: "k".into(),
                        right_key: "k".into(),
                    },
                ),
                MrJob::new(
                    1,
                    JobKind::Groupby { input: InputSrc::Job(0), keys: vec!["k".into()], n_aggs: 1 },
                ),
                MrJob::new(2, JobKind::MapOnly { input: scan("thin") }),
                MrJob::new(
                    3,
                    JobKind::Sort { input: scan("konst"), keys: vec!["k".into()], limit: Some(10) },
                ),
            ],
        );
        let est = estimate_dag(&dag, &catalog, &EstimatorConfig::default());
        assert_eq!(est.len(), 4);
        for e in &est {
            assert_all_fields_finite(e, "degenerate");
        }
        // The empty side forces an empty join.
        assert_eq!(est[0].tuples_out, 0.0);
        // Zero tuple width: S_proj falls back to 1, so IS stays finite.
        assert!(est[2].is.is_finite());
    }
}
