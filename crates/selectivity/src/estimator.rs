//! The `CardinalityEstimator` seam: interchangeable join-cardinality
//! estimators behind one trait.
//!
//! The paper's selectivity machinery (§3, Eqs. 1–6) rests entirely on
//! equi-width histograms. Histograms smear hot keys across buckets, so
//! skewed equi-joins (both sides Zipf on the join key) are systematically
//! underestimated — the per-bucket `c₁·c₂ / max(d₁, d₂)` of Eq. 5 averages
//! where the true size is a sum of per-key *products*. This module carves a
//! seam so the histogram path becomes one of three interchangeable
//! implementations:
//!
//! * [`HistogramEstimator`] — the unchanged §3 path; the default. With the
//!   default [`EstimatorConfig`] the seam is provably inert (pinned by
//!   `tests/golden_estimates.rs`).
//! * [`SamplingEstimator`] — wander-join random walks over the join chain:
//!   sample a base tuple, follow the key index one hop at a time, and
//!   aggregate by inverse sampling probability (Horvitz–Thompson). Each
//!   walk draws from its own seeded RNG, so estimates are bit-reproducible
//!   for a fixed seed *and* independent of how walks are batched.
//! * [`CatalogEstimator`] — precomputed per-join-path key statistics:
//!   exact heavy-hitter counts plus a uniform residual per (table, key)
//!   pair, composed along the chain. Deterministic, no sampling.
//!
//! Every estimator computes per-join output cardinalities and feeds them
//! back through the histogram propagation machinery
//! ([`estimate_dag_sized`]), so `IS`/`FS`/`P` and downstream job estimates
//! keep their §3 shape while the join sizes improve. Joins the new
//! estimators cannot handle (broadcast joins, non-chain shapes, float keys,
//! missing tables) silently fall back to the histogram estimate — the seam
//! refines, never breaks.

use crate::estimate::{estimate_dag, estimate_dag_sized, EstimatorConfig, JobEstimate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sapred_plan::dag::{InputSrc, JobKind, QueryDag, TableInput};
use sapred_relation::expr::Predicate;
use sapred_relation::gen::Database;
use sapred_relation::stats::Catalog;
use sapred_relation::table::Table;
use std::collections::HashMap;

/// Which cardinality estimator refines join sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EstimatorKind {
    /// The paper's equi-width histogram path (Eq. 5). The default.
    #[default]
    Histogram,
    /// Wander-join random-walk sampling (Horvitz–Thompson).
    Sample,
    /// Precomputed per-join-path key statistics (heavy hitters + residual).
    Catalog,
}

impl EstimatorKind {
    /// All estimator kinds, in sweep order.
    pub const ALL: [EstimatorKind; 3] =
        [EstimatorKind::Histogram, EstimatorKind::Sample, EstimatorKind::Catalog];

    /// Stable CLI/JSON label.
    pub fn label(&self) -> &'static str {
        match self {
            EstimatorKind::Histogram => "histogram",
            EstimatorKind::Sample => "sample",
            EstimatorKind::Catalog => "catalog",
        }
    }

    /// Parse a CLI/JSON label.
    pub fn parse(s: &str) -> Option<EstimatorKind> {
        EstimatorKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

impl std::fmt::Display for EstimatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Access to materialized base tables, for estimators that read data
/// (sampling walks, path-statistics builds). The histogram estimator never
/// needs it; passing `None` to [`estimate_dag_with`] degrades the other
/// estimators to the histogram path rather than failing.
pub trait TableAccess {
    /// Look up a materialized table by name.
    fn lookup(&self, name: &str) -> Option<&Table>;
}

impl TableAccess for Database {
    fn lookup(&self, name: &str) -> Option<&Table> {
        self.table(name)
    }
}

/// A pluggable join-cardinality estimator.
///
/// Contract: `estimate` must be a pure function of its arguments — two
/// calls with identical inputs return bit-identical `Vec<JobEstimate>`s
/// (randomized estimators must derive all randomness from
/// [`EstimatorConfig::sample_seed`]). Implementations refine *join* output
/// cardinalities and delegate everything else (predicate/projection/
/// group-by selectivities, byte modeling, profile propagation) to the §3
/// machinery, so adding an estimator means implementing one join-size
/// function, not re-deriving the paper.
pub trait CardinalityEstimator {
    /// Stable estimator name (matches [`EstimatorKind::label`]).
    fn name(&self) -> &'static str;

    /// Estimate every job of `dag`, in job order.
    fn estimate(
        &self,
        dag: &QueryDag,
        catalog: &Catalog,
        tables: Option<&dyn TableAccess>,
        config: &EstimatorConfig,
    ) -> Vec<JobEstimate>;
}

/// Estimate `dag` with the estimator selected by `config.kind`.
///
/// `tables` supplies materialized base tables to the sampling and catalog
/// estimators; with `None` (or for joins they cannot flatten) they fall
/// back to the histogram path, so this function never does worse than
/// [`estimate_dag`].
pub fn estimate_dag_with(
    dag: &QueryDag,
    catalog: &Catalog,
    tables: Option<&dyn TableAccess>,
    config: &EstimatorConfig,
) -> Vec<JobEstimate> {
    match config.kind {
        EstimatorKind::Histogram => HistogramEstimator.estimate(dag, catalog, tables, config),
        EstimatorKind::Sample => SamplingEstimator.estimate(dag, catalog, tables, config),
        EstimatorKind::Catalog => CatalogEstimator.estimate(dag, catalog, tables, config),
    }
}

/// The paper's histogram path behind the seam (identical to
/// [`estimate_dag`]).
pub struct HistogramEstimator;

impl CardinalityEstimator for HistogramEstimator {
    fn name(&self) -> &'static str {
        EstimatorKind::Histogram.label()
    }

    fn estimate(
        &self,
        dag: &QueryDag,
        catalog: &Catalog,
        _tables: Option<&dyn TableAccess>,
        config: &EstimatorConfig,
    ) -> Vec<JobEstimate> {
        estimate_dag(dag, catalog, config)
    }
}

/// Wander-join random-walk sampling estimator.
pub struct SamplingEstimator;

impl CardinalityEstimator for SamplingEstimator {
    fn name(&self) -> &'static str {
        EstimatorKind::Sample.label()
    }

    fn estimate(
        &self,
        dag: &QueryDag,
        catalog: &Catalog,
        tables: Option<&dyn TableAccess>,
        config: &EstimatorConfig,
    ) -> Vec<JobEstimate> {
        let refined = refine_joins(dag, catalog, tables, config, |plan, tables, config, job| {
            let walks = plan.walk_estimates(tables, config, job, config.sample_walks)?;
            Some(mean(&walks))
        });
        estimate_dag_sized(dag, catalog, config, &mut |id| refined[id])
    }
}

/// Per-join-path key-statistics estimator (heavy hitters + residual).
pub struct CatalogEstimator;

impl CardinalityEstimator for CatalogEstimator {
    fn name(&self) -> &'static str {
        EstimatorKind::Catalog.label()
    }

    fn estimate(
        &self,
        dag: &QueryDag,
        catalog: &Catalog,
        tables: Option<&dyn TableAccess>,
        config: &EstimatorConfig,
    ) -> Vec<JobEstimate> {
        let refined = refine_joins(dag, catalog, tables, config, |plan, tables, config, _| {
            plan.path_stats_size(tables, config)
        });
        estimate_dag_sized(dag, catalog, config, &mut |id| refined[id])
    }
}

/// Per-walk Horvitz–Thompson estimates for one join job of `dag`: the test
/// hook behind the sampling estimator. Walk `i`'s value depends only on
/// `(config.sample_seed, job, i)`, so the estimate over `n` walks equals
/// the mean of any prefix schedule — batching cannot change the result.
/// Returns `None` when the join cannot be flattened to a walkable chain.
pub fn join_walk_estimates(
    dag: &QueryDag,
    job: usize,
    catalog: &Catalog,
    tables: &dyn TableAccess,
    config: &EstimatorConfig,
    n_walks: usize,
) -> Option<Vec<f64>> {
    flatten_join(dag, job, catalog)?.walk_estimates(tables, config, job, n_walks)
}

fn mean(walks: &[f64]) -> f64 {
    if walks.is_empty() {
        0.0
    } else {
        walks.iter().sum::<f64>() / walks.len() as f64
    }
}

/// Compute refined join sizes per job id (None = keep the histogram
/// estimate). Shared driver for the sampling and catalog estimators.
fn refine_joins(
    dag: &QueryDag,
    catalog: &Catalog,
    tables: Option<&dyn TableAccess>,
    config: &EstimatorConfig,
    size_fn: impl Fn(&WalkPlan<'_>, &dyn TableAccess, &EstimatorConfig, usize) -> Option<f64>,
) -> Vec<Option<f64>> {
    let Some(tables) = tables else {
        return vec![None; dag.len()];
    };
    dag.jobs()
        .iter()
        .map(|job| {
            let plan = flatten_join(dag, job.id, catalog)?;
            size_fn(&plan, tables, config, job.id)
        })
        .collect()
}

/// A join chain flattened for random walks: `chain[0]` is the walk's base
/// table; hop `h` joins `chain[h + 1]` on
/// `chain[hops[h].owner].left_key = chain[h + 1].right_key`.
struct WalkPlan<'a> {
    chain: Vec<&'a TableInput>,
    hops: Vec<Hop>,
}

struct Hop {
    /// Index into `chain` of the table owning the left join key.
    owner: usize,
    left_key: String,
    right_key: String,
}

/// Flatten a (possibly chained) join job into a walk plan. Gives up
/// (returns `None`) on anything that is not a left-deep chain of base-table
/// equi-joins: broadcast joins, group-by/sort inputs, or join keys that no
/// chain table's schema resolves.
fn flatten_join<'a>(dag: &'a QueryDag, job: usize, catalog: &Catalog) -> Option<WalkPlan<'a>> {
    let j = dag.job(job);
    if !j.broadcasts.is_empty() {
        return None;
    }
    let JobKind::Join { left, right, left_key, right_key } = &j.kind else {
        return None;
    };
    // Normalize so the build side is a base table (joins are symmetric).
    let (stream, stream_key, build, build_key) = match (left, right) {
        (_, InputSrc::Table(t)) => (left, left_key, t, right_key),
        (InputSrc::Table(t), _) => (right, right_key, t, left_key),
        _ => return None,
    };
    let mut plan = match stream {
        InputSrc::Table(t) => WalkPlan { chain: vec![t], hops: Vec::new() },
        InputSrc::Job(i) => flatten_join(dag, *i, catalog)?,
    };
    // Resolve which chain table owns the stream-side key. Column names are
    // schema-qualified by convention (TPC-H prefixes), so the first match
    // is the owner.
    let owner = plan
        .chain
        .iter()
        .position(|t| catalog.get(&t.table).is_some_and(|s| s.column(stream_key).is_some()))?;
    plan.chain.push(build);
    plan.hops.push(Hop { owner, left_key: stream_key.clone(), right_key: build_key.clone() });
    Some(plan)
}

/// A hop prepared for walking: the materialized table, its key index and
/// the key column of the owning chain table.
struct PreparedHop<'t> {
    table: &'t Table,
    predicate: &'t Predicate,
    owner: usize,
    owner_keys: &'t [i64],
    index: HashMap<i64, Vec<u32>>,
}

impl WalkPlan<'_> {
    /// Materialize tables, key columns and hash indexes. `None` when a
    /// table is missing or a join key is not an integer column.
    fn prepare<'t>(
        &'t self,
        tables: &'t dyn TableAccess,
    ) -> Option<(&'t Table, Vec<PreparedHop<'t>>)> {
        let mats: Vec<&'t Table> =
            self.chain.iter().map(|t| tables.lookup(&t.table)).collect::<Option<_>>()?;
        let hops = self
            .hops
            .iter()
            .enumerate()
            .map(|(h, hop)| {
                let table = mats[h + 1];
                let owner_keys = mats[hop.owner].column(&hop.left_key)?.as_int()?;
                let keys = table.column(&hop.right_key)?.as_int()?;
                let mut index: HashMap<i64, Vec<u32>> = HashMap::new();
                for (row, &k) in keys.iter().enumerate() {
                    index.entry(k).or_default().push(row as u32);
                }
                Some(PreparedHop {
                    table,
                    predicate: &self.chain[h + 1].predicate,
                    owner: hop.owner,
                    owner_keys,
                    index,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some((mats[0], hops))
    }

    /// Run `n_walks` wander-join walks; element `i` is walk `i`'s
    /// Horvitz–Thompson estimate (0 for failed walks).
    fn walk_estimates(
        &self,
        tables: &dyn TableAccess,
        config: &EstimatorConfig,
        job: usize,
        n_walks: usize,
    ) -> Option<Vec<f64>> {
        let (base, hops) = self.prepare(tables)?;
        if base.rows() == 0 {
            return Some(vec![0.0; n_walks]);
        }
        let base_pred = &self.chain[0].predicate;
        let walks = (0..n_walks)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(walk_seed(config.sample_seed, job, i));
                self.one_walk(base, base_pred, &hops, &mut rng)
            })
            .collect();
        Some(walks)
    }

    /// One random walk: uniform base tuple, then one uniformly-chosen match
    /// per hop. The estimate is the inverse of the walk's sampling
    /// probability (|T₀| × Π matchesₕ) when every tuple passes its table's
    /// predicate, 0 otherwise.
    fn one_walk(
        &self,
        base: &Table,
        base_pred: &Predicate,
        hops: &[PreparedHop<'_>],
        rng: &mut StdRng,
    ) -> f64 {
        let row = rng.gen_range(0..base.rows());
        if !base_pred.eval(base, row) {
            return 0.0;
        }
        let mut inv_prob = base.rows() as f64;
        let mut chain_rows = Vec::with_capacity(hops.len() + 1);
        chain_rows.push(row);
        for hop in hops {
            let key = hop.owner_keys[chain_rows[hop.owner]];
            let Some(matches) = hop.index.get(&key) else {
                return 0.0;
            };
            let pick = matches[rng.gen_range(0..matches.len())] as usize;
            if !hop.predicate.eval(hop.table, pick) {
                return 0.0;
            }
            inv_prob *= matches.len() as f64;
            chain_rows.push(pick);
        }
        inv_prob
    }

    /// Deterministic path-statistics estimate: compose per-hop
    /// [`KeySketch`] joins along the chain, scaling the owner table's key
    /// sketch to the current path cardinality.
    fn path_stats_size(&self, tables: &dyn TableAccess, config: &EstimatorConfig) -> Option<f64> {
        let mats: Vec<&Table> =
            self.chain.iter().map(|t| tables.lookup(&t.table)).collect::<Option<_>>()?;
        // Filtered row counts per chain table (the sketch scale anchors).
        let filtered: Vec<f64> = mats
            .iter()
            .zip(&self.chain)
            .map(|(t, input)| (0..t.rows()).filter(|&i| input.predicate.eval(t, i)).count() as f64)
            .collect();
        let mut n_cur = filtered[0];
        for (h, hop) in self.hops.iter().enumerate() {
            let left = KeySketch::build(
                mats[hop.owner],
                &hop.left_key,
                &self.chain[hop.owner].predicate,
                config.path_top_k,
            )?;
            let right = KeySketch::build(
                mats[h + 1],
                &hop.right_key,
                &self.chain[h + 1].predicate,
                config.path_top_k,
            )?;
            // The owner's key distribution inside the current joined path,
            // approximated by scaling its filtered base sketch.
            let anchor = filtered[hop.owner];
            let scale = if anchor > 0.0 { n_cur / anchor } else { 0.0 };
            n_cur = left.scaled(scale).join_size(&right);
        }
        Some(n_cur)
    }
}

/// FNV-1a mix of (seed, job, walk): walk `i`'s RNG stream is a pure
/// function of these three, independent of every other walk.
fn walk_seed(seed: u64, job: usize, walk: usize) -> u64 {
    const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_BASIS;
    for bytes in [seed.to_le_bytes(), (job as u64).to_le_bytes(), (walk as u64).to_le_bytes()] {
        for b in bytes {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Key statistics of one (table, key column) pair under a predicate: exact
/// counts of the top-K heaviest keys plus a uniform residual. Small enough
/// to precompute per join-path step, exact where it matters (the hot keys
/// that dominate skewed joins).
struct KeySketch {
    /// `(key, count)` sorted by key, for deterministic merge order.
    heavy: Vec<(i64, f64)>,
    rest_count: f64,
    rest_distinct: f64,
}

impl KeySketch {
    fn build(
        table: &Table,
        column: &str,
        predicate: &Predicate,
        top_k: usize,
    ) -> Option<KeySketch> {
        let keys = table.column(column)?.as_int()?;
        let mut counts: HashMap<i64, f64> = HashMap::new();
        for (row, &k) in keys.iter().enumerate() {
            if predicate.eval(table, row) {
                *counts.entry(k).or_insert(0.0) += 1.0;
            }
        }
        // Deterministic top-K: by count descending, key ascending.
        let mut all: Vec<(i64, f64)> = counts.into_iter().collect();
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let rest = all.split_off(top_k.min(all.len()));
        let mut heavy = all;
        heavy.sort_by_key(|(k, _)| *k);
        Some(KeySketch {
            heavy,
            rest_count: rest.iter().map(|(_, c)| c).sum(),
            rest_distinct: rest.len() as f64,
        })
    }

    fn scaled(&self, factor: f64) -> KeySketch {
        KeySketch {
            heavy: self.heavy.iter().map(|&(k, c)| (k, c * factor)).collect(),
            rest_count: self.rest_count * factor,
            rest_distinct: self.rest_distinct,
        }
    }

    fn heavy_count(&self, key: i64) -> Option<f64> {
        self.heavy.binary_search_by_key(&key, |(k, _)| *k).ok().map(|i| self.heavy[i].1)
    }

    /// Average multiplicity of a residual key (0 when there is no residual).
    fn rest_avg(&self) -> f64 {
        if self.rest_distinct > 0.0 {
            self.rest_count / self.rest_distinct
        } else {
            0.0
        }
    }

    /// Equi-join size of two key distributions: exact over heavy ∩ heavy,
    /// heavy × residual-average cross terms, System-R
    /// (`c₁·c₂ / max(d₁, d₂)`) for residual × residual.
    fn join_size(&self, other: &KeySketch) -> f64 {
        let mut size = 0.0;
        for &(k, cl) in &self.heavy {
            match other.heavy_count(k) {
                Some(cr) => size += cl * cr,
                None => size += cl * other.rest_avg(),
            }
        }
        for &(k, cr) in &other.heavy {
            if self.heavy_count(k).is_none() {
                size += cr * self.rest_avg();
            }
        }
        let dmax = self.rest_distinct.max(other.rest_distinct);
        if dmax > 0.0 {
            size += self.rest_count * other.rest_count / dmax;
        }
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapred_plan::compile::compile;
    use sapred_query::{analyze, parse};
    use sapred_relation::gen::{generate, GenConfig, KeyDist};

    fn db() -> Database {
        generate(GenConfig::new(0.2).with_seed(21))
    }

    fn dag_of(sql: &str, db: &Database) -> QueryDag {
        let a = analyze(&parse(sql).unwrap(), db.catalog(), db).unwrap();
        compile("q", &a)
    }

    const JOIN: &str =
        "SELECT l_quantity, p_size FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey";
    const CHAIN: &str = "SELECT o_totalprice, p_size FROM lineitem l \
         JOIN orders o ON l.l_orderkey = o.o_orderkey \
         JOIN part p ON l.l_partkey = p.p_partkey";

    #[test]
    fn kind_labels_round_trip() {
        for k in EstimatorKind::ALL {
            assert_eq!(EstimatorKind::parse(k.label()), Some(k));
        }
        assert_eq!(EstimatorKind::parse("nope"), None);
        assert_eq!(EstimatorKind::default(), EstimatorKind::Histogram);
    }

    #[test]
    fn histogram_kind_is_inert() {
        let db = db();
        let dag = dag_of(JOIN, &db);
        let cfg = EstimatorConfig::default();
        let direct = estimate_dag(&dag, db.catalog(), &cfg);
        let seamed = estimate_dag_with(&dag, db.catalog(), Some(&db), &cfg);
        for (a, b) in direct.iter().zip(&seamed) {
            assert_eq!(a.tuples_out.to_bits(), b.tuples_out.to_bits());
            assert_eq!(a.d_out.to_bits(), b.d_out.to_bits());
        }
    }

    #[test]
    fn missing_tables_fall_back_to_histogram() {
        let db = db();
        let dag = dag_of(JOIN, &db);
        let cfg = EstimatorConfig { kind: EstimatorKind::Sample, ..Default::default() };
        let hist = estimate_dag(&dag, db.catalog(), &cfg);
        let none = estimate_dag_with(&dag, db.catalog(), None, &cfg);
        assert_eq!(hist[0].tuples_out.to_bits(), none[0].tuples_out.to_bits());
    }

    #[test]
    fn flatten_handles_chains_and_rejects_non_joins() {
        let db = db();
        let chain = dag_of(CHAIN, &db);
        let plan = flatten_join(&chain, 1, db.catalog()).unwrap();
        assert_eq!(plan.chain.len(), 3);
        assert_eq!(plan.hops.len(), 2);
        // Second hop joins part on lineitem's l_partkey: owner is the base.
        assert_eq!(plan.hops[1].owner, 0);
        assert_eq!(plan.hops[1].left_key, "l_partkey");
        let gb = dag_of("SELECT l_partkey, count(*) FROM lineitem GROUP BY l_partkey", &db);
        assert!(flatten_join(&gb, 0, db.catalog()).is_none());
    }

    #[test]
    fn sampling_estimates_track_truth_on_fk_join() {
        let db = db();
        let dag = dag_of(JOIN, &db);
        let cfg = EstimatorConfig { kind: EstimatorKind::Sample, ..Default::default() };
        let est = estimate_dag_with(&dag, db.catalog(), Some(&db), &cfg);
        // FK join: |lineitem ⋈ part| = |lineitem| exactly.
        let truth = db.table("lineitem").unwrap().rows() as f64;
        let err = (est[0].tuples_out - truth).abs() / truth;
        assert!(err < 0.15, "est {} truth {truth}", est[0].tuples_out);
    }

    #[test]
    fn sampling_is_deterministic_and_schedule_independent() {
        let db = db();
        let dag = dag_of(CHAIN, &db);
        let cfg = EstimatorConfig { kind: EstimatorKind::Sample, ..Default::default() };
        let a = join_walk_estimates(&dag, 1, db.catalog(), &db, &cfg, 256).unwrap();
        let b = join_walk_estimates(&dag, 1, db.catalog(), &db, &cfg, 256).unwrap();
        assert_eq!(a.iter().map(|v| v.to_bits()).collect::<Vec<_>>().as_slice(), {
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>().as_slice()
        });
        // Walk i's value does not depend on the total walk count.
        let shorter = join_walk_estimates(&dag, 1, db.catalog(), &db, &cfg, 64).unwrap();
        assert_eq!(
            shorter.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            a[..64].iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn catalog_sketch_join_is_exact_on_heavy_hitters() {
        // All keys heavy (top_k covers the domain): the sketch join is the
        // exact Σ c₁ᵢ·c₂ᵢ.
        let db = generate(GenConfig::new(0.2).with_seed(7).with_key_dist(KeyDist::Zipf(1.3)));
        let li = db.table("lineitem").unwrap();
        let ps = db.table("partsupp").unwrap();
        let l = KeySketch::build(li, "l_partkey", &Predicate::True, usize::MAX).unwrap();
        let r = KeySketch::build(ps, "ps_partkey", &Predicate::True, usize::MAX).unwrap();
        let est = l.join_size(&r);
        let mut counts: HashMap<i64, f64> = HashMap::new();
        for &k in ps.column("ps_partkey").unwrap().as_int().unwrap() {
            *counts.entry(k).or_insert(0.0) += 1.0;
        }
        let exact: f64 = li
            .column("l_partkey")
            .unwrap()
            .as_int()
            .unwrap()
            .iter()
            .map(|k| counts.get(k).copied().unwrap_or(0.0))
            .sum();
        assert!((est - exact).abs() < 1e-6, "est {est} exact {exact}");
    }

    #[test]
    fn estimator_names_match_kinds() {
        assert_eq!(HistogramEstimator.name(), "histogram");
        assert_eq!(SamplingEstimator.name(), "sample");
        assert_eq!(CatalogEstimator.name(), "catalog");
    }
}
