//! The closed-form selectivity formulas of paper §3 and §4.1, as pure
//! functions so each equation is independently testable and usable.

use sapred_relation::histogram::Histogram;

/// Combine selectivity `S_comb` (Eq. 2 and its random-layout variant).
///
/// * `s_pred` — predicate selectivity of the job's input filter;
/// * `d_keys` — product of distinct counts of the group-by keys (`T.d_xy`);
/// * `rows` — tuples in the input table (`|T|`);
/// * `n_maps` — number of map tasks (only used for random layouts);
/// * `clustered` — whether group keys are clustered in file order.
///
/// Clustered: `S_comb = min(S_pred, d_xy / |T|)`.
/// Random:    `S_comb = min(S_pred, d_xy / (|T| / N_maps))`.
pub fn s_comb(s_pred: f64, d_keys: f64, rows: f64, n_maps: usize, clustered: bool) -> f64 {
    if rows <= 0.0 {
        return 0.0;
    }
    let ratio = if clustered { d_keys / rows } else { d_keys / (rows / n_maps.max(1) as f64) };
    s_pred.min(ratio).clamp(0.0, 1.0)
}

/// Per-bucket equi-join size (Eq. 5): `Σ |T1_i|·|T2_i| / max(d1_i, d2_i)`
/// over aligned equi-width buckets, assuming piece-wise uniformity.
///
/// The histograms are rebucketed onto their common domain first, so callers
/// may pass histograms built independently on each side.
///
/// Returns `(estimated output tuples, joint key histogram)` where the joint
/// histogram has per-bucket `count = join size` and
/// `distinct = min(d1, d2)` — the propagation rule below Eq. 5.
pub fn join_size_bucketed(left: &Histogram, right: &Histogram) -> (f64, Histogram) {
    let (lmin, lmax) = left.domain();
    let (rmin, rmax) = right.domain();
    let (min, max) = (lmin.min(rmin), lmax.max(rmax));
    let n = left.num_buckets().max(right.num_buckets());
    let l = left.rebucket(min, max, n);
    let r = right.rebucket(min, max, n);
    let mut joint = l.clone();
    let mut total = 0.0;
    // Compute per-bucket sizes, then write them into the joint histogram.
    let sizes: Vec<(f64, f64)> = l
        .buckets()
        .iter()
        .zip(r.buckets())
        .map(|(a, b)| {
            let dmax = a.distinct.max(b.distinct);
            if dmax <= 0.0 {
                (0.0, 0.0)
            } else {
                (a.count * b.count / dmax, a.distinct.min(b.distinct))
            }
        })
        .collect();
    for (i, (count, distinct)) in sizes.iter().enumerate() {
        total += count;
        joint.set_bucket(i, *count, *distinct);
    }
    (total, joint)
}

/// Natural-join chain approximation (Eq. 6): selectivities accumulate along
/// the branches, so
/// `|T1.p1 ⋈ … ⋈ Tn.pn| ≈ Πᵢ S_pred_i × max(|T1|, …, |Tn|)`.
pub fn natural_chain_size(s_preds: &[f64], sizes: &[f64]) -> f64 {
    assert_eq!(s_preds.len(), sizes.len());
    assert!(!sizes.is_empty());
    let sel: f64 = s_preds.iter().product();
    sel * sizes.iter().cloned().fold(0.0, f64::max)
}

/// Join skew ratio `P` (Eq. 7): the larger filtered side's share of the
/// total filtered input tuples. Always in `(0, 1)`; `P(1-P) ∈ (0, ¼]`.
pub fn p_ratio(filtered_left: f64, filtered_right: f64) -> f64 {
    let (l, r) = (filtered_left.max(1e-9), filtered_right.max(1e-9));
    l.max(r) / (l + r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapred_relation::table::Column;

    #[test]
    fn s_comb_clustered_vs_random() {
        // 1000 rows, 50 distinct keys, no filter, 10 maps.
        let c = s_comb(1.0, 50.0, 1000.0, 10, true);
        let r = s_comb(1.0, 50.0, 1000.0, 10, false);
        assert!((c - 0.05).abs() < 1e-12);
        assert!((r - 0.5).abs() < 1e-12);
        assert!(r > c);
    }

    #[test]
    fn s_comb_capped_by_s_pred() {
        // Very selective filter: combining can't output more than survives.
        assert_eq!(s_comb(0.01, 900.0, 1000.0, 4, true), 0.01);
    }

    #[test]
    fn s_comb_degenerate() {
        assert_eq!(s_comb(1.0, 10.0, 0.0, 4, true), 0.0);
        assert!(s_comb(1.0, 1e9, 10.0, 4, false) <= 1.0);
    }

    #[test]
    fn join_uniform_matches_closed_form() {
        // Two uniform columns over 0..100, 1000 and 500 tuples.
        let l =
            Histogram::build(&Column::Int((0..1000).map(|i| i % 100).collect()), 0.0, 100.0, 10);
        let r = Histogram::build(&Column::Int((0..500).map(|i| i % 100).collect()), 0.0, 100.0, 10);
        let (est, joint) = join_size_bucketed(&l, &r);
        // Closed form: 1000 * 500 / max(100, 100) = 5000.
        assert!((est - 5000.0).abs() / 5000.0 < 0.05, "est {est}");
        assert!((joint.total() - est).abs() < 1e-6);
        // Propagated distinct = min(d1, d2) per bucket = 100 total.
        assert!((joint.distinct_total() - 100.0).abs() < 1.0);
    }

    #[test]
    fn join_disjoint_domains_is_zero() {
        let l = Histogram::build(&Column::Int((0..100).collect()), 0.0, 100.0, 8);
        let r = Histogram::build(&Column::Int((200..300).collect()), 200.0, 300.0, 8);
        let (est, _) = join_size_bucketed(&l, &r);
        assert_eq!(est, 0.0);
    }

    #[test]
    fn join_skew_beats_uniform_assumption() {
        // Skewed left side: 900 tuples on key 0, 100 spread over 1..=99.
        let mut vals = vec![0i64; 900];
        vals.extend((1..100).map(|i| i as i64));
        let l = Histogram::build(&Column::Int(vals), 0.0, 100.0, 50);
        let r =
            Histogram::build(&Column::Int((0..1000).map(|i| i % 100).collect()), 0.0, 100.0, 50);
        let (bucketed, _) = join_size_bucketed(&l, &r);
        // Exact: 900 tuples of key 0 × 10 matches + 99 × 10 = 9990.
        // Uniform closed form would give 999*1000/100 ≈ 9990 only by luck of
        // d=100; with the hot bucket isolated, the bucketed estimate must be
        // well above a naive |T1|·|T2|/ (d1·d2 scaled) style underestimate.
        assert!(bucketed > 5000.0, "bucketed {bucketed}");
    }

    #[test]
    fn natural_chain_eq6() {
        let est = natural_chain_size(&[0.5, 0.96, 1.0], &[1000.0, 25.0, 800_000.0]);
        assert!((est - 0.5 * 0.96 * 800_000.0).abs() < 1e-6);
    }

    #[test]
    fn join_empty_histogram_yields_zero() {
        let l = Histogram::build(&Column::Int(vec![]), 0.0, 100.0, 8);
        let r = Histogram::build(&Column::Int((0..100).collect()), 0.0, 100.0, 8);
        let (est, joint) = join_size_bucketed(&l, &r);
        assert_eq!(est, 0.0);
        assert_eq!(joint.total(), 0.0);
        // The empty side annihilates regardless of argument order.
        let (flipped, _) = join_size_bucketed(&r, &l);
        assert_eq!(flipped, 0.0);
        let (both, _) = join_size_bucketed(&l, &l);
        assert_eq!(both, 0.0);
    }

    #[test]
    fn join_single_bucket_profiles_match_closed_form() {
        // One bucket per side: Eq. 5 degenerates to |T1|·|T2| / max(d1, d2).
        let l = Histogram::build(&Column::Int((0..60).map(|i| i % 6).collect()), 0.0, 6.0, 1);
        let r = Histogram::build(&Column::Int((0..30).map(|i| i % 3).collect()), 0.0, 6.0, 1);
        let (est, joint) = join_size_bucketed(&l, &r);
        assert!((est - 60.0 * 30.0 / 6.0).abs() < 1e-9, "est {est}");
        // Propagated distinct = min(6, 3).
        assert!((joint.distinct_total() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn p_ratio_zero_row_relations() {
        // Zero-row inputs clamp at ε: P stays finite and inside (0, 1].
        assert_eq!(p_ratio(0.0, 0.0), 0.5);
        let p = p_ratio(0.0, 100.0);
        assert!(p.is_finite() && p > 0.999 && p <= 1.0, "P = {p}");
        assert_eq!(p_ratio(0.0, 100.0), p_ratio(100.0, 0.0));
    }

    #[test]
    fn s_comb_branches_coincide_at_one_map() {
        // A single map task sees the whole file, so the random-layout
        // branch reduces to the clustered one.
        for d_keys in [1.0, 10.0, 500.0] {
            assert_eq!(s_comb(1.0, d_keys, 1000.0, 1, true), s_comb(1.0, d_keys, 1000.0, 1, false));
        }
    }

    #[test]
    fn s_comb_random_branch_grows_with_maps() {
        // More maps ⇒ each sees fewer rows per key ⇒ less combining; the
        // clustered branch is the floor.
        let c = s_comb(1.0, 50.0, 1000.0, 16, true);
        let r4 = s_comb(1.0, 50.0, 1000.0, 4, false);
        let r16 = s_comb(1.0, 50.0, 1000.0, 16, false);
        assert!(c <= r4 && r4 <= r16, "c {c} r4 {r4} r16 {r16}");
        // Zero maps is treated as one, not a division by zero.
        assert_eq!(s_comb(1.0, 50.0, 1000.0, 0, false), s_comb(1.0, 50.0, 1000.0, 1, false));
    }

    #[test]
    fn natural_chain_single_relation() {
        assert_eq!(natural_chain_size(&[0.25], &[400.0]), 100.0);
    }

    #[test]
    fn p_ratio_bounds() {
        let p = p_ratio(100.0, 300.0);
        assert!((p - 0.75).abs() < 1e-12);
        assert!(p_ratio(1.0, 1.0) == 0.5);
        // P(1-P) peaks at 1/4 for balanced joins, approaches 0 when skewed.
        let balanced = p_ratio(500.0, 500.0);
        assert!((balanced * (1.0 - balanced) - 0.25).abs() < 1e-12);
        let skewed = p_ratio(1.0, 1e9);
        assert!(skewed * (1.0 - skewed) < 1e-6);
    }
}
