#![warn(missing_docs)]
//! Semantics-aware selectivity estimation (paper §3).
//!
//! Given a compiled [`QueryDag`](sapred_plan::QueryDag) and the catalog
//! statistics of its input tables, this crate estimates — *without executing
//! anything* — the dynamic data sizes along the DAG:
//!
//! * **Intermediate Selectivity** `IS = D_med / D_in` per job, composed from
//!   predicate selectivity `S_pred` (equi-width histograms, piece-wise
//!   uniform), projection selectivity `S_proj` (width ratios) and, for
//!   group-bys, combine selectivity `S_comb` (Eqs. 1–3);
//! * **Final Selectivity** `FS = D_out / D_in` per job, using group-key
//!   cardinalities and the per-bucket equi-join size formula (Eqs. 4–5) with
//!   piece-wise histogram propagation for chained joins on unshared keys;
//! * the join skew ratio `P` of Eq. 7, consumed by the time predictor.
//!
//! Estimates propagate job-to-job: every job's output is summarized as a
//! [`RelProfile`] (tuple count, per-column widths, distinct counts and
//! histograms) that downstream jobs consume exactly like base-table stats.

pub mod estimate;
pub mod estimator;
pub mod formulas;
pub mod pred;
pub mod profile;

pub use estimate::{estimate_dag, EstimatorConfig, JobEstimate, DEFAULT_BLOCK_SIZE};
pub use estimator::{
    estimate_dag_with, join_walk_estimates, CardinalityEstimator, CatalogEstimator, EstimatorKind,
    HistogramEstimator, SamplingEstimator, TableAccess,
};
pub use formulas::{join_size_bucketed, natural_chain_size, p_ratio, s_comb};
pub use pred::pred_selectivity;
pub use profile::{ColProfile, RelProfile};
