//! Predicate selectivity `S_pred` over table statistics.
//!
//! Single-column comparisons are answered by the column's equi-width
//! histogram (piece-wise uniform, §3.1.1). Predicates over several columns
//! combine under the attribute-independence assumption: conjunction
//! multiplies, disjunction uses inclusion–exclusion.

use sapred_relation::expr::Predicate;
use sapred_relation::stats::TableStats;

/// Estimated fraction of `stats`'s tuples satisfying `pred`.
pub fn pred_selectivity(stats: &TableStats, pred: &Predicate) -> f64 {
    match pred {
        Predicate::True => 1.0,
        Predicate::Cmp { column, op, value } => match stats.histogram(column) {
            Some(h) => h.selectivity_cmp(*op, *value),
            None => default_cmp_selectivity(*op),
        },
        Predicate::Between { column, lo, hi } => match stats.histogram(column) {
            Some(h) => h.selectivity_between(*lo, *hi),
            None => 0.25,
        },
        Predicate::And(a, b) => pred_selectivity(stats, a) * pred_selectivity(stats, b),
        Predicate::Or(a, b) => {
            let (sa, sb) = (pred_selectivity(stats, a), pred_selectivity(stats, b));
            (sa + sb - sa * sb).clamp(0.0, 1.0)
        }
    }
}

/// Textbook fallbacks when no histogram exists (System R defaults).
fn default_cmp_selectivity(op: sapred_relation::expr::CmpOp) -> f64 {
    use sapred_relation::expr::CmpOp::*;
    match op {
        Eq => 0.01,
        Ne => 0.99,
        Lt | Le | Gt | Ge => 1.0 / 3.0,
    }
}

/// Split `pred` into (top-level conjuncts per single column, residual
/// multi-column conjuncts). Used to decide which histogram a conjunct can be
/// pushed into versus applied as a uniform scale.
pub fn split_conjuncts(pred: &Predicate) -> (Vec<(&str, Predicate)>, Vec<Predicate>) {
    let mut per_column: Vec<(&str, Predicate)> = Vec::new();
    let mut residual = Vec::new();
    fn walk<'a>(
        p: &'a Predicate,
        per_column: &mut Vec<(&'a str, Predicate)>,
        residual: &mut Vec<Predicate>,
    ) {
        match p {
            Predicate::True => {}
            Predicate::And(a, b) => {
                walk(a, per_column, residual);
                walk(b, per_column, residual);
            }
            other => {
                let cols = other.columns();
                if cols.len() == 1 {
                    // Safe: `cols[0]` borrows from `other` which lives as
                    // long as `p`.
                    let col: &str = cols[0];
                    per_column.push((col, other.clone()));
                } else {
                    residual.push(other.clone());
                }
            }
        }
    }
    walk(pred, &mut per_column, &mut residual);
    (per_column, residual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapred_relation::expr::CmpOp;
    use sapred_relation::schema::{ColumnDef, DataType, Schema};
    use sapred_relation::stats::TableStats;
    use sapred_relation::table::{Column, Table};

    fn stats() -> TableStats {
        let schema = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Int),
        ]);
        let t = Table::new(
            "t",
            schema,
            vec![
                Column::Int((0..1000).collect()),
                Column::Int((0..1000).map(|i| i % 10).collect()),
            ],
        );
        TableStats::gather(&t, 16)
    }

    #[test]
    fn single_column_range() {
        let s = stats();
        let p = Predicate::cmp("a", CmpOp::Lt, 250.0);
        let est = pred_selectivity(&s, &p);
        assert!((est - 0.25).abs() < 0.02, "est {est}");
    }

    #[test]
    fn conjunction_multiplies() {
        let s = stats();
        let p = Predicate::cmp("a", CmpOp::Lt, 500.0).and(Predicate::cmp("b", CmpOp::Eq, 3.0));
        let est = pred_selectivity(&s, &p);
        assert!((est - 0.5 * 0.1).abs() < 0.02, "est {est}");
    }

    #[test]
    fn disjunction_inclusion_exclusion() {
        let s = stats();
        let p = Predicate::cmp("a", CmpOp::Lt, 500.0).or(Predicate::cmp("a", CmpOp::Ge, 500.0));
        let est = pred_selectivity(&s, &p);
        assert!(est > 0.7 && est <= 1.0, "est {est}");
    }

    #[test]
    fn true_is_one() {
        assert_eq!(pred_selectivity(&stats(), &Predicate::True), 1.0);
    }

    #[test]
    fn split_separates_columns() {
        let p = Predicate::cmp("a", CmpOp::Lt, 1.0)
            .and(Predicate::cmp("b", CmpOp::Gt, 2.0))
            .and(Predicate::cmp("a", CmpOp::Gt, 0.0).or(Predicate::cmp("b", CmpOp::Eq, 5.0)));
        let (per_col, residual) = split_conjuncts(&p);
        assert_eq!(per_col.len(), 2);
        assert_eq!(residual.len(), 1);
        assert_eq!(per_col[0].0, "a");
        assert_eq!(per_col[1].0, "b");
    }
}
