//! Estimated profiles of intermediate relations, propagated job-to-job.

use sapred_relation::histogram::Histogram;

/// Estimated statistics of one column of an intermediate relation.
#[derive(Debug, Clone)]
pub struct ColProfile {
    /// Average serialized width in bytes.
    pub width: f64,
    /// Estimated distinct values (capped by the relation's tuple count).
    pub distinct: f64,
    /// Propagated histogram, when one can be maintained.
    pub histogram: Option<Histogram>,
}

/// Estimated statistics of an intermediate relation: the estimator's
/// analogue of the metastore's [`TableStats`](sapred_relation::TableStats),
/// but for data that never materializes.
#[derive(Debug, Clone, Default)]
pub struct RelProfile {
    /// Estimated tuple count.
    pub tuples: f64,
    columns: Vec<(String, ColProfile)>,
}

impl RelProfile {
    /// A profile with no columns yet.
    pub fn new(tuples: f64) -> Self {
        Self { tuples, columns: Vec::new() }
    }

    /// Add a column; colliding names get a `__r` suffix applied by callers
    /// (mirroring the ground-truth executor's self-join renaming).
    pub fn push(&mut self, name: impl Into<String>, col: ColProfile) {
        let name = name.into();
        debug_assert!(
            self.columns.iter().all(|(n, _)| *n != name),
            "duplicate column {name} in RelProfile"
        );
        self.columns.push((name, col));
    }

    /// Column profile by name.
    pub fn column(&self, name: &str) -> Option<&ColProfile> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// Iterate over `(name, profile)` pairs in insertion order.
    pub fn columns(&self) -> impl Iterator<Item = (&str, &ColProfile)> {
        self.columns.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Whether a column with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.columns.iter().any(|(n, _)| n == name)
    }

    /// Average tuple width: sum of column widths.
    pub fn width(&self) -> f64 {
        self.columns.iter().map(|(_, c)| c.width).sum()
    }

    /// Modeled bytes of the full relation.
    pub fn bytes(&self) -> f64 {
        sapred_relation::modeled_bytes(self.tuples * self.width())
    }

    /// Product of distinct counts over `keys`, capped at the tuple count
    /// (`T.d_xy` of Eq. 2 for intermediate relations). Empty keys give 1
    /// (the single global group).
    pub fn distinct_product(&self, keys: &[String]) -> f64 {
        if keys.is_empty() {
            return 1.0;
        }
        let product: f64 =
            keys.iter().map(|k| self.column(k).map_or(1.0, |c| c.distinct.max(1.0))).product();
        product.min(self.tuples.max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> RelProfile {
        let mut p = RelProfile::new(1000.0);
        p.push("k", ColProfile { width: 8.0, distinct: 100.0, histogram: None });
        p.push("v", ColProfile { width: 8.0, distinct: 900.0, histogram: None });
        p.push("s", ColProfile { width: 16.0, distinct: 5.0, histogram: None });
        p
    }

    #[test]
    fn width_and_bytes() {
        let p = profile();
        assert_eq!(p.width(), 32.0);
        assert_eq!(p.bytes(), sapred_relation::modeled_bytes(32_000.0));
    }

    #[test]
    fn distinct_product_caps() {
        let p = profile();
        assert_eq!(p.distinct_product(&["k".into()]), 100.0);
        assert_eq!(p.distinct_product(&["k".into(), "s".into()]), 500.0);
        // 100 * 900 = 90_000 > tuples ⇒ capped at 1000.
        assert_eq!(p.distinct_product(&["k".into(), "v".into()]), 1000.0);
        assert_eq!(p.distinct_product(&[]), 1.0);
    }

    #[test]
    fn lookup() {
        let p = profile();
        assert!(p.contains("v"));
        assert!(!p.contains("z"));
        assert_eq!(p.column("s").unwrap().width, 16.0);
    }
}
