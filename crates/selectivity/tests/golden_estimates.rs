//! Golden fingerprints of the default (histogram) estimator.
//!
//! Every `JobEstimate` field of a fixed query set over a fixed generated
//! database is hashed (FNV-1a over the exact f64 bit patterns) and pinned
//! here. The pins were captured from the estimator *before* the
//! `CardinalityEstimator` seam existed, so they prove the refactor changes
//! nothing for the default configuration — any behavioral drift in the
//! histogram path flips a fingerprint.

use sapred_plan::compile::compile;
use sapred_query::{analyze, parse};
use sapred_relation::gen::{generate, Database, GenConfig};
use sapred_selectivity::estimate::{estimate_dag, EstimatorConfig, JobEstimate};

/// The query set: one representative per job shape the estimator handles
/// (map-only, sort+limit, group-by, FK join, filtered join, chained joins,
/// the §3.2 walkthrough). Names are stable identifiers for the pins.
const QUERIES: &[(&str, &str)] = &[
    ("map_only", "SELECT l_partkey FROM lineitem WHERE l_quantity > 40"),
    ("sort_limit", "SELECT o_orderkey FROM orders ORDER BY o_totalprice DESC LIMIT 5000"),
    (
        "groupby",
        "SELECT l_partkey, sum(l_extendedprice) FROM lineitem \
         WHERE l_shipdate < 1200 GROUP BY l_partkey",
    ),
    (
        "fk_join",
        "SELECT l_quantity, p_size FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey",
    ),
    (
        "filtered_join",
        "SELECT l_quantity, p_size FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey \
         WHERE p_size < 10 AND l_shipdate < 1200",
    ),
    (
        "chained_joins",
        "SELECT o_totalprice, p_size FROM lineitem l \
         JOIN orders o ON l.l_orderkey = o.o_orderkey \
         JOIN part p ON l.l_partkey = p.p_partkey \
         WHERE o_orderdate < 1500",
    ),
    (
        "q11_walkthrough",
        "SELECT ps_partkey, sum(ps_supplycost*ps_availqty) \
         FROM nation n JOIN supplier s ON \
         s.s_nationkey=n.n_nationkey AND n.n_name<>'CHINA' \
         JOIN partsupp ps ON ps.ps_suppkey=s.s_suppkey \
         GROUP BY ps_partkey;",
    ),
];

/// Pinned fingerprints (captured pre-seam; see module docs).
const PINS: &[(&str, u64)] = &[
    ("map_only", 0x87cbf8dd0e1d7883),
    ("sort_limit", 0x12840f0f84aaba8f),
    ("groupby", 0x5cf7cfc73c3972a4),
    ("fk_join", 0x9140c4626ea992ff),
    ("filtered_join", 0x41a392a8f0545d70),
    ("chained_joins", 0xc67ea8e39f866181),
    ("q11_walkthrough", 0x3f91730a3ef73435),
];

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(h, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

fn hash_f64(h: u64, v: f64) -> u64 {
    fnv1a(h, &v.to_bits().to_le_bytes())
}

fn fingerprint(estimates: &[JobEstimate]) -> u64 {
    let mut h = FNV_BASIS;
    for e in estimates {
        h = fnv1a(h, format!("{}", e.category).as_bytes());
        for v in [e.d_in, e.d_med, e.d_out, e.tuples_in, e.tuples_med, e.tuples_out, e.is, e.fs] {
            h = hash_f64(h, v);
        }
        h = hash_f64(h, e.p_ratio.unwrap_or(-1.0));
        h = fnv1a(h, &(e.n_maps as u64).to_le_bytes());
    }
    h
}

fn db() -> Database {
    generate(GenConfig::new(1.0).with_seed(21))
}

fn estimate(db: &Database, sql: &str) -> Vec<JobEstimate> {
    let a = analyze(&parse(sql).unwrap(), db.catalog(), db).unwrap();
    let dag = compile("q", &a);
    estimate_dag(&dag, db.catalog(), &EstimatorConfig::default())
}

#[test]
fn default_estimator_matches_golden_fingerprints() {
    let db = db();
    let mut failures = Vec::new();
    for (name, sql) in QUERIES {
        let fp = fingerprint(&estimate(&db, sql));
        let pin = PINS.iter().find(|(n, _)| n == name).map(|(_, p)| *p).unwrap();
        if fp != pin {
            failures.push(format!("{name}: got {fp:#018x}, pinned {pin:#018x}"));
        }
    }
    assert!(failures.is_empty(), "fingerprint drift:\n{}", failures.join("\n"));
}
