//! Property tests: the estimator stays finite, non-negative and
//! monotone-ish on randomized predicates over generated data.

use proptest::prelude::*;
use sapred_plan::compile::compile;
use sapred_query::{analyze, parse};
use sapred_relation::gen::{generate, Database, GenConfig};
use sapred_selectivity::estimate::{estimate_dag, EstimatorConfig};

fn db() -> Database {
    generate(GenConfig::new(0.1).with_seed(8))
}

fn estimate_first(sql: &str, db: &Database) -> sapred_selectivity::estimate::JobEstimate {
    let a = analyze(&parse(sql).unwrap(), db.catalog(), db).unwrap();
    let dag = compile("q", &a);
    estimate_dag(&dag, db.catalog(), &EstimatorConfig::default()).into_iter().next().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn estimates_stay_sane_under_random_filters(
        qty in -10.0f64..70.0,
        date in -100.0f64..3000.0,
    ) {
        let db = db();
        let sql = format!(
            "SELECT l_partkey, sum(l_extendedprice) FROM lineitem \
             WHERE l_quantity < {qty} AND l_shipdate >= {date} GROUP BY l_partkey"
        );
        let e = estimate_first(&sql, &db);
        prop_assert!(e.d_in > 0.0 && e.d_in.is_finite());
        prop_assert!(e.d_med >= 0.0 && e.d_med.is_finite());
        prop_assert!(e.d_out >= 0.0 && e.d_out.is_finite());
        prop_assert!(e.is >= 0.0 && e.is <= 1.5, "IS = {}", e.is);
        prop_assert!(e.tuples_out <= e.tuples_in.max(1.0));
    }

    #[test]
    fn tighter_filters_never_increase_estimates(
        lo in 0.0f64..40.0,
        delta in 0.0f64..20.0,
    ) {
        let db = db();
        let loose = estimate_first(
            &format!("SELECT l_partkey FROM lineitem WHERE l_quantity < {}", lo + delta),
            &db,
        );
        let tight = estimate_first(
            &format!("SELECT l_partkey FROM lineitem WHERE l_quantity < {lo}"),
            &db,
        );
        prop_assert!(tight.d_med <= loose.d_med + 1e-6);
        prop_assert!(tight.tuples_med <= loose.tuples_med + 1e-6);
    }

    #[test]
    fn join_skew_ratio_always_valid(size in 1.0f64..50.0) {
        let db = db();
        let e = estimate_first(
            &format!(
                "SELECT l_quantity, p_size FROM lineitem l \
                 JOIN part p ON l.l_partkey = p.p_partkey WHERE p_size < {size}"
            ),
            &db,
        );
        let p = e.p_ratio.unwrap();
        prop_assert!((0.5..=1.0).contains(&p), "P = {p}");
        prop_assert!(p * (1.0 - p) <= 0.25 + 1e-12);
    }
}
