//! Property tests for the `CardinalityEstimator` seam: every estimator
//! keeps selectivities in bounds, the sampling estimator is seed-stable
//! under any walk-count schedule, and the histogram stays near exact
//! ground truth on the uniform data it was derived for.

use proptest::prelude::*;
use sapred_plan::compile::compile;
use sapred_plan::dag::QueryDag;
use sapred_plan::ground_truth::execute_dag;
use sapred_query::{analyze, parse};
use sapred_relation::gen::{generate, Database, GenConfig, KeyDist};
use sapred_selectivity::estimate::EstimatorConfig;
use sapred_selectivity::estimator::{estimate_dag_with, join_walk_estimates, EstimatorKind};
use std::sync::OnceLock;

fn uniform_db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| generate(GenConfig::new(0.1).with_seed(8)))
}

fn skewed_db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| generate(GenConfig::new(0.1).with_seed(8).with_key_dist(KeyDist::Zipf(1.2))))
}

fn dag_of(sql: &str, db: &Database) -> QueryDag {
    let a = analyze(&parse(sql).unwrap(), db.catalog(), db).unwrap();
    compile("q", &a)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Selectivities stay in [0, 1] (and every modeled quantity stays
    /// finite and non-negative) for all three estimators, on a filtered
    /// join over randomly-placed predicate thresholds.
    #[test]
    fn every_estimator_keeps_selectivities_in_bounds(
        size in 1.0f64..50.0,
        date in 0.0f64..2500.0,
        skewed in any::<bool>(),
    ) {
        let db = if skewed { skewed_db() } else { uniform_db() };
        let sql = format!(
            "SELECT l_quantity, p_size FROM lineitem l \
             JOIN part p ON l.l_partkey = p.p_partkey \
             WHERE p_size < {size} AND l_shipdate < {date}"
        );
        let dag = dag_of(&sql, db);
        for kind in EstimatorKind::ALL {
            let cfg = EstimatorConfig { kind, ..Default::default() };
            for e in estimate_dag_with(&dag, db.catalog(), Some(db), &cfg) {
                prop_assert!(e.d_in > 0.0 && e.d_in.is_finite(), "{kind}: d_in {}", e.d_in);
                prop_assert!(e.d_med >= 0.0 && e.d_med.is_finite());
                prop_assert!(e.d_out >= 0.0 && e.d_out.is_finite());
                prop_assert!(e.tuples_out >= 0.0 && e.tuples_out.is_finite());
                // IS and FS are bytes ratios of a filtered join: both in [0, 1]
                // (the paper's Eq. 1 selectivities), modulo float dust.
                prop_assert!((0.0..=1.0 + 1e-9).contains(&e.is), "{kind}: IS = {}", e.is);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&e.fs), "{kind}: FS = {}", e.fs);
                if let Some(p) = e.p_ratio {
                    prop_assert!((0.5..=1.0).contains(&p), "{kind}: P = {p}");
                }
            }
        }
    }

    /// Walk `i`'s Horvitz–Thompson value is a pure function of
    /// `(seed, job, i)`: estimates are bit-identical for a fixed seed no
    /// matter how many walks are requested (any prefix schedule), and a
    /// different seed produces a different walk stream.
    #[test]
    fn sampling_walks_are_seed_stable_under_any_schedule(
        short in 1usize..128,
        long in 128usize..512,
        seed in any::<u64>(),
    ) {
        let db = skewed_db();
        let dag = dag_of(
            "SELECT l_partkey, sum(l_quantity) FROM lineitem l \
             JOIN partsupp ps ON l.l_partkey = ps.ps_partkey GROUP BY l_partkey",
            db,
        );
        let cfg = EstimatorConfig {
            kind: EstimatorKind::Sample,
            sample_seed: seed,
            ..Default::default()
        };
        let a = join_walk_estimates(&dag, 0, db.catalog(), db, &cfg, long).unwrap();
        let b = join_walk_estimates(&dag, 0, db.catalog(), db, &cfg, long).unwrap();
        prop_assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let prefix = join_walk_estimates(&dag, 0, db.catalog(), db, &cfg, short).unwrap();
        prop_assert_eq!(
            prefix.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            a[..short].iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// On uniform data — the regime the equi-width histogram models
    /// exactly — its join output estimate stays within a fixed relative
    /// bound of exact ground-truth execution, for any filter placement.
    #[test]
    fn histogram_tracks_exact_truth_on_uniform_data(size in 2.0f64..50.0) {
        let db = uniform_db();
        let sql = format!(
            "SELECT l_quantity, p_size FROM lineitem l \
             JOIN part p ON l.l_partkey = p.p_partkey WHERE p_size < {size}"
        );
        let dag = dag_of(&sql, db);
        let cfg = EstimatorConfig::default();
        let est = estimate_dag_with(&dag, db.catalog(), Some(db), &cfg);
        let act = execute_dag(&dag, db, cfg.block_size);
        for (e, a) in est.iter().zip(&act) {
            let err = (e.tuples_out - a.tuples_out).abs() / a.tuples_out.max(1.0);
            prop_assert!(err < 0.35, "est {} actual {} err {err:.3}", e.tuples_out, a.tuples_out);
        }
    }
}
