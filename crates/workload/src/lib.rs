#![warn(missing_docs)]
//! Workload generation: parameterized TPC-H / TPC-DS-style query templates,
//! the training population (paper §5.1: ~1,000 queries over 1–100 GB, plus
//! 150–400 GB scale-out queries), and the Bing / Facebook production mixes
//! of paper Table 2 with Poisson arrivals.

pub mod mixes;
pub mod pool;
pub mod population;
pub mod templates;

pub use mixes::{bing_mix, facebook_mix, generate_mix_workload, MixBin, MixSpec, WorkloadQuery};
pub use pool::DbPool;
pub use population::{generate_population, PopQuery, PopulationConfig};
pub use templates::Template;
