//! The Bing and Facebook production workload mixes of paper Table 2,
//! regenerated from TPC-H/TPC-DS-style templates, with Poisson arrivals.

use crate::pool::DbPool;
use crate::templates::Template;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sapred_plan::dag::QueryDag;
use sapred_relation::dist::exponential_gap;

/// One bin of a workload mix: an input-size band and how many queries fall
/// in it (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixBin {
    /// Inclusive scale band in nominal GB.
    pub min_gb: f64,

    /// Inclusive upper edge of the band.
    pub max_gb: f64,
    /// Queries drawn from this bin.
    pub count: usize,
}

/// A named workload composition.
#[derive(Debug, Clone)]
pub struct MixSpec {
    /// Mix name ("bing" / "facebook").
    pub name: &'static str,
    /// The five input-size bins of Table 2.
    pub bins: Vec<MixBin>,
}

impl MixSpec {
    /// Total queries across all bins.
    pub fn total_queries(&self) -> usize {
        self.bins.iter().map(|b| b.count).sum()
    }
}

/// Table 2, Bing column: 44 / 8 / 24 / 22 / 2 queries in the five bins.
pub fn bing_mix() -> MixSpec {
    MixSpec {
        name: "bing",
        bins: vec![
            MixBin { min_gb: 1.0, max_gb: 10.0, count: 44 },
            MixBin { min_gb: 20.0, max_gb: 20.0, count: 8 },
            MixBin { min_gb: 50.0, max_gb: 50.0, count: 24 },
            MixBin { min_gb: 100.0, max_gb: 100.0, count: 22 },
            MixBin { min_gb: 150.0, max_gb: 150.0, count: 2 },
        ],
    }
}

/// Table 2, Facebook column: 85 / 4 / 8 / 2 / 1.
pub fn facebook_mix() -> MixSpec {
    MixSpec {
        name: "facebook",
        bins: vec![
            MixBin { min_gb: 1.0, max_gb: 10.0, count: 85 },
            MixBin { min_gb: 20.0, max_gb: 20.0, count: 4 },
            MixBin { min_gb: 50.0, max_gb: 50.0, count: 8 },
            MixBin { min_gb: 100.0, max_gb: 100.0, count: 2 },
            MixBin { min_gb: 150.0, max_gb: 150.0, count: 1 },
        ],
    }
}

/// One workload query with its Poisson arrival time.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// Stable query id within the workload.
    pub id: usize,
    /// The template this query was instantiated from.
    pub template: Template,
    /// Generator scale the query's database instance was built at.
    pub scale_gb: f64,
    /// The query's actual input size in nominal GB — the quantity Table 2
    /// bins by.
    pub input_gb: f64,
    /// The compiled job DAG.
    pub dag: QueryDag,
    /// Poisson arrival time in seconds.
    pub arrival: f64,
}

/// Bytes a DAG's map phases read from base tables (counting repeated scans,
/// as HDFS would serve them).
pub fn dag_input_bytes(dag: &QueryDag, catalog: &sapred_relation::stats::Catalog) -> f64 {
    dag.jobs()
        .iter()
        .flat_map(|j| j.kind.inputs())
        .filter_map(|i| match i {
            sapred_plan::dag::InputSrc::Table(t) => {
                catalog.get(&t.table).map(|s| s.modeled_bytes())
            }
            sapred_plan::dag::InputSrc::Job(_) => None,
        })
        .sum()
}

/// Per-template input factor: nominal input GB read per generator scale-GB,
/// measured on a reference instance. Templates reading only dimension
/// tables have small factors and are excluded from the large bins (their
/// input can never reach 20+ GB at sane scales).
pub fn input_factors(pool: &mut DbPool, seed: u64) -> Vec<(Template, f64)> {
    const REF_SCALE: f64 = 1.0;
    let db = pool.get(REF_SCALE);
    let mut rng = StdRng::seed_from_u64(seed);
    Template::all()
        .iter()
        .map(|t| {
            let dag = t.instantiate(db, &mut rng).expect("reference instantiation");
            let gb = dag_input_bytes(&dag, db.catalog()) / 1e9;
            (*t, gb / REF_SCALE)
        })
        .collect()
}

/// Quantize a generator scale onto a coarse grid so the database pool stays
/// small while input sizes stay close to their bin targets.
fn quantize_scale(scale: f64) -> f64 {
    const GRID: [f64; 17] = [
        0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 7.0, 10.0, 15.0, 20.0, 30.0, 50.0, 70.0, 100.0, 150.0,
        200.0, 300.0,
    ];
    *GRID
        .iter()
        .min_by(|a, b| {
            let da = (a.ln() - scale.ln()).abs();
            let db = (b.ln() - scale.ln()).abs();
            da.partial_cmp(&db).expect("no NaN")
        })
        .expect("grid non-empty")
}

/// Instantiate a mix. Each bin's queries get a random template whose input
/// factor can reach the bin's *input size*; the generator scale is solved as
/// `input_gb / factor` (quantized onto a coarse grid) so the query actually
/// reads the bytes its bin promises — Table 2 bins by input size, not by
/// database scale. The merged list is shuffled and assigned Poisson
/// arrivals with mean inter-arrival `mean_gap_s` seconds (paper §5.1:
/// "queries are submitted into the system following a random Poisson
/// distribution").
///
/// `scale_divisor` shrinks every bin's GB band (keeping the composition
/// shape) so unit tests can run the mix at laptop scale; benches pass 1.0.
pub fn generate_mix_workload(
    mix: &MixSpec,
    pool: &mut DbPool,
    mean_gap_s: f64,
    scale_divisor: f64,
    seed: u64,
) -> Vec<WorkloadQuery> {
    assert!(scale_divisor > 0.0 && mean_gap_s > 0.0);
    let factors = input_factors(pool, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picks: Vec<(Template, f64, f64)> = Vec::with_capacity(mix.total_queries());
    for bin in &mix.bins {
        for _ in 0..bin.count {
            // Bin-1 input sizes are spread over the band; point bins fixed.
            let input_gb = if bin.max_gb > bin.min_gb {
                let choices = [1.0f64, 2.0, 5.0, 10.0];
                choices[rng.gen_range(0..choices.len())].clamp(bin.min_gb, bin.max_gb)
            } else {
                bin.min_gb
            } / scale_divisor;
            // A template is eligible if its generator scale stays within 3x
            // of the input target (dimension-only templates can never fill
            // a large bin).
            let (template, factor) = loop {
                let (t, f) = factors[rng.gen_range(0..factors.len())];
                if f > 0.0 && input_gb / f <= 3.0 * input_gb.max(1.0) {
                    break (t, f);
                }
            };
            let scale = quantize_scale((input_gb / factor).clamp(0.05, 300.0));
            picks.push((template, scale, input_gb));
        }
    }
    // Shuffle so arrival order is independent of bin order.
    for i in (1..picks.len()).rev() {
        picks.swap(i, rng.gen_range(0..=i));
    }
    let mut out = Vec::with_capacity(picks.len());
    let mut t = 0.0;
    for (id, (template, scale, input_gb)) in picks.into_iter().enumerate() {
        t += exponential_gap(&mut rng, 1.0 / mean_gap_s);
        let db = pool.get(scale);
        let dag = template
            .instantiate(db, &mut rng)
            .unwrap_or_else(|e| panic!("{} failed: {e}", template.name()));
        out.push(WorkloadQuery { id, template, scale_gb: scale, input_gb, dag, arrival: t });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_compositions_exact() {
        let bing = bing_mix();
        assert_eq!(bing.total_queries(), 100);
        assert_eq!(bing.bins.iter().map(|b| b.count).collect::<Vec<_>>(), vec![44, 8, 24, 22, 2]);
        let fb = facebook_mix();
        assert_eq!(fb.total_queries(), 100);
        assert_eq!(fb.bins.iter().map(|b| b.count).collect::<Vec<_>>(), vec![85, 4, 8, 2, 1]);
    }

    #[test]
    fn workload_generation_matches_composition() {
        let mix = MixSpec {
            name: "tiny",
            bins: vec![
                MixBin { min_gb: 1.0, max_gb: 10.0, count: 6 },
                MixBin { min_gb: 20.0, max_gb: 20.0, count: 2 },
            ],
        };
        let mut pool = DbPool::new(4);
        let w = generate_mix_workload(&mix, &mut pool, 10.0, 100.0, 4);
        assert_eq!(w.len(), 8);
        // Two queries with 20/100 = 0.2 GB of input.
        assert_eq!(w.iter().filter(|q| (q.input_gb - 0.2).abs() < 1e-9).count(), 2);
        // Arrivals strictly increase.
        for pair in w.windows(2) {
            assert!(pair[1].arrival > pair[0].arrival);
        }
    }

    #[test]
    fn facebook_skews_smaller_than_bing() {
        let mut pool = DbPool::new(9);
        let fb = generate_mix_workload(&facebook_mix(), &mut pool, 5.0, 200.0, 9);
        let bing = generate_mix_workload(&bing_mix(), &mut pool, 5.0, 200.0, 9);
        let mean = |w: &[WorkloadQuery]| w.iter().map(|q| q.input_gb).sum::<f64>() / w.len() as f64;
        assert!(mean(&fb) < 0.5 * mean(&bing), "fb {} bing {}", mean(&fb), mean(&bing));
    }

    #[test]
    fn input_factors_distinguish_fact_and_dimension_templates() {
        let mut pool = DbPool::new(21);
        let factors = input_factors(&mut pool, 21);
        assert_eq!(factors.len(), Template::all().len());
        let get = |name: &str| -> f64 {
            factors.iter().find(|(t, _)| t.name() == name).map(|(_, f)| *f).unwrap()
        };
        // Lineitem scanners read most of a scale-GB per GB...
        assert!(get("sort_lineitem") > 0.3, "{}", get("sort_lineitem"));
        // ...Q17 reads lineitem twice...
        assert!(get("q17_small_quantity") > 1.5 * get("sort_lineitem") * 0.8);
        // ...while dimension-only templates read almost nothing.
        assert!(get("ds_part_sizes") < 0.1, "{}", get("ds_part_sizes"));
        assert!(get("ds_supplier_balance") < 0.1);
    }

    #[test]
    fn large_bins_reach_their_input_targets() {
        let mix =
            MixSpec { name: "large", bins: vec![MixBin { min_gb: 20.0, max_gb: 20.0, count: 6 }] };
        let mut pool = DbPool::new(31);
        // Divisor 10: 2 GB input targets.
        let w = generate_mix_workload(&mix, &mut pool, 10.0, 10.0, 31);
        for q in &w {
            let actual_gb = dag_input_bytes(&q.dag, pool.peek(q.scale_gb).unwrap().catalog()) / 1e9;
            // Quantized scales put the actual input within ~2x of the target.
            assert!(
                (0.4..5.0).contains(&(actual_gb / q.input_gb)),
                "{}: target {} actual {actual_gb}",
                q.template.name(),
                q.input_gb
            );
        }
    }

    #[test]
    fn poisson_gaps_average_to_mean() {
        let mix =
            MixSpec { name: "gaps", bins: vec![MixBin { min_gb: 1.0, max_gb: 1.0, count: 60 }] };
        let mut pool = DbPool::new(11);
        let w = generate_mix_workload(&mix, &mut pool, 7.0, 10.0, 11);
        let mean_gap = w.last().unwrap().arrival / w.len() as f64;
        assert!((mean_gap - 7.0).abs() < 2.5, "mean gap {mean_gap}");
    }
}
