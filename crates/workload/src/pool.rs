//! A pool of generated database instances, one per nominal scale, shared by
//! all queries of that scale (regenerating 100 GB of synthetic TPC-H per
//! query would dominate every experiment's runtime).

use sapred_relation::gen::{generate, Database, GenConfig, KeyDist, Layout};
use std::collections::BTreeMap;

/// Lazily generated database instances keyed by nominal scale (GB ×10 to
/// allow fractional scales as map keys).
#[derive(Debug, Default)]
pub struct DbPool {
    seed: u64,
    key_dist: Option<KeyDist>,
    layout: Option<Layout>,
    dbs: BTreeMap<u64, Database>,
}

impl DbPool {
    /// An empty pool; instances derive their seeds from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed, key_dist: None, layout: None, dbs: BTreeMap::new() }
    }

    /// Override the key distribution for all generated instances.
    pub fn with_key_dist(mut self, d: KeyDist) -> Self {
        self.key_dist = Some(d);
        self
    }

    /// Override the row layout for all generated instances.
    pub fn with_layout(mut self, l: Layout) -> Self {
        self.layout = Some(l);
        self
    }

    fn key(scale_gb: f64) -> u64 {
        (scale_gb * 10.0).round() as u64
    }

    /// Get (generating on first use) the instance for `scale_gb`.
    pub fn get(&mut self, scale_gb: f64) -> &Database {
        let key = Self::key(scale_gb);
        let (seed, kd, layout) = (self.seed, self.key_dist, self.layout);
        self.dbs.entry(key).or_insert_with(|| {
            let mut config = GenConfig::new(scale_gb).with_seed(seed ^ key);
            if let Some(d) = kd {
                config = config.with_key_dist(d);
            }
            if let Some(l) = layout {
                config = config.with_layout(l);
            }
            generate(config)
        })
    }

    /// Read an already-generated instance without taking `&mut self`
    /// (useful after pre-warming, e.g. for parallel training workers).
    pub fn peek(&self, scale_gb: f64) -> Option<&Database> {
        self.dbs.get(&Self::key(scale_gb))
    }

    /// Number of instances generated so far.
    pub fn len(&self) -> usize {
        self.dbs.len()
    }

    /// Whether no instance has been generated yet.
    pub fn is_empty(&self) -> bool {
        self.dbs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_cached() {
        let mut pool = DbPool::new(3);
        let rows_a = pool.get(0.5).table("lineitem").unwrap().rows();
        let rows_b = pool.get(0.5).table("lineitem").unwrap().rows();
        assert_eq!(rows_a, rows_b);
        assert_eq!(pool.len(), 1);
        pool.get(1.0);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn fractional_scales_distinct() {
        let mut pool = DbPool::new(3);
        pool.get(0.1);
        pool.get(0.2);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn scales_affect_size() {
        let mut pool = DbPool::new(9);
        let small = pool.get(1.0).table("lineitem").unwrap().rows();
        let large = pool.get(5.0).table("lineitem").unwrap().rows();
        assert!(large > 4 * small);
    }
}
