//! The training/validation query population of paper §5.1: queries drawn
//! from all templates over a spread of scales (1–100 GB), plus larger
//! scale-out queries (150–400 GB) reserved for the test set.

use crate::pool::DbPool;
use crate::templates::Template;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sapred_plan::dag::QueryDag;

/// One population query: a compiled DAG plus the scale it runs against.
#[derive(Debug, Clone)]
pub struct PopQuery {
    /// Stable query id (drives the train/test split).
    pub id: usize,
    /// The template this query came from.
    pub template: Template,
    /// Generator scale of the database instance it runs against.
    pub scale_gb: f64,
    /// The compiled job DAG.
    pub dag: QueryDag,
    /// True for the 150–400 GB scale-out queries added only to the test set.
    pub scale_out: bool,
}

/// Population parameters. The paper uses ~1,000 queries (→ 5,647 jobs) at
/// 1–100 GB with a 3:1 train/test split; the defaults here are a scaled
/// configuration suitable for unit tests — benches pass larger counts.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Number of main-population queries.
    pub n_queries: usize,
    /// Scales sampled for the main population.
    pub scales_gb: Vec<f64>,
    /// Extra scale-out queries (one per scale in this list) appended for
    /// the test set (paper: 150–400 GB).
    pub scale_out_gb: Vec<f64>,
    /// RNG seed for template choice and constants.
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        Self {
            n_queries: 120,
            scales_gb: vec![1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0],
            scale_out_gb: vec![150.0, 200.0, 400.0],
            seed: 71,
        }
    }
}

impl PopulationConfig {
    /// The paper-scale configuration (~1,000 queries). Heavy: intended for
    /// release-mode benches.
    pub fn paper_scale() -> Self {
        Self { n_queries: 1000, ..Default::default() }
    }
}

/// Generate the population. Queries cycle through all templates so every
/// operator type is represented, with random scales and constants.
pub fn generate_population(config: &PopulationConfig, pool: &mut DbPool) -> Vec<PopQuery> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let templates = Template::all();
    let mut out = Vec::with_capacity(config.n_queries + config.scale_out_gb.len());
    let mut id = 0;
    while out.len() < config.n_queries {
        let template = templates[id % templates.len()];
        let scale = config.scales_gb[rng.gen_range(0..config.scales_gb.len())];
        let db = pool.get(scale);
        match template.instantiate(db, &mut rng) {
            Ok(dag) => {
                out.push(PopQuery { id, template, scale_gb: scale, dag, scale_out: false });
                id += 1;
            }
            Err(e) => panic!("template {} failed to instantiate: {e}", template.name()),
        }
    }
    // Scale-out test queries: a few templates at very large scales.
    for (i, &scale) in config.scale_out_gb.iter().enumerate() {
        let template = templates[(i * 7 + 3) % templates.len()];
        let db = pool.get(scale);
        let dag = template.instantiate(db, &mut rng).expect("scale-out instantiation");
        out.push(PopQuery { id, template, scale_gb: scale, dag, scale_out: true });
        id += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_covers_templates_and_scales() {
        let config = PopulationConfig {
            n_queries: 40,
            scales_gb: vec![0.2, 0.5],
            scale_out_gb: vec![1.0],
            seed: 5,
        };
        let mut pool = DbPool::new(5);
        let pop = generate_population(&config, &mut pool);
        assert_eq!(pop.len(), 41);
        let templates: std::collections::HashSet<_> =
            pop.iter().map(|p| p.template.name()).collect();
        assert_eq!(templates.len(), 20, "all templates hit with 40 queries");
        assert!(pop.iter().any(|p| p.scale_gb == 0.2));
        assert!(pop.iter().any(|p| p.scale_gb == 0.5));
        assert_eq!(pop.iter().filter(|p| p.scale_out).count(), 1);
    }

    #[test]
    fn job_counts_match_paper_ratio() {
        // Paper: ~1,000 queries → 5,647 jobs ≈ 5.6 jobs/query. Our template
        // mix is lighter (more single-job shapes) but must average several
        // jobs per query.
        let config =
            PopulationConfig { n_queries: 40, scales_gb: vec![0.2], scale_out_gb: vec![], seed: 6 };
        let mut pool = DbPool::new(6);
        let pop = generate_population(&config, &mut pool);
        let jobs: usize = pop.iter().map(|p| p.dag.len()).sum();
        let ratio = jobs as f64 / pop.len() as f64;
        assert!(ratio > 1.5, "jobs per query = {ratio}");
    }

    #[test]
    fn deterministic() {
        let config =
            PopulationConfig { n_queries: 10, scales_gb: vec![0.2], scale_out_gb: vec![], seed: 8 };
        let a = generate_population(&config, &mut DbPool::new(8));
        let b = generate_population(&config, &mut DbPool::new(8));
        let names = |p: &[PopQuery]| p.iter().map(|q| q.dag.name.clone()).collect::<Vec<_>>();
        assert_eq!(names(&a), names(&b));
    }
}
