//! Parameterized query templates.
//!
//! Twenty templates spanning the paper's workload space: the TPC-H queries
//! it names explicitly (Q11 from §3.2, Q14 = the motivation's QA/QC, Q17 =
//! QB), a representative slice of further TPC-H shapes, and TPC-DS-style
//! aggregation/reporting shapes expressed over the same schema. Each
//! template randomizes its predicate constants per instantiation, so a
//! population of instantiations exercises a spread of selectivities.

use rand::rngs::StdRng;
use rand::Rng;
use sapred_plan::builder::DagBuilder;
use sapred_plan::compile::compile;
use sapred_plan::dag::QueryDag;
use sapred_query::{analyze, parse, QueryError};
use sapred_relation::expr::{CmpOp, Predicate};
use sapred_relation::gen::{Database, DATE_MAX};

/// One query template. `Extract`-heavy, `Groupby`-heavy and `Join`-heavy
/// shapes are all represented so the per-operator accuracy tables have
/// balanced sample counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Template {
    /// TPC-H Q1: pricing summary — single Groupby over filtered lineitem.
    Q1PricingSummary,
    /// TPC-H Q3 (simplified): shipping priority — 2 joins + groupby + top-k.
    Q3ShippingPriority,
    /// TPC-H Q5 (simplified): local suppliers — 3 joins + groupby.
    Q5LocalSupplier,
    /// TPC-H Q6: forecast revenue — global aggregate, highly selective.
    Q6ForecastRevenue,
    /// TPC-H Q10 (simplified): returned items — 2 joins + groupby + top-k.
    Q10Returned,
    /// The paper's modified TPC-H Q11 (§3.2): 2 joins + groupby.
    Q11ImportantStock,
    /// TPC-H Q12: shipmode priority — 1 join + groupby.
    Q12Shipmode,
    /// TPC-H Q14: promotion effect — join + global aggregate (QA/QC of the
    /// motivation experiment: 2 jobs).
    Q14Promo,
    /// TPC-H Q17: small-quantity revenue — 4-job DAG with a self-join on
    /// lineitem (QB of the motivation experiment). Built via DagBuilder
    /// because its correlated subquery is outside the SQL subset.
    Q17SmallQuantity,
    /// TPC-H Q19-ish: discounted revenue — join with disjunctive predicate.
    Q19Discounted,
    /// Plain sort: top-k orders by price (Extract).
    TopOrders,
    /// Map-only selective filter on lineitem (Extract, no reduce).
    FilterLineitem,
    /// Full scan sort of lineitem by ship date (Extract, heavy).
    SortLineitem,
    /// DS-style: two-key group-by (partkey × suppkey).
    DsTwoKeyGroup,
    /// DS-style: order priority counts over a date window.
    DsOrderPriority,
    /// DS-style: top customers by spend — join + groupby + top-k.
    DsTopCustomers,
    /// DS-style: part size distribution (small input).
    DsPartSizes,
    /// DS-style: supplier account-balance band scan (Extract).
    DsSupplierBalance,
    /// DS-style: brand inventory value — join + groupby.
    DsBrandInventory,
    /// DS-style: returnflag × shipmode matrix (two-key groupby, no filter).
    DsFlagModeMatrix,
}

impl Template {
    /// All templates.
    pub fn all() -> &'static [Template] {
        use Template::*;
        &[
            Q1PricingSummary,
            Q3ShippingPriority,
            Q5LocalSupplier,
            Q6ForecastRevenue,
            Q10Returned,
            Q11ImportantStock,
            Q12Shipmode,
            Q14Promo,
            Q17SmallQuantity,
            Q19Discounted,
            TopOrders,
            FilterLineitem,
            SortLineitem,
            DsTwoKeyGroup,
            DsOrderPriority,
            DsTopCustomers,
            DsPartSizes,
            DsSupplierBalance,
            DsBrandInventory,
            DsFlagModeMatrix,
        ]
    }

    /// Stable snake_case template name.
    pub fn name(&self) -> &'static str {
        use Template::*;
        match self {
            Q1PricingSummary => "q1_pricing_summary",
            Q3ShippingPriority => "q3_shipping_priority",
            Q5LocalSupplier => "q5_local_supplier",
            Q6ForecastRevenue => "q6_forecast_revenue",
            Q10Returned => "q10_returned",
            Q11ImportantStock => "q11_important_stock",
            Q12Shipmode => "q12_shipmode",
            Q14Promo => "q14_promo",
            Q17SmallQuantity => "q17_small_quantity",
            Q19Discounted => "q19_discounted",
            TopOrders => "top_orders",
            FilterLineitem => "filter_lineitem",
            SortLineitem => "sort_lineitem",
            DsTwoKeyGroup => "ds_two_key_group",
            DsOrderPriority => "ds_order_priority",
            DsTopCustomers => "ds_top_customers",
            DsPartSizes => "ds_part_sizes",
            DsSupplierBalance => "ds_supplier_balance",
            DsBrandInventory => "ds_brand_inventory",
            DsFlagModeMatrix => "ds_flag_mode_matrix",
        }
    }

    /// Instantiate against a database, randomizing predicate constants.
    pub fn instantiate(&self, db: &Database, rng: &mut StdRng) -> Result<QueryDag, QueryError> {
        use Template::*;
        if *self == Q17SmallQuantity {
            return Ok(q17_dag(db, rng));
        }
        let sql = self.sql(db, rng);
        let analyzed = analyze(&parse(&sql)?, db.catalog(), db)?;
        Ok(compile(self.name(), &analyzed))
    }

    /// The SQL text of this template instance (not available for Q17, which
    /// is hand-built).
    pub fn sql(&self, _db: &Database, rng: &mut StdRng) -> String {
        use Template::*;
        let date = |rng: &mut StdRng, span: i64| -> (i64, i64) {
            let start = rng.gen_range(0..(DATE_MAX - span).max(1));
            (start, start + span)
        };
        match self {
            Q1PricingSummary => {
                let cut = rng.gen_range(DATE_MAX / 2..DATE_MAX);
                format!(
                    "SELECT l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice), \
                     count(*) FROM lineitem WHERE l_shipdate <= {cut} \
                     GROUP BY l_returnflag, l_linestatus"
                )
            }
            Q3ShippingPriority => {
                let (a, _) = date(rng, 400);
                format!(
                    "SELECT l_orderkey, sum(l_extendedprice) FROM customer c \
                     JOIN orders o ON c.c_custkey = o.o_custkey AND o.o_orderdate < {a} \
                     JOIN lineitem l ON o.o_orderkey = l.l_orderkey \
                     GROUP BY l_orderkey ORDER BY l_orderkey LIMIT 10000"
                )
            }
            Q5LocalSupplier => {
                let (a, b) = date(rng, 365);
                format!(
                    "SELECT n_name, sum(l_extendedprice) FROM nation n \
                     JOIN customer c ON c.c_nationkey = n.n_nationkey \
                     JOIN orders o ON o.o_custkey = c.c_custkey \
                     AND o.o_orderdate >= {a} AND o.o_orderdate < {b} \
                     JOIN lineitem l ON l.l_orderkey = o.o_orderkey \
                     GROUP BY n_name"
                )
            }
            Q6ForecastRevenue => {
                let (a, b) = date(rng, 365);
                let qty = rng.gen_range(20..30);
                format!(
                    "SELECT sum(l_extendedprice*l_discount) FROM lineitem \
                     WHERE l_shipdate >= {a} AND l_shipdate < {b} \
                     AND l_discount BETWEEN 0.02 AND 0.07 AND l_quantity < {qty}"
                )
            }
            Q10Returned => {
                let (a, b) = date(rng, 200);
                format!(
                    "SELECT c_custkey, sum(l_extendedprice) FROM customer c \
                     JOIN orders o ON c.c_custkey = o.o_custkey \
                     AND o.o_orderdate >= {a} AND o.o_orderdate < {b} \
                     JOIN lineitem l ON o.o_orderkey = l.l_orderkey AND l.l_returnflag = 'A' \
                     GROUP BY c_custkey ORDER BY c_custkey LIMIT 20000"
                )
            }
            Q11ImportantStock => {
                let nations = ["CHINA", "FRANCE", "GERMANY", "JAPAN", "RUSSIA"];
                let nation = nations[rng.gen_range(0..nations.len())];
                format!(
                    "SELECT ps_partkey, sum(ps_supplycost*ps_availqty) \
                     FROM nation n JOIN supplier s ON \
                     s.s_nationkey=n.n_nationkey AND n.n_name<>'{nation}' \
                     JOIN partsupp ps ON ps.ps_suppkey=s.s_suppkey \
                     GROUP BY ps_partkey"
                )
            }
            Q12Shipmode => {
                let (a, b) = date(rng, 365);
                format!(
                    "SELECT l_shipmode, count(*) FROM orders o \
                     JOIN lineitem l ON o.o_orderkey = l.l_orderkey \
                     AND l.l_receiptdate >= {a} AND l.l_receiptdate < {b} \
                     GROUP BY l_shipmode"
                )
            }
            Q14Promo => {
                let (a, b) = date(rng, 30);
                format!(
                    "SELECT sum(l_extendedprice*l_discount), count(*) FROM lineitem l \
                     JOIN part p ON l.l_partkey = p.p_partkey \
                     WHERE l_shipdate >= {a} AND l_shipdate < {b}"
                )
            }
            Q17SmallQuantity => unreachable!("Q17 is built via DagBuilder"),
            Q19Discounted => {
                let q1 = rng.gen_range(5..15);
                let q2 = q1 + 10;
                format!(
                    "SELECT sum(l_extendedprice), count(*) FROM lineitem l \
                     JOIN part p ON l.l_partkey = p.p_partkey \
                     WHERE l_quantity >= {q1} AND l_quantity <= {q2} \
                     AND (l_discount BETWEEN 0.01 AND 0.04 OR l_discount BETWEEN 0.06 AND 0.09)"
                )
            }
            TopOrders => {
                let price = rng.gen_range(50_000..300_000);
                format!(
                    "SELECT o_orderkey, o_totalprice FROM orders \
                     WHERE o_totalprice > {price} ORDER BY o_totalprice DESC LIMIT 100000"
                )
            }
            FilterLineitem => {
                let qty = rng.gen_range(40..49);
                format!(
                    "SELECT l_orderkey, l_partkey, l_extendedprice FROM lineitem \
                     WHERE l_quantity > {qty}"
                )
            }
            SortLineitem => {
                let (a, _) = date(rng, 2000);
                format!(
                    "SELECT l_orderkey, l_shipdate, l_extendedprice FROM lineitem \
                     WHERE l_shipdate >= {a} ORDER BY l_shipdate"
                )
            }
            DsTwoKeyGroup => {
                let (a, b) = date(rng, 730);
                format!(
                    "SELECT l_partkey, l_suppkey, sum(l_quantity) FROM lineitem \
                     WHERE l_shipdate >= {a} AND l_shipdate < {b} \
                     GROUP BY l_partkey, l_suppkey"
                )
            }
            DsOrderPriority => {
                let (a, b) = date(rng, 90);
                format!(
                    "SELECT o_orderpriority, count(*) FROM orders \
                     WHERE o_orderdate >= {a} AND o_orderdate < {b} \
                     GROUP BY o_orderpriority"
                )
            }
            DsTopCustomers => {
                let price = rng.gen_range(10_000..100_000);
                format!(
                    "SELECT c_custkey, sum(o_totalprice) FROM customer c \
                     JOIN orders o ON c.c_custkey = o.o_custkey AND o.o_totalprice > {price} \
                     GROUP BY c_custkey ORDER BY c_custkey LIMIT 50000"
                )
            }
            DsPartSizes => {
                let size = rng.gen_range(10..40);
                format!("SELECT p_size, count(*) FROM part WHERE p_size <= {size} GROUP BY p_size")
            }
            DsSupplierBalance => {
                let lo = rng.gen_range(-500..4000);
                let hi = lo + 3000;
                format!(
                    "SELECT s_suppkey, s_acctbal FROM supplier \
                     WHERE s_acctbal BETWEEN {lo} AND {hi} ORDER BY s_acctbal DESC"
                )
            }
            DsBrandInventory => {
                let size = rng.gen_range(20..45);
                format!(
                    "SELECT p_brand, sum(ps_availqty) FROM part p \
                     JOIN partsupp ps ON p.p_partkey = ps.ps_partkey \
                     WHERE p_size < {size} GROUP BY p_brand"
                )
            }
            DsFlagModeMatrix => "SELECT l_returnflag, l_shipmode, count(*), sum(l_quantity) \
                 FROM lineitem GROUP BY l_returnflag, l_shipmode"
                .to_string(),
        }
    }
}

/// TPC-H Q17 as Hive 0.10 compiles it: the correlated `avg(l_quantity)`
/// subquery becomes a group-by job, joined back against the filtered
/// lineitem × part stream, then globally aggregated — 4 jobs, the paper's
/// QB (Fig. 1).
fn q17_dag(db: &Database, rng: &mut StdRng) -> QueryDag {
    let part = db.table("part").expect("part table");
    let brand_code = rng.gen_range(0..25) as f64;
    let container_code = part.dict_code("p_container", "MED BOX") as f64;
    let mut b = DagBuilder::new();
    // J0: per-part average quantity over all of lineitem.
    let j0 = b.groupby(
        DagBuilder::table("lineitem", Predicate::True, ["l_partkey", "l_quantity"]),
        ["l_partkey"],
        1,
    );
    // J1: lineitem ⋈ part restricted to one brand/container.
    let j1 = b.join(
        DagBuilder::table(
            "lineitem",
            Predicate::True,
            ["l_partkey", "l_quantity", "l_extendedprice"],
        ),
        DagBuilder::table(
            "part",
            Predicate::cmp("p_brand", CmpOp::Eq, brand_code).and(Predicate::cmp(
                "p_container",
                CmpOp::Eq,
                container_code,
            )),
            ["p_partkey"],
        ),
        "l_partkey",
        "p_partkey",
    );
    // J2: join the filtered stream with the per-part averages.
    let j2 = b.join(DagBuilder::job(j1), DagBuilder::job(j0), "l_partkey", "l_partkey");
    // J3: global aggregate of the surviving revenue.
    b.groupby(DagBuilder::job(j2), Vec::<String>::new(), 1);
    b.build("q17_small_quantity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sapred_relation::gen::{generate, GenConfig};

    fn db() -> Database {
        generate(GenConfig::new(0.2).with_seed(12))
    }

    #[test]
    fn every_template_instantiates() {
        let db = db();
        let mut rng = StdRng::seed_from_u64(1);
        for t in Template::all() {
            let dag = t
                .instantiate(&db, &mut rng)
                .unwrap_or_else(|e| panic!("template {} failed: {e}", t.name()));
            assert!(!dag.is_empty(), "{}", t.name());
        }
    }

    #[test]
    fn twenty_templates() {
        assert_eq!(Template::all().len(), 20);
        let mut names: Vec<&str> = Template::all().iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20, "template names must be unique");
    }

    #[test]
    fn q14_has_two_jobs_like_the_paper() {
        let db = db();
        let mut rng = StdRng::seed_from_u64(2);
        let dag = Template::Q14Promo.instantiate(&db, &mut rng).unwrap();
        assert_eq!(dag.len(), 2, "QA/QC = AGG over a join: 2 jobs");
    }

    #[test]
    fn q17_has_four_jobs_like_the_paper() {
        let db = db();
        let mut rng = StdRng::seed_from_u64(3);
        let dag = Template::Q17SmallQuantity.instantiate(&db, &mut rng).unwrap();
        assert_eq!(dag.len(), 4, "QB = 4-job DAG");
        assert_eq!(dag.roots().len(), 2);
    }

    #[test]
    fn sql_templates_parse_across_many_seeds() {
        let db = db();
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            for t in Template::all() {
                if *t == Template::Q17SmallQuantity {
                    continue; // hand-built, no SQL form
                }
                let sql = t.sql(&db, &mut rng);
                sapred_query::parse(&sql)
                    .unwrap_or_else(|e| panic!("{} (seed {seed}): {e}\n{sql}", t.name()));
            }
        }
    }

    #[test]
    fn constants_vary_between_instantiations() {
        let db = db();
        let mut rng = StdRng::seed_from_u64(4);
        let a = Template::Q6ForecastRevenue.sql(&db, &mut rng);
        let b = Template::Q6ForecastRevenue.sql(&db, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn all_categories_represented() {
        use sapred_plan::dag::JobCategory::*;
        let db = db();
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for t in Template::all() {
            for j in t.instantiate(&db, &mut rng).unwrap().jobs() {
                seen.insert(j.category());
            }
        }
        assert!(seen.contains(&Extract) && seen.contains(&Groupby) && seen.contains(&Join));
    }
}
