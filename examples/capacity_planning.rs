//! Capacity planning with the prediction framework: a downstream use the
//! paper's introduction motivates (latency-sensitive analytics needs
//! predictable turnaround).
//!
//! ```text
//! cargo run --release --example capacity_planning [deadline_seconds]
//! ```
//!
//! Given a reporting query over 50 GB and a deadline (default 120 s), sweep
//! cluster sizes with the trained predictor — no simulation in the loop —
//! pick the smallest cluster whose *predicted* response meets the deadline,
//! then validate that choice against the full simulator.

use sapred::cluster::sched::Fifo;
use sapred::core::framework::{Framework, Predictor};
use sapred::core::Pipeline;
use sapred::workload::population::PopulationConfig;

fn main() {
    let deadline: f64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("deadline must be seconds"))
        .unwrap_or(120.0);

    let mut pipe = Pipeline::with_seed(31);
    println!("training the predictor (160 queries)...");
    let config = PopulationConfig {
        n_queries: 160,
        scales_gb: vec![1.0, 5.0, 10.0, 20.0, 50.0],
        scale_out_gb: vec![],
        seed: 31,
    };
    pipe.train(&config).expect("training succeeds");
    let models = pipe.training().expect("just trained").models.clone();
    let fw = *pipe.framework();

    let sql = "SELECT l_partkey, l_suppkey, sum(l_quantity), sum(l_extendedprice) \
               FROM lineitem WHERE l_shipdate >= '1993-01-01' \
               GROUP BY l_partkey, l_suppkey ORDER BY l_partkey";
    let db = pipe.database(50.0).clone();

    println!("\nquery:\n  {sql}\n50 GB input, deadline {deadline}s\n");
    println!("{:<24}{:<22}meets deadline", "cluster", "predicted response");
    let mut chosen: Option<(usize, Framework)> = None;
    for nodes in [3usize, 6, 9, 12, 18, 24] {
        let mut variant = fw;
        variant.cluster.nodes = nodes;
        // Retarget the predictor's wave model at this cluster size (task
        // models are cluster-size independent — that is the point of §4.2).
        let predictor = Predictor::new(models.clone(), variant);
        let semantics = variant.percolate_sql("planning", sql, &db).expect("valid query");
        let predicted = predictor.query_seconds(&semantics);
        let ok = predicted <= deadline;
        println!(
            "{:<24}{:<22}{}",
            format!("{nodes} nodes x 12"),
            format!("{predicted:.1}s"),
            if ok { "yes" } else { "no" }
        );
        if ok && chosen.is_none() {
            chosen = Some((nodes, variant));
        }
    }

    match chosen {
        Some((nodes, variant)) => {
            println!("\nsmallest predicted-feasible cluster: {nodes} nodes. validating...");
            // Re-point the pipeline at the chosen cluster and simulate.
            *pipe.framework_mut() = variant;
            let semantics = pipe.percolate_sql("planning", sql, 50.0).expect("valid");
            let q = pipe.sim_query("planning", 0.0, &semantics, 50.0);
            let r = pipe.simulate(Fifo, std::slice::from_ref(&q));
            let measured = r.queries[0].response();
            println!(
                "simulated response on {nodes} nodes: {measured:.1}s ({} the {deadline}s deadline)",
                if measured <= deadline * 1.1 { "meets" } else { "MISSES" }
            );
        }
        None => println!("\nno cluster size in the sweep meets the deadline"),
    }
}
