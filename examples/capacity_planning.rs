//! Capacity planning with the prediction framework: a downstream use the
//! paper's introduction motivates (latency-sensitive analytics needs
//! predictable turnaround).
//!
//! ```text
//! cargo run --release --example capacity_planning [deadline_seconds]
//! ```
//!
//! Given a reporting query over 50 GB and a deadline (default 120 s), sweep
//! cluster sizes with the trained predictor — no simulation in the loop —
//! pick the smallest cluster whose *predicted* response meets the deadline,
//! then validate that choice against the full simulator.

use sapred::core::framework::{Framework, Predictor};
use sapred::core::training::{fit_models, run_population, split_train_test};
use sapred::plan::ground_truth::execute_dag;
use sapred_cluster::build::build_sim_query;
use sapred_cluster::sched::Fifo;
use sapred_cluster::sim::Simulator;
use sapred_workload::pool::DbPool;
use sapred_workload::population::{generate_population, PopulationConfig};

fn main() {
    let deadline: f64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("deadline must be seconds"))
        .unwrap_or(120.0);

    let fw = Framework::new();
    println!("training the predictor (160 queries)...");
    let config = PopulationConfig {
        n_queries: 160,
        scales_gb: vec![1.0, 5.0, 10.0, 20.0, 50.0],
        scale_out_gb: vec![],
        seed: 31,
    };
    let mut pool = DbPool::new(31);
    let pop = generate_population(&config, &mut pool);
    let runs = run_population(&pop, &mut pool, &fw);
    let (train, _) = split_train_test(&runs);

    let sql = "SELECT l_partkey, l_suppkey, sum(l_quantity), sum(l_extendedprice) \
               FROM lineitem WHERE l_shipdate >= '1993-01-01' \
               GROUP BY l_partkey, l_suppkey ORDER BY l_partkey";
    let db = pool.get(50.0).clone();

    println!("\nquery:\n  {sql}\n50 GB input, deadline {deadline}s\n");
    println!("{:<24}{:<22}meets deadline", "cluster", "predicted response");
    let mut chosen: Option<(usize, Framework, Predictor)> = None;
    for nodes in [3usize, 6, 9, 12, 18, 24] {
        let mut variant = fw;
        variant.cluster.nodes = nodes;
        // Retarget the predictor's wave model at this cluster size (task
        // models are cluster-size independent — that is the point of §4.2).
        let predictor = Predictor::new(fit_models(&train, &fw), variant);
        let semantics = variant.percolate_sql("planning", sql, &db).expect("valid query");
        let predicted = predictor.query_seconds(&semantics);
        let ok = predicted <= deadline;
        println!(
            "{:<24}{:<22}{}",
            format!("{nodes} nodes x 12"),
            format!("{predicted:.1}s"),
            if ok { "yes" } else { "no" }
        );
        if ok && chosen.is_none() {
            chosen = Some((nodes, variant, predictor));
        }
    }

    match chosen {
        Some((nodes, variant, _)) => {
            println!("\nsmallest predicted-feasible cluster: {nodes} nodes. validating...");
            let semantics = variant.percolate_sql("planning", sql, &db).expect("valid");
            let actuals = execute_dag(&semantics.dag, &db, variant.est_config.block_size);
            let q =
                build_sim_query("planning", 0.0, &semantics.dag, &actuals, &[], &variant.cluster);
            let r = Simulator::new(variant.cluster, variant.cost, Fifo).run(&[q]);
            let measured = r.queries[0].response();
            println!(
                "simulated response on {nodes} nodes: {measured:.1}s ({} the {deadline}s deadline)",
                if measured <= deadline * 1.1 { "meets" } else { "MISSES" }
            );
        }
        None => println!("\nno cluster size in the sweep meets the deadline"),
    }
}
