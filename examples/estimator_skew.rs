//! Estimator-vs-skew study: how the three cardinality estimators degrade
//! as join-key skew rises, and how that error reaches the scheduler.
//!
//! ```text
//! cargo run --release --example estimator_skew
//! ```
//!
//! For each Zipf exponent the example generates a database, percolates a
//! join-heavy workload through the histogram, sampling, and
//! path-statistics estimators, and compares the estimated join output
//! tuples against exact ground-truth execution (mean absolute relative
//! error, MARE). It then provisions and predicts the same workload from
//! each estimator's numbers ([`Framework::sim_query_estimated`]) and runs
//! SWRD on a contended single-node cluster: a misjudged join output means
//! mis-provisioned downstream parallelism and a measurably different
//! schedule.

use sapred::cluster::sched::Swrd;
use sapred::cluster::{SimQuery, Simulator};
use sapred::core::Framework;
use sapred::plan::ground_truth::execute_dag;
use sapred::relation::gen::{generate, Database, GenConfig, KeyDist};
use sapred::selectivity::EstimatorKind;

/// The join-heavy workload. The first query is the skew-critical one:
/// lineitem ⋈ partsupp on `partkey`, where *both* sides follow the Zipf
/// key distribution, so equi-width histograms smear the hot keys; its
/// group-by tail is provisioned from the estimated join output.
const QUERIES: &[&str] = &[
    "SELECT l_partkey, sum(l_quantity) FROM lineitem l \
     JOIN partsupp ps ON l.l_partkey = ps.ps_partkey GROUP BY l_partkey",
    "SELECT l_quantity, p_size FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey \
     WHERE p_size < 10 AND l_shipdate < 1200",
    "SELECT o_totalprice, p_size FROM lineitem l \
     JOIN orders o ON l.l_orderkey = o.o_orderkey \
     JOIN part p ON l.l_partkey = p.p_partkey \
     WHERE o_orderdate < 1500",
];

fn db_for(skew: f64) -> Database {
    let dist = if skew > 0.0 { KeyDist::Zipf(skew) } else { KeyDist::Uniform };
    generate(GenConfig::new(0.05).with_seed(0xfeed).with_key_dist(dist))
}

/// Mean absolute relative error of estimated vs. actual output tuples over
/// every job of every query, plus the SimQueries provisioned and predicted
/// from this estimator's numbers.
fn evaluate(kind: EstimatorKind, db: &Database) -> (f64, Vec<SimQuery>) {
    let mut fw = Framework::new();
    fw.est_config.kind = kind;
    let mut errs = Vec::new();
    let mut sims = Vec::new();
    for (qi, sql) in QUERIES.iter().enumerate() {
        let name = format!("q{qi}");
        let semantics = fw.percolate_sql(&name, sql, db).expect("valid query");
        let actuals = execute_dag(&semantics.dag, db, fw.est_config.block_size);
        for (est, act) in semantics.estimates.iter().zip(&actuals) {
            errs.push((est.tuples_out - act.tuples_out).abs() / act.tuples_out.max(1.0));
        }
        sims.push(fw.sim_query_estimated(name, qi as f64 * 0.37, &semantics, &actuals));
    }
    (errs.iter().sum::<f64>() / errs.len() as f64, sims)
}

fn main() {
    println!("estimator MARE on join output tuples, by Zipf skew:\n");
    println!("{:>6} {:>12} {:>12} {:>12}", "skew", "histogram", "sample", "catalog");
    for &skew in &[0.0, 0.6, 1.1, 1.4] {
        let db = db_for(skew);
        let mut row = format!("{skew:>6}");
        let mut sims = Vec::new();
        for kind in EstimatorKind::ALL {
            let (mare, sim) = evaluate(kind, &db);
            row.push_str(&format!(" {mare:>12.4}"));
            sims.push((kind, sim));
        }
        println!("{row}");

        // Same data, same ground-truth bytes, same noise seed — only the
        // estimator-provisioned task structure and predictions differ.
        // Replicate the queries into a contended burst on one node so
        // provisioning and ordering decisions show up in response time.
        let fw = Framework::new();
        let mut responses = Vec::new();
        for (kind, queries) in &sims {
            let burst: Vec<SimQuery> = (0..6)
                .flat_map(|rep| {
                    queries.iter().enumerate().map(move |(qi, q)| SimQuery {
                        name: format!("{}r{rep}", q.name),
                        arrival: (rep * queries.len() + qi) as f64 * 0.37,
                        jobs: q.jobs.clone(),
                    })
                })
                .collect();
            let mut cluster = fw.cluster;
            cluster.nodes = 1;
            cluster.seed = 1234;
            let report = Simulator::new(cluster, fw.cost, Swrd).run(&burst);
            responses.push(format!("{kind}: {:.2}s", report.mean_response()));
        }
        println!("       SWRD mean response — {}\n", responses.join(", "));
    }
}
