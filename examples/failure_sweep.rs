//! Failure sweep: run the template workload under the paper's SWRD
//! scheduler while sweeping the injected task-failure probability, and
//! report how makespan, response times and recovery behave.
//!
//! ```text
//! cargo run --release --example failure_sweep [--fail-prob p1,p2,...]
//!     [--crash node@t[:down_for]] [--speculate] [--seed n]
//! ```
//!
//! Knobs:
//!
//! * `--fail-prob` — comma-separated per-attempt failure probabilities to
//!   sweep (default `0,0.02,0.05,0.1,0.2`).
//! * `--crash node@t[:down_for]` — additionally crash `node` at time `t`;
//!   with `:down_for` it recovers after that many seconds, without it the
//!   crash is permanent. May be repeated.
//! * `--speculate` — enable speculative execution of stragglers.
//! * `--seed` — fault-plan RNG seed (default 7).
//!
//! The paper's model assumes a failure-free cluster; this example shows
//! what the same workload costs once that assumption is dropped.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sapred::cluster::{build_sim_query, FaultPlan, NodeCrash, SimQuery, Swrd};
use sapred::core::Pipeline;
use sapred::plan::ground_truth::execute_dag;
use sapred_workload::templates::Template;

fn workload(pipe: &mut Pipeline) -> Vec<SimQuery> {
    let block_size = pipe.framework().est_config.block_size;
    let cluster = pipe.framework().cluster;
    let db = pipe.database(2.0);
    let mut rng = StdRng::seed_from_u64(5);
    let mut out = Vec::new();
    for (i, t) in Template::all().iter().enumerate().take(12) {
        let dag = t.instantiate(db, &mut rng).unwrap();
        let actuals = execute_dag(&dag, db, block_size);
        out.push(build_sim_query(
            format!("{}#{i}", t.name()),
            i as f64 * 1.5,
            &dag,
            &actuals,
            &[],
            &cluster,
        ));
    }
    out
}

fn parse_crash(spec: &str) -> NodeCrash {
    let (node, rest) = spec.split_once('@').expect("--crash wants node@t[:down_for]");
    let node: usize = node.parse().expect("crash node must be an index");
    match rest.split_once(':') {
        Some((at, down)) => NodeCrash::transient(
            node,
            at.parse().expect("crash time must be a number"),
            down.parse().expect("down_for must be a number"),
        ),
        None => NodeCrash::permanent(node, rest.parse().expect("crash time must be a number")),
    }
}

fn main() {
    let mut probs = vec![0.0, 0.02, 0.05, 0.1, 0.2];
    let mut crashes = Vec::new();
    let mut speculative = false;
    let mut seed = 7u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fail-prob" => {
                let list = args.next().expect("--fail-prob wants a comma-separated list");
                probs = list
                    .split(',')
                    .map(|p| p.parse().expect("failure probability must be a number"))
                    .collect();
            }
            "--crash" => crashes.push(parse_crash(&args.next().expect("--crash wants a spec"))),
            "--speculate" => speculative = true,
            "--seed" => seed = args.next().expect("--seed wants a number").parse().unwrap(),
            other => panic!("unknown argument `{other}`"),
        }
    }

    let mut pipe = Pipeline::with_seed(5);
    let queries = workload(&mut pipe);
    let cluster = pipe.framework().cluster;
    println!(
        "failure sweep: {} template queries, SWRD, {} nodes x {} containers{}{}",
        queries.len(),
        cluster.nodes,
        cluster.containers_per_node,
        if crashes.is_empty() { "" } else { ", with node crashes" },
        if speculative { ", speculation on" } else { "" },
    );
    println!(
        "{:>9}  {:>9}  {:>9}  {:>8} {:>8} {:>7} {:>6} {:>9}",
        "fail_prob", "makespan", "avg_resp", "failures", "retries", "killed", "lost", "abandoned"
    );
    for &p in &probs {
        let plan = FaultPlan {
            task_fail_prob: p,
            node_crashes: crashes.clone(),
            speculative,
            seed,
            ..FaultPlan::default()
        };
        let report = pipe.simulate_with_faults(Swrd, plan, &queries);
        let done: Vec<_> = report.queries.iter().filter(|q| !q.failed).collect();
        let avg_resp = done.iter().map(|q| q.response()).sum::<f64>() / done.len().max(1) as f64;
        let fr = &report.faults;
        println!(
            "{:>9.3}  {:>9.1}  {:>9.1}  {:>8} {:>8} {:>7} {:>6} {:>9}",
            p,
            report.makespan,
            avg_resp,
            fr.task_failures,
            fr.retries_scheduled,
            fr.tasks_killed,
            fr.lost_maps,
            fr.failed_queries.len(),
        );
        if fr.recovery_count > 0 {
            println!(
                "{:>9}  mean recovery {:.1}s, worst {:.1}s over {} recoveries",
                "",
                fr.mean_recovery_latency(),
                fr.recovery_latency_max,
                fr.recovery_count
            );
        }
    }
}
