//! The paper's motivation experiment (Figs. 1–2) as a runnable demo.
//!
//! ```text
//! cargo run --release --example motivation
//! ```
//!
//! QA and QC are TPC-H Q14 instances (2-job DAGs, 10 GB input); QB is a
//! TPC-H Q17 instance (4-job DAG, 100 GB input). Submitted back-to-back
//! under the Hadoop Capacity Scheduler, QB's root jobs — already queued
//! when QA-J2/QC-J2 get submitted — capture the containers and stall the
//! small queries several times beyond their alone runtimes. SWRD, fed by
//! the percolated predictions, restores them.

use sapred::core::experiments::motivation::motivation;
use sapred::core::Pipeline;
use sapred::workload::population::PopulationConfig;

fn main() {
    let mut pipe = Pipeline::with_seed(12);
    println!("training a predictor for the SWRD column (150 queries)...");
    let config = PopulationConfig {
        n_queries: 150,
        scales_gb: vec![1.0, 5.0, 10.0, 20.0],
        scale_out_gb: vec![],
        seed: 12,
    };
    pipe.train(&config).expect("training succeeds");
    let fw = *pipe.framework();
    let predictor = pipe.predictor().expect("just trained");

    // The experiment's databases use their own seed, distinct from the
    // training pool's, so a second pipeline supplies them.
    let mut experiment = Pipeline::with_seed(2018);
    let report = motivation(experiment.pool_mut(), &fw, Some(predictor), 10.0, 100.0);
    println!("\n{report}");
    println!(
        "small-query (QA/QC) slowdown under HCS: {:.2}x  (paper reports ~3x)",
        report.small_query_slowdown()
    );
    if let (Some(swrd_a), Some(swrd_c)) = (report.rows[0].swrd, report.rows[2].swrd) {
        println!(
            "under SWRD the same queries finish in {:.1}s / {:.1}s (alone: {:.1}s / {:.1}s)",
            swrd_a, swrd_c, report.rows[0].alone, report.rows[2].alone
        );
    }
}
