//! Overload sweep: run the template workload under tightened arrival gaps
//! with admission control switched on, and report how each scheduler and
//! shed policy trades shed rate against deadline misses and tail latency.
//!
//! ```text
//! cargo run --release --example overload_sweep [--gaps g1,g2,...]
//!     [--queue-cap n] [--deadline s] [--expect-shed] [--expect-no-shed]
//! ```
//!
//! Knobs:
//!
//! * `--gaps` — comma-separated inter-arrival gaps (seconds) to sweep;
//!   smaller gap = higher arrival rate (default `6,3,1.5,0.5`).
//! * `--queue-cap` — admitted-query cap handed to the admission controller
//!   (default 3).
//! * `--deadline` — per-query deadline in seconds (default 90).
//! * `--expect-shed` / `--expect-no-shed` — CI assertion modes: exit
//!   nonzero unless the sweep shed at least one query (resp. shed nothing
//!   and missed no deadline).
//!
//! The interesting comparison is the two shed policies at equal budget:
//! `reject_newest` drops whoever arrives late, while `largest_wrd` uses the
//! semantics-predicted work demand to evict the heaviest waiting query, so
//! the queries it keeps tend to fit their deadlines.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sapred::cluster::{
    build_sim_query, AdmissionConfig, ClusterConfig, CostModel, Fifo, FrozenOracle, JobPrediction,
    Scheduler, ShedPolicy, SimQuery, SimReport, Simulator, Swrd,
};
use sapred::core::Pipeline;
use sapred::obs::NullSink;
use sapred::plan::ground_truth::execute_dag;
use sapred_workload::templates::Template;

/// A deliberately contended cluster: admitted queries actually queue, so
/// the shed policies' choice of victim matters. (On the pipeline's default
/// 100+-container cluster every admitted query starts instantly and the two
/// policies collapse into tail-drop.)
fn contended_cluster() -> ClusterConfig {
    ClusterConfig { nodes: 2, containers_per_node: 3, ..Default::default() }
}

/// The template workload with unit arrival spacing; the sweep rescales the
/// arrivals per gap. Predictions are the cost model's mean task durations —
/// an oracle that knows the workload's semantics, which is exactly what the
/// `largest_wrd` shed policy consumes.
fn base_workload(pipe: &mut Pipeline) -> Vec<SimQuery> {
    let block_size = pipe.framework().est_config.block_size;
    let cluster = contended_cluster();
    let cost = *pipe.cost_model();
    let db = pipe.database(8.0);
    let mut rng = StdRng::seed_from_u64(5);
    let mut out = Vec::new();
    for (i, t) in Template::all().iter().enumerate().take(12) {
        let dag = t.instantiate(db, &mut rng).unwrap();
        let actuals = execute_dag(&dag, db, block_size);
        let mut q =
            build_sim_query(format!("{}#{i}", t.name()), i as f64, &dag, &actuals, &[], &cluster);
        for job in &mut q.jobs {
            job.prediction = JobPrediction {
                map_task_time: job.maps.first().map(|t| cost.mean_duration(t)).unwrap_or(0.0),
                reduce_task_time: job.reduces.first().map(|t| cost.mean_duration(t)).unwrap_or(0.0),
            };
        }
        out.push(q);
    }
    out
}

fn with_gap(base: &[SimQuery], gap: f64) -> Vec<SimQuery> {
    base.iter()
        .enumerate()
        .map(|(i, q)| {
            let mut q = q.clone();
            q.arrival = i as f64 * gap;
            q
        })
        .collect()
}

fn p99(report: &SimReport) -> f64 {
    let mut resp: Vec<f64> =
        report.queries.iter().filter(|q| !q.failed).map(|q| q.response()).collect();
    if resp.is_empty() {
        return f64::NAN;
    }
    resp.sort_by(|a, b| a.partial_cmp(b).unwrap());
    resp[((resp.len() as f64 * 0.99).ceil() as usize).max(1) - 1]
}

fn run<S: Scheduler>(
    cost: CostModel,
    sched: S,
    queries: &[SimQuery],
    admission: AdmissionConfig,
) -> SimReport {
    admission.validate().expect("sweep admission config is valid");
    Simulator::new(contended_cluster(), cost, sched).with_admission(admission).run_with_oracle(
        queries,
        &mut NullSink,
        &mut FrozenOracle,
    )
}

fn main() {
    let mut gaps = vec![6.0, 3.0, 1.5, 0.5];
    let mut queue_cap = 3usize;
    let mut deadline = 90.0;
    let mut expect_shed = false;
    let mut expect_no_shed = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--gaps" => {
                let list = args.next().expect("--gaps wants a comma-separated list");
                gaps = list.split(',').map(|g| g.parse().expect("gap must be a number")).collect();
            }
            "--queue-cap" => {
                queue_cap = args.next().expect("--queue-cap wants a number").parse().unwrap();
            }
            "--deadline" => {
                deadline = args.next().expect("--deadline wants a number").parse().unwrap();
            }
            "--expect-shed" => expect_shed = true,
            "--expect-no-shed" => expect_no_shed = true,
            other => panic!("unknown argument `{other}`"),
        }
    }

    let mut pipe = Pipeline::with_seed(5);
    let base = base_workload(&mut pipe);
    if std::env::var("OVERLOAD_DEBUG").is_ok() {
        for q in &base {
            let maps: Vec<usize> = q.jobs.iter().map(|j| j.maps.len()).collect();
            let demand: f64 = q
                .jobs
                .iter()
                .map(|j| {
                    j.maps.len() as f64 * j.prediction.map_task_time
                        + j.reduces.len() as f64 * j.prediction.reduce_task_time
                })
                .sum();
            eprintln!("{}: jobs {} maps {:?} demand {:.1}", q.name, q.jobs.len(), maps, demand);
        }
    }
    let cost = *pipe.cost_model();
    let n = base.len();
    let cluster = contended_cluster();
    println!(
        "overload sweep: {n} template queries, {} nodes x {} containers, \
         queue cap {queue_cap}, deadline {deadline}s",
        cluster.nodes, cluster.containers_per_node,
    );
    println!(
        "{:>6}  {:>5}  {:>14}  {:>9} {:>10} {:>9}",
        "gap", "sched", "shed_policy", "shed_rate", "miss_rate", "p99_resp"
    );

    let policies = [ShedPolicy::RejectNewest, ShedPolicy::ShedLargestWrd];
    let mut total_shed = 0usize;
    let mut total_missed = 0usize;
    // (gap, reject_newest miss rate, largest_wrd miss rate) under SWRD.
    let mut swrd_miss = Vec::new();
    for &gap in &gaps {
        let queries = with_gap(&base, gap);
        let mut rates = [0.0f64; 2];
        for (pi, &policy) in policies.iter().enumerate() {
            let admission = AdmissionConfig {
                queue_cap,
                deadline,
                shed_policy: policy,
                ..AdmissionConfig::default()
            };
            for sched_name in ["FIFO", "SWRD"] {
                let report = match sched_name {
                    "FIFO" => run(cost, Fifo, &queries, admission),
                    _ => run(cost, Swrd, &queries, admission),
                };
                let a = &report.admission;
                if std::env::var("OVERLOAD_DEBUG").is_ok() {
                    eprintln!(
                        "{sched_name}/{}: rejected {:?} missed {:?} shed {} resub {}",
                        policy.label(),
                        a.queries_rejected,
                        a.deadline_misses,
                        a.queries_shed,
                        a.resubmissions,
                    );
                }
                total_shed += a.queries_shed;
                total_missed += a.deadline_misses.len();
                let miss_rate = a.deadline_misses.len() as f64 / n as f64;
                if sched_name == "SWRD" {
                    rates[pi] = miss_rate;
                }
                println!(
                    "{:>6.2}  {:>5}  {:>14}  {:>9.3} {:>10.3} {:>9.1}",
                    gap,
                    sched_name,
                    policy.label(),
                    a.queries_shed as f64 / n as f64,
                    miss_rate,
                    p99(&report),
                );
            }
        }
        swrd_miss.push((gap, rates[0], rates[1]));
    }

    for (gap, reject, wrd) in &swrd_miss {
        if reject + wrd > 0.0 {
            println!(
                "gap {gap:.2}s under SWRD: largest_wrd misses {:.3} vs reject_newest {:.3} \
                 at equal shed budget",
                wrd, reject
            );
        }
    }

    if expect_shed && total_shed == 0 {
        eprintln!("FAIL: expected the sweep to shed queries, but nothing was shed");
        std::process::exit(1);
    }
    if expect_no_shed && (total_shed > 0 || total_missed > 0) {
        eprintln!(
            "FAIL: expected an idle sweep, but saw {total_shed} sheds and \
             {total_missed} deadline misses"
        );
        std::process::exit(1);
    }
    if expect_shed {
        println!("OK: sweep shed {total_shed} queries, {total_missed} deadline misses");
    }
    if expect_no_shed {
        println!("OK: idle sweep shed nothing and missed no deadlines");
    }
}
