//! The paper's other front end: Pig Latin-style dataflow scripts (§1 notes
//! that >40% of Yahoo!'s production Hadoop jobs are Pig programs). The same
//! percolation, estimation and prediction stack serves both front ends.
//!
//! ```text
//! cargo run --release --example pig_latin
//! ```

use sapred::core::Pipeline;
use sapred::plan::ground_truth::execute_dag;
use sapred::query::pig::PigScript;
use sapred::query::AggFunc;
use sapred::relation::expr::{CmpOp, Predicate};

fn main() {
    let mut pipe = Pipeline::with_seed(7);

    // Pig Latin:
    //   li = LOAD 'lineitem';
    //   f  = FILTER li BY l_quantity > 45;
    //   j  = JOIN f BY l_partkey, part BY p_partkey;
    //   g  = GROUP j BY p_brand;
    //   r  = FOREACH g GENERATE group, SUM(l_extendedprice), COUNT(*);
    //   o  = ORDER r BY p_brand;  STORE o;
    let script = PigScript::load("lineitem")
        .filter(Predicate::cmp("l_quantity", CmpOp::Gt, 45.0))
        .join("part", "l_partkey", "p_partkey")
        .group_by(["p_brand"])
        .aggregate(AggFunc::Sum, "l_extendedprice")
        .count_star()
        .order_by(["p_brand"]);

    println!("Pig dataflow over a 10 GB instance:\n");
    let semantics = pipe.percolate_pig("pig_demo", &script, 10.0).expect("valid script");
    let block_size = pipe.framework().est_config.block_size;
    let actuals = execute_dag(&semantics.dag, pipe.database(10.0), block_size);
    for (job, (est, act)) in
        semantics.dag.jobs().iter().zip(semantics.estimates.iter().zip(&actuals))
    {
        println!(
            "  J{} {:<8} D_in {:>7.2} GB | IS est {:.3} act {:.3} | tuples out est {:>8.0} act {:>8.0}",
            job.id,
            job.category().to_string(),
            est.d_in / 1e9,
            est.is,
            act.is_ratio(),
            est.tuples_out,
            act.tuples_out,
        );
    }
    println!(
        "\nThe same query through SQL produces the same DAG shape — the \
         prediction framework is front-end agnostic."
    );
}
