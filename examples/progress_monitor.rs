//! Progress/ETA monitoring for a running query — the user-facing side of
//! the paper's *dynamic* WRD (Eq. 10's remaining task counts), in the
//! spirit of the ParaTimer progress indicator the paper cites.
//!
//! ```text
//! cargo run --release --example progress_monitor
//! ```
//!
//! Trains the models, compiles a three-job query over 20 GB, then replays
//! its execution job phase by job phase, printing the percent-done and ETA
//! the framework would report at each point, next to the simulator's
//! actual remaining time.

use sapred::core::framework::{Framework, Predictor};
use sapred::core::progress::{JobProgress, ProgressEstimator};
use sapred::core::training::{fit_models, run_population, split_train_test};
use sapred::plan::ground_truth::execute_dag;
use sapred_cluster::build::build_sim_query;
use sapred_cluster::sched::Fifo;
use sapred_cluster::sim::Simulator;
use sapred_workload::pool::DbPool;
use sapred_workload::population::{generate_population, PopulationConfig};

fn main() {
    let fw = Framework::new();
    println!("training the predictor (150 queries)...");
    let config = PopulationConfig {
        n_queries: 150,
        scales_gb: vec![1.0, 5.0, 10.0, 20.0],
        scale_out_gb: vec![],
        seed: 43,
    };
    let mut pool = DbPool::new(43);
    let pop = generate_population(&config, &mut pool);
    let runs = run_population(&pop, &mut pool, &fw);
    let (train, _) = split_train_test(&runs);
    let predictor = Predictor::new(fit_models(&train, &fw), fw);

    let sql = "SELECT l_partkey, sum(l_extendedprice) FROM lineitem l \
               JOIN part p ON l.l_partkey = p.p_partkey \
               WHERE l_shipdate < '1996-01-01' \
               GROUP BY l_partkey ORDER BY l_partkey";
    println!("\nquery (20 GB):\n  {sql}\n");
    let db = pool.get(20.0).clone();
    let semantics = fw.percolate_sql("monitored", sql, &db).expect("valid query");
    let estimator = ProgressEstimator::new(&predictor, &semantics);

    // Run the query once to get the real per-job timeline.
    let actuals = execute_dag(&semantics.dag, &db, fw.est_config.block_size);
    let sim_q = build_sim_query("monitored", 0.0, &semantics.dag, &actuals, &[], &fw.cluster);
    let report = Simulator::new(fw.cluster, fw.cost, Fifo).run(std::slice::from_ref(&sim_q));
    let finish = report.queries[0].finish;
    let mut job_stats = report.jobs.clone();
    job_stats.sort_by(|a, b| a.finish.total_cmp(&b.finish));

    println!(
        "{:<26}{:>10}{:>12}{:>16}",
        "checkpoint", "done", "ETA (est)", "actual remaining"
    );
    let mut progress = vec![JobProgress::default(); semantics.dag.len()];
    let frac = estimator.fraction_done(&progress);
    println!(
        "{:<26}{:>9.0}%{:>11.1}s{:>15.1}s",
        "submitted",
        100.0 * frac,
        estimator.remaining_seconds(&progress),
        finish
    );
    for stat in &job_stats {
        // Mark this job complete.
        progress[stat.job] = JobProgress {
            maps_done: usize::MAX / 2, // saturating_sub clamps to zero remaining
            reduces_done: usize::MAX / 2,
        };
        let frac = estimator.fraction_done(&progress);
        println!(
            "{:<26}{:>9.0}%{:>11.1}s{:>15.1}s",
            format!("J{} ({}) finished", stat.job, stat.category),
            100.0 * frac,
            estimator.remaining_seconds(&progress),
            finish - stat.finish
        );
    }
}
