//! Progress/ETA monitoring for a running query — the user-facing side of
//! the paper's *dynamic* WRD (Eq. 10's remaining task counts), in the
//! spirit of the ParaTimer progress indicator the paper cites.
//!
//! ```text
//! cargo run --release --example progress_monitor
//! ```
//!
//! Trains the models, compiles a three-job query over 20 GB, then replays
//! its execution job phase by job phase, printing the percent-done and ETA
//! the framework would report at each point, next to the simulator's
//! actual remaining time. The run is also traced: every simulator event plus
//! one ETA snapshot per checkpoint goes to `progress_events.jsonl`, and a
//! drift tracker summarizes how far the predictions were off.

use sapred::cluster::sched::Fifo;
use sapred::core::progress::{JobProgress, ProgressEstimator};
use sapred::core::telemetry::record_sim_outcomes;
use sapred::core::Pipeline;
use sapred::obs::{DriftTracker, EventSink, JsonlSink, Quantity, Tee};
use sapred::workload::population::PopulationConfig;

fn main() {
    let mut pipe = Pipeline::with_seed(43);
    println!("training the predictor (150 queries)...");
    let config = PopulationConfig {
        n_queries: 150,
        scales_gb: vec![1.0, 5.0, 10.0, 20.0],
        scale_out_gb: vec![],
        seed: 43,
    };
    pipe.train(&config).expect("training succeeds");

    let sql = "SELECT l_partkey, sum(l_extendedprice) FROM lineitem l \
               JOIN part p ON l.l_partkey = p.p_partkey \
               WHERE l_shipdate < '1996-01-01' \
               GROUP BY l_partkey ORDER BY l_partkey";
    println!("\nquery (20 GB):\n  {sql}\n");
    let semantics = pipe.percolate_sql("monitored", sql, 20.0).expect("valid query");
    // Materialize the sim query (mutable borrow) before wiring the
    // estimator to the predictor (immutable borrow for the rest of main).
    let sim_q = pipe.sim_query("monitored", 0.0, &semantics, 20.0);
    let predictor = pipe.predictor().expect("just trained");
    let estimator = ProgressEstimator::new(predictor, &semantics);

    // Run the query once to get the real per-job timeline, tracing every
    // event to JSONL and feeding a prediction-drift tracker.
    let events = std::fs::File::create("progress_events.jsonl").expect("create events file");
    let mut sink = Tee::new(JsonlSink::new(std::io::BufWriter::new(events)), DriftTracker::new());
    let report = pipe.simulate_traced(Fifo, std::slice::from_ref(&sim_q), &mut sink);
    let finish = report.queries[0].finish;
    let mut job_stats = report.jobs.clone();
    job_stats.sort_by(|a, b| a.finish.total_cmp(&b.finish));

    println!("{:<26}{:>10}{:>12}{:>16}", "checkpoint", "done", "ETA (est)", "actual remaining");
    let mut progress = vec![JobProgress::default(); semantics.dag.len()];
    let frac = estimator.fraction_done(&progress);
    println!(
        "{:<26}{:>9.0}%{:>11.1}s{:>15.1}s",
        "submitted",
        100.0 * frac,
        estimator.remaining_seconds(&progress),
        finish
    );
    for stat in &job_stats {
        // Mark this job complete.
        progress[stat.job.0] = JobProgress {
            maps_done: usize::MAX / 2, // saturating_sub clamps to zero remaining
            reduces_done: usize::MAX / 2,
        };
        sink.emit(&estimator.snapshot_event(0, stat.finish, &progress));
        let frac = estimator.fraction_done(&progress);
        println!(
            "{:<26}{:>9.0}%{:>11.1}s{:>15.1}s",
            format!("J{} ({}) finished", stat.job, stat.category),
            100.0 * frac,
            estimator.remaining_seconds(&progress),
            finish - stat.finish
        );
    }

    // Score the predictions against what the simulator measured.
    record_sim_outcomes(
        std::slice::from_ref(&sim_q),
        &report,
        &pipe.framework().cluster,
        &mut sink,
    );
    let Tee { a: jsonl, b: drift } = sink;
    let lines = jsonl.lines();
    jsonl.finish().expect("flush events file");

    let map = drift.aggregate(Quantity::MapTask);
    let job = drift.aggregate(Quantity::Job);
    let query = drift.aggregate(Quantity::Query);
    println!("\nprediction drift vs simulated truth:");
    println!(
        "  tasks : map MARE {:>5.1}%  reduce MARE {:>5.1}%",
        100.0 * map.mare(),
        100.0 * drift.aggregate(Quantity::ReduceTask).mare()
    );
    println!(
        "  jobs  : MARE {:>5.1}%  bias {:>+5.1}%  ({} jobs)",
        100.0 * job.mare(),
        100.0 * job.mean_signed(),
        job.n
    );
    println!(
        "  query : signed error {:>+5.1}% of the {:.1}s response",
        100.0 * query.mean_signed(),
        report.queries[0].response()
    );
    println!("\nwrote {lines} events to progress_events.jsonl");
}
