//! Quickstart: the full semantics-aware prediction pipeline on one query.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! A [`Pipeline`] walks the staged query lifecycle:
//!
//! 1. **percolate** a HiveQL query: parse → analyze → compile to a
//!    MapReduce DAG → estimate per-job selectivities (IS/FS) and sizes,
//! 2. compare the estimates against exact ground-truth execution,
//! 3. **train** the multivariate time models on a small population,
//! 4. **predict** the query's job times, WRD and response time, and
//! 5. **simulate** it on the 9×12-container cluster to check.

use sapred::cluster::sched::Fifo;
use sapred::core::Pipeline;
use sapred::plan::ground_truth::execute_dag;
use sapred::workload::population::PopulationConfig;

fn main() {
    // A 10 GB (nominal) TPC-H instance, generated on the fly.
    let mut pipe = Pipeline::with_seed(7);
    let sql = "SELECT l_partkey, sum(l_extendedprice*l_discount) \
               FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey \
               WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' \
               GROUP BY l_partkey";
    println!("query:\n  {sql}\n");

    // --- Stage 1: percolation — text -> DAG + estimates ------------------
    let semantics = pipe.percolate_sql("quickstart", sql, 10.0).expect("valid query");
    println!("compiled DAG ({} jobs):", semantics.dag.len());
    let block_size = pipe.framework().est_config.block_size;
    let actuals = execute_dag(&semantics.dag, pipe.database(10.0), block_size);
    for (job, (est, act)) in
        semantics.dag.jobs().iter().zip(semantics.estimates.iter().zip(&actuals))
    {
        println!(
            "  J{} {:<8} IS est {:.3} / actual {:.3}   FS est {:.4} / actual {:.4}   \
             D_in {:.2} GB, {} maps",
            job.id,
            job.category().to_string(),
            est.is,
            act.is_ratio(),
            est.fs,
            act.fs_ratio(),
            est.d_in / 1e9,
            est.n_maps,
        );
    }

    // --- Stage 2: train the multivariate models (paper section 4) --------
    println!("\ntraining the time models on a 120-query population...");
    let config = PopulationConfig {
        n_queries: 120,
        scales_gb: vec![1.0, 2.0, 5.0, 10.0],
        scale_out_gb: vec![],
        seed: 7,
    };
    pipe.train(&config).expect("training succeeds");

    // --- Stage 3: predict ------------------------------------------------
    let predictor = pipe.predictor().expect("just trained");
    println!("\npredictions:");
    for (job, est) in semantics.dag.jobs().iter().zip(&semantics.estimates) {
        let p = predictor.job_prediction(est, job.kind.has_reduce());
        println!(
            "  J{}: job time {:.1}s (Eq. 8) | map task {:.1}s, reduce task {:.1}s (Eq. 9)",
            job.id,
            predictor.job_seconds(est),
            p.map_task_time,
            p.reduce_task_time
        );
    }
    println!("  query WRD (Eq. 10): {:.0} container-seconds", predictor.query_wrd(&semantics));
    let predicted = predictor.query_seconds(&semantics);

    // --- Stage 4: verify on the simulated cluster ------------------------
    let sim_query = pipe.sim_query("quickstart", 0.0, &semantics, 10.0);
    let report = pipe.simulate(Fifo, std::slice::from_ref(&sim_query));
    let actual = report.queries[0].response();
    println!(
        "\npredicted response: {predicted:.1}s | simulated response: {actual:.1}s \
         | error {:.1}%",
        100.0 * (predicted - actual).abs() / actual
    );
}
