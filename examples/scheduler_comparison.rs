//! Mini Fig. 8: run the Facebook production mix (Table 2 composition)
//! under all four schedulers and compare average query response times.
//!
//! ```text
//! cargo run --release --example scheduler_comparison [mean_gap_seconds]
//! ```
//!
//! The optional argument sets the Poisson mean inter-arrival gap (default
//! 3 s: a contended cluster). Larger gaps reduce contention and shrink the
//! differences between policies — try 30 to see them converge.

use sapred::core::experiments::scheduling::run_schedulers;
use sapred::core::Pipeline;
use sapred::workload::mixes::facebook_mix;
use sapred::workload::population::PopulationConfig;

fn main() {
    let gap: f64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("gap must be a number of seconds"))
        .unwrap_or(3.0);

    let mut pipe = Pipeline::with_seed(5);
    println!("training the predictor (200 queries)...");
    let config = PopulationConfig {
        n_queries: 200,
        scales_gb: vec![1.0, 2.0, 5.0, 10.0, 20.0, 50.0],
        scale_out_gb: vec![],
        seed: 5,
    };
    pipe.train(&config).expect("training succeeds");

    println!("preparing the Facebook mix (100 queries, mean gap {gap}s)...");
    let prepared = pipe.prepare_mix(&facebook_mix(), gap, 1.0, 5);
    let report = run_schedulers(&prepared, pipe.framework(), true);
    println!("\n{report}");
}
