//! `sapred` — command-line driver for the semantics-aware query prediction
//! framework.
//!
//! ```text
//! sapred explain    --sql "SELECT ..." [--scale GB]        # DAG + estimates vs ground truth
//! sapred gather     --scale GB --out catalog.json          # export metastore statistics
//! sapred train      [--queries N] [--seed S]               # fit models, print Tables 3-5
//! sapred predict    --sql "SELECT ..." [--scale GB]        # train + predict one query
//! sapred simulate   --mix bing|facebook [--gap S] [--divisor D]   # Fig. 8
//! sapred trace      bing|facebook [--out trace.json] [--events events.jsonl] [--metrics metrics.json]
//! sapred motivation [--small GB] [--big GB]                # Figs. 1-2
//! ```

use sapred::cluster::job::SimQuery;
use sapred::cluster::sched::{Fifo, Hcs, Hfs, Scheduler, Srt, Swrd};
use sapred::cluster::sim::{SimReport, Simulator};
use sapred::core::experiments::accuracy::{job_accuracy, map_task_accuracy, reduce_task_accuracy};
use sapred::core::experiments::motivation::motivation;
use sapred::core::experiments::scheduling::{prepare_workload, run_schedulers};
use sapred::core::framework::{Framework, Predictor};
use sapred::core::telemetry::record_sim_outcomes;
use sapred::core::training::{fit_models, run_population, split_train_test};
use sapred::obs::{ChromeTraceSink, EventSink, JsonlSink, MetricsSink, Tee};
use sapred::plan::ground_truth::execute_dag;
use sapred::relation::gen::{generate, GenConfig};
use sapred::relation::persist::save_catalog;
use sapred::workload::mixes::{bing_mix, facebook_mix, MixSpec};
use sapred::workload::pool::DbPool;
use sapred::workload::population::{generate_population, PopulationConfig};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `trace` takes its workload positionally, so it parses its own args.
    let result = if command == "trace" {
        cmd_trace(&args[1..])
    } else {
        match parse_flags(&args[1..]) {
            Ok(flags) => match command.as_str() {
                "explain" => cmd_explain(&flags),
                "gather" => cmd_gather(&flags),
                "train" => cmd_train(&flags),
                "predict" => cmd_predict(&flags),
                "simulate" => cmd_simulate(&flags),
                "motivation" => cmd_motivation(&flags),
                "help" | "--help" | "-h" => {
                    println!("{USAGE}");
                    Ok(())
                }
                other => Err(format!("unknown command `{other}`")),
            },
            Err(e) => Err(e),
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "sapred — semantics-aware query prediction for MapReduce

USAGE:
  sapred explain    --sql <QUERY> [--scale <GB>] [--seed <N>]
  sapred gather     --scale <GB> --out <FILE> [--seed <N>]
  sapred train      [--queries <N>] [--seed <N>]
  sapred predict    --sql <QUERY> [--scale <GB>] [--queries <N>]
  sapred simulate   --mix <bing|facebook> [--gap <SECONDS>] [--divisor <D>] [--queries <N>]
  sapred trace      <bing|facebook> [--sched <swrd|hcs|hfs|fifo|srt>] [--out <trace.json>]
                    [--events <events.jsonl>] [--metrics <metrics.json>]
                    [--gap <SECONDS>] [--divisor <D>] [--queries <N>] [--seed <N>]
  sapred motivation [--small <GB>] [--big <GB>]";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, found `{key}`"));
        };
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn flag_f64(flags: &HashMap<String, String>, name: &str, default: f64) -> Result<f64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name} expects a number, got `{v}`")),
    }
}

fn flag_usize(
    flags: &HashMap<String, String>,
    name: &str,
    default: usize,
) -> Result<usize, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name} expects an integer, got `{v}`")),
    }
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags.get(name).map(String::as_str).ok_or_else(|| format!("--{name} is required"))
}

fn cmd_explain(flags: &HashMap<String, String>) -> Result<(), String> {
    let sql = required(flags, "sql")?;
    let scale = flag_f64(flags, "scale", 10.0)?;
    let seed = flag_usize(flags, "seed", 42)? as u64;
    let fw = Framework::new();
    println!("generating a {scale} GB TPC-H instance (seed {seed})...");
    let db = generate(GenConfig::new(scale).with_seed(seed));
    let semantics = fw.percolate_sql("cli", sql, &db).map_err(|e| e.to_string())?;
    let actuals = execute_dag(&semantics.dag, &db, fw.est_config.block_size);
    println!("\n{} job(s):", semantics.dag.len());
    for (job, (est, act)) in
        semantics.dag.jobs().iter().zip(semantics.estimates.iter().zip(&actuals))
    {
        let deps = job.deps();
        let deps = if deps.is_empty() {
            "-".to_string()
        } else {
            deps.iter().map(|d| format!("J{d}")).collect::<Vec<_>>().join(",")
        };
        println!(
            "  J{} {:<8} deps {:<6} D_in {:>8.3} GB | IS est {:.3} act {:.3} | \
             FS est {:.4} act {:.4} | {} maps{}",
            job.id,
            job.category().to_string(),
            deps,
            est.d_in / 1e9,
            est.is,
            act.is_ratio(),
            est.fs,
            act.fs_ratio(),
            est.n_maps,
            if job.broadcasts.is_empty() {
                String::new()
            } else {
                format!(" | {} map-join(s)", job.broadcasts.len())
            },
        );
    }
    Ok(())
}

fn cmd_gather(flags: &HashMap<String, String>) -> Result<(), String> {
    let scale = flag_f64(flags, "scale", 1.0)?;
    let out = required(flags, "out")?;
    let seed = flag_usize(flags, "seed", 42)? as u64;
    let db = generate(GenConfig::new(scale).with_seed(seed));
    save_catalog(db.catalog(), out).map_err(|e| e.to_string())?;
    println!("wrote statistics for {} tables to {out}", db.catalog().len());
    Ok(())
}

fn train_predictor(n_queries: usize, seed: u64) -> (Framework, Predictor, DbPool) {
    let fw = Framework::new();
    let config = PopulationConfig {
        n_queries,
        scales_gb: vec![1.0, 2.0, 5.0, 10.0, 20.0, 50.0],
        scale_out_gb: vec![],
        seed,
    };
    let mut pool = DbPool::new(seed);
    let pop = generate_population(&config, &mut pool);
    let runs = run_population(&pop, &mut pool, &fw);
    let (train, _) = split_train_test(&runs);
    let predictor = Predictor::new(fit_models(&train, &fw), fw);
    (fw, predictor, pool)
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let n = flag_usize(flags, "queries", 400)?;
    let seed = flag_usize(flags, "seed", 71)? as u64;
    let fw = Framework::new();
    let config = PopulationConfig {
        n_queries: n,
        scales_gb: vec![1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0],
        scale_out_gb: vec![150.0, 200.0],
        seed,
    };
    println!("running {n} training queries on the simulated cluster...");
    let mut pool = DbPool::new(seed);
    let pop = generate_population(&config, &mut pool);
    let runs = run_population(&pop, &mut pool, &fw);
    let (train, test) = split_train_test(&runs);
    let models = fit_models(&train, &fw);
    println!("\n{}", job_accuracy(&train, &test, &models));
    println!("\n{}", map_task_accuracy(&train, &models, &fw));
    println!("\n{}", reduce_task_accuracy(&train, &models, &fw));
    Ok(())
}

fn cmd_predict(flags: &HashMap<String, String>) -> Result<(), String> {
    let sql = required(flags, "sql")?;
    let scale = flag_f64(flags, "scale", 10.0)?;
    let n = flag_usize(flags, "queries", 150)?;
    println!("training on {n} queries...");
    let (fw, predictor, mut pool) = train_predictor(n, 7);
    let db = pool.get(scale).clone();
    let semantics = fw.percolate_sql("cli", sql, &db).map_err(|e| e.to_string())?;
    for (job, est) in semantics.dag.jobs().iter().zip(&semantics.estimates) {
        let p = predictor.job_prediction(est, job.kind.has_reduce());
        println!(
            "J{} {:<8} job {:>7.1}s | map task {:>5.1}s | reduce task {:>5.1}s",
            job.id,
            job.category().to_string(),
            predictor.job_seconds(est),
            p.map_task_time,
            p.reduce_task_time
        );
    }
    println!("query WRD: {:.0} container-seconds", predictor.query_wrd(&semantics));
    println!("predicted response (idle cluster): {:.1}s", predictor.query_seconds(&semantics));
    Ok(())
}

fn parse_mix(name: &str) -> Result<MixSpec, String> {
    match name {
        "bing" => Ok(bing_mix()),
        "facebook" => Ok(facebook_mix()),
        other => Err(format!("unknown mix `{other}` (expected bing|facebook)")),
    }
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let mix = parse_mix(required(flags, "mix")?)?;
    let gap = flag_f64(flags, "gap", if mix.name == "bing" { 8.0 } else { 3.0 })?;
    let divisor = flag_f64(flags, "divisor", 1.0)?;
    let n = flag_usize(flags, "queries", 200)?;
    println!("training on {n} queries...");
    let (fw, predictor, mut pool) = train_predictor(n, 79);
    println!("preparing the {} mix (gap {gap}s, scale /{divisor})...", mix.name);
    let prepared = prepare_workload(&mix, &mut pool, &fw, Some(&predictor), gap, divisor, 79);
    println!("\n{}", run_schedulers(&prepared, &fw, true));
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    // The workload may be given positionally (`sapred trace bing`) or via
    // `--mix`, matching `simulate`.
    let (positional, rest) = match args.first() {
        Some(a) if !a.starts_with("--") => (Some(a.as_str()), &args[1..]),
        _ => (None, args),
    };
    let flags = parse_flags(rest)?;
    let mix = match positional {
        Some(name) => parse_mix(name)?,
        None => parse_mix(required(&flags, "mix")?)?,
    };
    let gap = flag_f64(&flags, "gap", if mix.name == "bing" { 8.0 } else { 3.0 })?;
    let divisor = flag_f64(&flags, "divisor", 1.0)?;
    let n = flag_usize(&flags, "queries", 200)?;
    let seed = flag_usize(&flags, "seed", 79)? as u64;
    let sched_name = flags.get("sched").map(String::as_str).unwrap_or("swrd");
    let trace_path = flags.get("out").map(String::as_str).unwrap_or("trace.json");
    let events_path = flags.get("events").map(String::as_str).unwrap_or("events.jsonl");
    let metrics_path = flags.get("metrics").map(String::as_str).unwrap_or("metrics.json");

    println!("training on {n} queries...");
    let (fw, predictor, mut pool) = train_predictor(n, seed);
    println!("preparing the {} mix (gap {gap}s, scale /{divisor})...", mix.name);
    let prepared = prepare_workload(&mix, &mut pool, &fw, Some(&predictor), gap, divisor, seed);

    let events_file =
        std::fs::File::create(events_path).map_err(|e| format!("create {events_path}: {e}"))?;
    let mut sink = Tee::new(
        JsonlSink::new(std::io::BufWriter::new(events_file)),
        Tee::new(ChromeTraceSink::new(), MetricsSink::new(fw.cluster.total_containers())),
    );

    fn run_one<S: Scheduler, K: EventSink>(
        fw: &Framework,
        sched: S,
        queries: &[SimQuery],
        sink: &mut K,
    ) -> SimReport {
        Simulator::new(fw.cluster, fw.cost, sched).run_with(queries, sink)
    }
    println!("tracing {} queries under {}...", prepared.queries.len(), sched_name.to_uppercase());
    let report = match sched_name {
        "swrd" => run_one(&fw, Swrd, &prepared.queries, &mut sink),
        "hcs" => run_one(&fw, Hcs, &prepared.queries, &mut sink),
        "hfs" => run_one(&fw, Hfs, &prepared.queries, &mut sink),
        "fifo" => run_one(&fw, Fifo, &prepared.queries, &mut sink),
        "srt" => run_one(&fw, Srt, &prepared.queries, &mut sink),
        other => {
            return Err(format!("unknown scheduler `{other}` (expected swrd|hcs|hfs|fifo|srt)"))
        }
    };
    // Post-hoc prediction-drift telemetry against the simulated truth.
    record_sim_outcomes(&prepared.queries, &report, &fw.cluster, &mut sink);

    let Tee { a: jsonl, b: Tee { a: chrome, b: mut metrics } } = sink;
    let lines = jsonl.lines();
    jsonl.finish().map_err(|e| format!("write {events_path}: {e}"))?;
    let trace_file =
        std::fs::File::create(trace_path).map_err(|e| format!("create {trace_path}: {e}"))?;
    chrome
        .write(std::io::BufWriter::new(trace_file))
        .map_err(|e| format!("write {trace_path}: {e}"))?;
    std::fs::write(metrics_path, metrics.finish(report.makespan))
        .map_err(|e| format!("write {metrics_path}: {e}"))?;

    println!("\nmakespan {:.1}s, mean response {:.1}s", report.makespan, report.mean_response());
    println!("container utilization: {:.1}%", 100.0 * metrics.utilization(report.makespan));
    println!("\nprediction drift vs simulated truth:\n{}", metrics.drift);
    println!("wrote {lines} events to {events_path}");
    println!(
        "wrote {} trace spans to {trace_path} (chrome://tracing, ui.perfetto.dev)",
        chrome.span_count()
    );
    println!("wrote metrics to {metrics_path}");
    Ok(())
}

fn cmd_motivation(flags: &HashMap<String, String>) -> Result<(), String> {
    let small = flag_f64(flags, "small", 10.0)?;
    let big = flag_f64(flags, "big", 100.0)?;
    let fw = Framework::new();
    let mut pool = DbPool::new(2018);
    let report = motivation(&mut pool, &fw, None, small, big);
    println!("{report}");
    println!("small-query slowdown under HCS: {:.2}x", report.small_query_slowdown());
    Ok(())
}
