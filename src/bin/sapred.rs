//! `sapred` — command-line driver for the semantics-aware query prediction
//! framework. A thin shell over [`sapred::core::Pipeline`]: every command
//! walks some prefix of the staged lifecycle (percolate → train → predict
//! → simulate).
//!
//! ```text
//! sapred explain    --sql "SELECT ..." [--scale GB]        # DAG + estimates vs ground truth
//! sapred gather     --scale GB --out catalog.json          # export metastore statistics
//! sapred train      [--queries N] [--seed S]               # fit models, print Tables 3-5
//! sapred predict    --sql "SELECT ..." [--scale GB]        # train + predict one query
//! sapred simulate   --mix bing|facebook [--gap S] [--divisor D]   # Fig. 8
//! sapred trace      bing|facebook [--out trace.json] [--events events.jsonl] [--metrics metrics.json]
//! sapred fleet      [--schedulers CSV] [--fail-probs CSV] [--seeds N] [--out fleet.json]   # grid sweep
//! sapred bench      [--suite dispatch|pipeline|fleet|scale|all] [--quick] [--compare BENCH.json] [--gate]
//! sapred motivation [--small GB] [--big GB]                # Figs. 1-2
//! ```

use sapred::cluster::sched::{Fifo, Hcs, Hfs, Scheduler, Srt, Swrd};
use sapred::cluster::{
    AdmissionConfig, DemandOracle, FaultPlan, FrozenOracle, GuardedOracle, ShedPolicy, SimReport,
};
use sapred::core::experiments::accuracy::{job_accuracy, map_task_accuracy, reduce_task_accuracy};
use sapred::core::experiments::motivation::motivation;
use sapred::core::experiments::scheduling::{run_schedulers, PreparedWorkload};
use sapred::core::telemetry::record_sim_outcomes_profiled;
use sapred::core::{Error, Pipeline, RecalibratingOracle};
use sapred::obs::{
    write_atomic, ChromeTraceSink, Counter, EventSink, JsonlSink, MetricsSink, SpanProfiler, Tee,
};
use sapred::plan::ground_truth::execute_dag;
use sapred::relation::persist::save_catalog;
use sapred::selectivity::EstimatorKind;
use sapred::workload::mixes::{bing_mix, facebook_mix, MixSpec};
use sapred::workload::population::PopulationConfig;
use sapred_bench::fleet::{
    run_fleet, run_fleet_journaled, AdmissionLevel, FaultLevel, FleetGrid, SchedKind, WorkloadSpec,
};
use sapred_bench::harness::{
    dispatch_suite, fleet_suite, pipeline_suite, run_suite, scale_suite, CellResult,
};
use sapred_bench::report::{compare, suite_json, validate_schema, Comparison};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `trace` takes its workload positionally, `bench` has boolean flags,
    // and `fleet` strips its boolean `--resume` before the value-taking
    // flag parser runs — so all three parse their own args.
    let result = if command == "trace" {
        cmd_trace(&args[1..])
    } else if command == "bench" {
        cmd_bench(&args[1..])
    } else if command == "fleet" {
        let resume = args[1..].iter().any(|a| a == "--resume");
        let rest: Vec<String> = args[1..].iter().filter(|a| *a != "--resume").cloned().collect();
        parse_flags(&rest).and_then(|flags| cmd_fleet(&flags, resume))
    } else {
        match parse_flags(&args[1..]) {
            Ok(flags) => match command.as_str() {
                "explain" => cmd_explain(&flags),
                "gather" => cmd_gather(&flags),
                "train" => cmd_train(&flags),
                "predict" => cmd_predict(&flags),
                "simulate" => cmd_simulate(&flags),
                "motivation" => cmd_motivation(&flags),
                "help" | "--help" | "-h" => {
                    println!("{USAGE}");
                    Ok(())
                }
                other => Err(Error::invalid(format!("unknown command `{other}`"))),
            },
            Err(e) => Err(e),
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "sapred — semantics-aware query prediction for MapReduce

USAGE:
  sapred explain    --sql <QUERY> [--scale <GB>] [--seed <N>] [--estimator <histogram|sample|catalog>]
  sapred gather     --scale <GB> --out <FILE> [--seed <N>]
  sapred train      [--queries <N>] [--seed <N>]
  sapred predict    --sql <QUERY> [--scale <GB>] [--queries <N>] [--estimator <histogram|sample|catalog>]
  sapred simulate   --mix <bing|facebook> [--gap <SECONDS>] [--divisor <D>] [--queries <N>]
  sapred trace      <bing|facebook> [--sched <swrd|hcs|hfs|fifo|srt>] [--out <trace.json>]
                    [--events <events.jsonl>] [--metrics <metrics.json>] [--oracle <frozen|recalibrating>]
                    [--gap <SECONDS>] [--divisor <D>] [--queries <N>] [--seed <N>]
                    [--queue-cap <N>] [--deadline <SECONDS>]
                    [--shed-policy <reject-newest|largest-wrd>] [--guard <on|off>]
                    [--profile <profile.json>]
  sapred fleet      [--grid <GRID.json>] [--schedulers <CSV of swrd|hcs|hfs|fifo|srt>]
                    [--fail-probs <CSV>] [--queue-caps <CSV>] [--deadline <SECONDS>]
                    [--shed-policy <reject-newest|largest-wrd>] [--seeds <N>] [--seed <BASE>]
                    [--queries <N>] [--jobs <N>] [--maps <N>] [--reduces <N>]
                    [--estimators <CSV of histogram|sample|catalog>] [--skews <CSV>]
                    [--threads <N>] [--out <fleet.json>]
                    [--journal <JOURNAL.jsonl>] [--resume]
  sapred bench      [--suite <dispatch|pipeline|fleet|scale|all>] [--quick] [--iters <N>] [--threads <N>]
                    [--out <DIR>] [--compare <BENCH.json>] [--threshold <FRACTION>] [--gate]
                    [--validate <BENCH.json>]... [--compare-files <OLD.json> <NEW.json>]
  sapred motivation [--small <GB>] [--big <GB>]";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, Error> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(Error::invalid(format!("expected a --flag, found `{key}`")));
        };
        let value = it.next().ok_or_else(|| Error::invalid(format!("--{name} needs a value")))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn flag_f64(flags: &HashMap<String, String>, name: &str, default: f64) -> Result<f64, Error> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => {
            v.parse().map_err(|_| Error::invalid(format!("--{name} expects a number, got `{v}`")))
        }
    }
}

fn flag_usize(flags: &HashMap<String, String>, name: &str, default: usize) -> Result<usize, Error> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => {
            v.parse().map_err(|_| Error::invalid(format!("--{name} expects an integer, got `{v}`")))
        }
    }
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, Error> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| Error::invalid(format!("--{name} is required")))
}

/// Parse an optional `--estimator histogram|sample|catalog` flag.
fn flag_estimator(flags: &HashMap<String, String>) -> Result<EstimatorKind, Error> {
    match flags.get("estimator") {
        None => Ok(EstimatorKind::default()),
        Some(v) => parse_estimator(v),
    }
}

fn parse_estimator(name: &str) -> Result<EstimatorKind, Error> {
    EstimatorKind::parse(name).ok_or_else(|| {
        Error::invalid(format!("unknown estimator `{name}` (expected histogram|sample|catalog)"))
    })
}

fn cmd_explain(flags: &HashMap<String, String>) -> Result<(), Error> {
    let sql = required(flags, "sql")?;
    let scale = flag_f64(flags, "scale", 10.0)?;
    let seed = flag_usize(flags, "seed", 42)? as u64;
    let estimator = flag_estimator(flags)?;
    let mut pipe = Pipeline::with_seed(seed);
    pipe.framework_mut().est_config.kind = estimator;
    println!("generating a {scale} GB TPC-H instance (seed {seed}, {estimator} estimator)...");
    let semantics = pipe.percolate_sql("cli", sql, scale)?;
    let block_size = pipe.framework().est_config.block_size;
    let actuals = execute_dag(&semantics.dag, pipe.database(scale), block_size);
    println!("\n{} job(s):", semantics.dag.len());
    for (job, (est, act)) in
        semantics.dag.jobs().iter().zip(semantics.estimates.iter().zip(&actuals))
    {
        let deps = job.deps();
        let deps = if deps.is_empty() {
            "-".to_string()
        } else {
            deps.iter().map(|d| format!("J{d}")).collect::<Vec<_>>().join(",")
        };
        println!(
            "  J{} {:<8} deps {:<6} D_in {:>8.3} GB | IS est {:.3} act {:.3} | \
             FS est {:.4} act {:.4} | {} maps{}",
            job.id,
            job.category().to_string(),
            deps,
            est.d_in / 1e9,
            est.is,
            act.is_ratio(),
            est.fs,
            act.fs_ratio(),
            est.n_maps,
            if job.broadcasts.is_empty() {
                String::new()
            } else {
                format!(" | {} map-join(s)", job.broadcasts.len())
            },
        );
    }
    Ok(())
}

fn cmd_gather(flags: &HashMap<String, String>) -> Result<(), Error> {
    let scale = flag_f64(flags, "scale", 1.0)?;
    let out = required(flags, "out")?;
    let seed = flag_usize(flags, "seed", 42)? as u64;
    let mut pipe = Pipeline::with_seed(seed);
    let catalog = pipe.database(scale).catalog();
    save_catalog(catalog, out).map_err(|e| Error::io(format!("write {out}"), e))?;
    println!("wrote statistics for {} tables to {out}", catalog.len());
    Ok(())
}

/// A pipeline trained on the CLI's standard population.
fn trained_pipeline(n_queries: usize, seed: u64) -> Result<Pipeline, Error> {
    let mut pipe = Pipeline::with_seed(seed);
    let config = PopulationConfig {
        n_queries,
        scales_gb: vec![1.0, 2.0, 5.0, 10.0, 20.0, 50.0],
        scale_out_gb: vec![],
        seed,
    };
    pipe.train(&config)?;
    Ok(pipe)
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), Error> {
    let n = flag_usize(flags, "queries", 400)?;
    let seed = flag_usize(flags, "seed", 71)? as u64;
    let mut pipe = Pipeline::with_seed(seed);
    let config = PopulationConfig {
        n_queries: n,
        scales_gb: vec![1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0],
        scale_out_gb: vec![150.0, 200.0],
        seed,
    };
    println!("running {n} training queries on the simulated cluster...");
    let fw = *pipe.framework();
    let training = pipe.train(&config)?;
    let (train, test) = training.split();
    println!("\n{}", job_accuracy(&train, &test, &training.models));
    println!("\n{}", map_task_accuracy(&train, &training.models, &fw));
    println!("\n{}", reduce_task_accuracy(&train, &training.models, &fw));
    Ok(())
}

fn cmd_predict(flags: &HashMap<String, String>) -> Result<(), Error> {
    let sql = required(flags, "sql")?;
    let scale = flag_f64(flags, "scale", 10.0)?;
    let n = flag_usize(flags, "queries", 150)?;
    println!("training on {n} queries...");
    let mut pipe = trained_pipeline(n, 7)?;
    pipe.framework_mut().est_config.kind = flag_estimator(flags)?;
    let semantics = pipe.percolate_sql("cli", sql, scale)?;
    let predictor = pipe.predictor()?;
    for (job, est) in semantics.dag.jobs().iter().zip(&semantics.estimates) {
        let p = predictor.job_prediction(est, job.kind.has_reduce());
        println!(
            "J{} {:<8} job {:>7.1}s | map task {:>5.1}s | reduce task {:>5.1}s",
            job.id,
            job.category().to_string(),
            predictor.job_seconds(est),
            p.map_task_time,
            p.reduce_task_time
        );
    }
    println!("query WRD: {:.0} container-seconds", predictor.query_wrd(&semantics));
    println!("predicted response (idle cluster): {:.1}s", predictor.query_seconds(&semantics));
    Ok(())
}

fn parse_mix(name: &str) -> Result<MixSpec, Error> {
    match name {
        "bing" => Ok(bing_mix()),
        "facebook" => Ok(facebook_mix()),
        other => Err(Error::invalid(format!("unknown mix `{other}` (expected bing|facebook)"))),
    }
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), Error> {
    let mix = parse_mix(required(flags, "mix")?)?;
    let gap = flag_f64(flags, "gap", if mix.name == "bing" { 8.0 } else { 3.0 })?;
    let divisor = flag_f64(flags, "divisor", 1.0)?;
    let n = flag_usize(flags, "queries", 200)?;
    println!("training on {n} queries...");
    let mut pipe = trained_pipeline(n, 79)?;
    println!("preparing the {} mix (gap {gap}s, scale /{divisor})...", mix.name);
    let prepared = pipe.prepare_mix(&mix, gap, divisor, 79);
    println!("\n{}", run_schedulers(&prepared, pipe.framework(), true));
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), Error> {
    // The workload may be given positionally (`sapred trace bing`) or via
    // `--mix`, matching `simulate`.
    let (positional, rest) = match args.first() {
        Some(a) if !a.starts_with("--") => (Some(a.as_str()), &args[1..]),
        _ => (None, args),
    };
    let flags = parse_flags(rest)?;
    let mix = match positional {
        Some(name) => parse_mix(name)?,
        None => parse_mix(required(&flags, "mix")?)?,
    };
    let gap = flag_f64(&flags, "gap", if mix.name == "bing" { 8.0 } else { 3.0 })?;
    let divisor = flag_f64(&flags, "divisor", 1.0)?;
    let n = flag_usize(&flags, "queries", 200)?;
    let seed = flag_usize(&flags, "seed", 79)? as u64;
    let sched_name = flags.get("sched").map(String::as_str).unwrap_or("swrd");
    let oracle_name = flags.get("oracle").map(String::as_str).unwrap_or("frozen");
    let trace_path = flags.get("out").map(String::as_str).unwrap_or("trace.json");
    let events_path = flags.get("events").map(String::as_str).unwrap_or("events.jsonl");
    let metrics_path = flags.get("metrics").map(String::as_str).unwrap_or("metrics.json");
    let profile_path = flags.get("profile").map(String::as_str);

    // Overload knobs: a bounded admission queue with a shed policy, per-query
    // deadlines, and the prediction guardrails. All default to off, in which
    // case the run is bit-identical to the pre-admission engine.
    let shed_policy = match flags.get("shed-policy").map(String::as_str).unwrap_or("reject-newest")
    {
        "reject-newest" => ShedPolicy::RejectNewest,
        "largest-wrd" => ShedPolicy::ShedLargestWrd,
        other => {
            return Err(Error::invalid(format!(
                "unknown shed policy `{other}` (expected reject-newest|largest-wrd)"
            )))
        }
    };
    let admission = AdmissionConfig {
        queue_cap: flag_usize(&flags, "queue-cap", 0)?,
        deadline: flag_f64(&flags, "deadline", f64::INFINITY)?,
        shed_policy,
        ..AdmissionConfig::default()
    };
    let guard = match flags.get("guard").map(String::as_str).unwrap_or("off") {
        "on" => true,
        "off" => false,
        other => return Err(Error::invalid(format!("--guard expects on|off, got `{other}`"))),
    };

    println!("training on {n} queries...");
    let mut pipe = trained_pipeline(n, seed)?;
    // The run is self-profiled (stage spans + event-loop counters); the
    // result is only written out when `--profile` asks for it.
    let prof = std::rc::Rc::new(SpanProfiler::new());
    pipe.set_profiler(std::rc::Rc::clone(&prof));
    println!("preparing the {} mix (gap {gap}s, scale /{divisor})...", mix.name);
    let prepared = pipe.prepare_mix(&mix, gap, divisor, seed);

    // Every artifact is buffered in memory and committed through the
    // atomic stage-and-rename helper, so a crash mid-run never leaves a
    // torn events/trace/metrics file behind.
    let mut sink = Tee::new(
        JsonlSink::new(Vec::new()),
        Tee::new(
            ChromeTraceSink::new(),
            MetricsSink::new(pipe.framework().cluster.total_containers()),
        ),
    );

    // The online stage: `frozen` replays the percolated predictions;
    // `recalibrating` lets each completed job's actuals re-rank the rest.
    // `--guard on` wraps either one in the prediction guardrails (quarantine
    // plus trust-driven degraded-mode scheduling).
    let recalibrating = match oracle_name {
        "frozen" => false,
        "recalibrating" => true,
        other => {
            return Err(Error::invalid(format!(
                "unknown oracle `{other}` (expected frozen|recalibrating)"
            )))
        }
    };
    let mut frozen = FrozenOracle;
    let mut guarded_frozen = GuardedOracle::new(FrozenOracle);
    let mut recal = RecalibratingOracle::new();
    let mut guarded_recal = GuardedOracle::new(RecalibratingOracle::new());
    let oracle: &mut dyn DemandOracle = match (recalibrating, guard) {
        (false, false) => &mut frozen,
        (false, true) => &mut guarded_frozen,
        (true, false) => &mut recal,
        (true, true) => &mut guarded_recal,
    };
    #[allow(clippy::too_many_arguments)]
    fn run_one<S: Scheduler, K: EventSink>(
        pipe: &Pipeline,
        sched: S,
        prepared: &PreparedWorkload,
        sink: &mut K,
        admission: AdmissionConfig,
        oracle: &mut dyn DemandOracle,
        prof: &SpanProfiler,
    ) -> Result<SimReport, Error> {
        pipe.simulate_admitted_profiled(
            sched,
            FaultPlan::none(),
            admission,
            &prepared.queries,
            sink,
            oracle,
            prof,
        )
    }
    println!("tracing {} queries under {}...", prepared.queries.len(), sched_name.to_uppercase());
    let report = match sched_name {
        "swrd" => run_one(&pipe, Swrd, &prepared, &mut sink, admission, &mut *oracle, &prof)?,
        "hcs" => run_one(&pipe, Hcs, &prepared, &mut sink, admission, &mut *oracle, &prof)?,
        "hfs" => run_one(&pipe, Hfs, &prepared, &mut sink, admission, &mut *oracle, &prof)?,
        "fifo" => run_one(&pipe, Fifo, &prepared, &mut sink, admission, &mut *oracle, &prof)?,
        "srt" => run_one(&pipe, Srt, &prepared, &mut sink, admission, &mut *oracle, &prof)?,
        other => {
            return Err(Error::invalid(format!(
                "unknown scheduler `{other}` (expected swrd|hcs|hfs|fifo|srt)"
            )))
        }
    };
    let (trust, degraded) = (oracle.trust(), oracle.degraded());
    // Post-hoc prediction-drift telemetry against the simulated truth.
    record_sim_outcomes_profiled(
        &prepared.queries,
        &report,
        &pipe.framework().cluster,
        &mut sink,
        &*prof,
    );

    let Tee { a: jsonl, b: Tee { a: chrome, b: mut metrics } } = sink;
    let lines = jsonl.lines();
    let events_buf = jsonl.finish().map_err(|e| Error::io(format!("write {events_path}"), e))?;
    write_atomic(events_path, &events_buf)
        .map_err(|e| Error::io(format!("write {events_path}"), e))?;
    let mut trace_buf = Vec::new();
    chrome.write(&mut trace_buf).map_err(|e| Error::io(format!("write {trace_path}"), e))?;
    write_atomic(trace_path, &trace_buf)
        .map_err(|e| Error::io(format!("write {trace_path}"), e))?;
    write_atomic(metrics_path, metrics.finish(report.makespan))
        .map_err(|e| Error::io(format!("write {metrics_path}"), e))?;

    println!("\nmakespan {:.1}s, mean response {:.1}s", report.makespan, report.mean_response());
    println!("container utilization: {:.1}%", 100.0 * metrics.utilization(report.makespan));
    if admission.is_active() {
        let a = &report.admission;
        println!(
            "admission: {} shed, {} rejected, {} resubmissions, {} deadline misses \
             (max {} active)",
            a.queries_shed,
            a.queries_rejected.len(),
            a.resubmissions,
            a.deadline_misses.len(),
            a.max_active
        );
    }
    if guard {
        println!(
            "prediction guard: trust {trust:.2}{}",
            if degraded { ", in degraded mode" } else { "" }
        );
    }
    if recalibrating {
        let drift = if guard { guarded_recal.inner().drift() } else { recal.drift() };
        println!("\nmid-run recalibration drift (the oracle's view):\n{drift}");
    }
    println!("\nprediction drift vs simulated truth:\n{}", metrics.drift);
    println!("wrote {lines} events to {events_path}");
    println!(
        "wrote {} trace spans to {trace_path} (chrome://tracing, ui.perfetto.dev)",
        chrome.span_count()
    );
    println!("wrote metrics to {metrics_path}");
    if let Some(path) = profile_path {
        write_atomic(path, prof.to_json()).map_err(|e| Error::io(format!("write {path}"), e))?;
        println!("wrote span profile to {path}");
        println!("\n{}", prof.summary());
    }
    Ok(())
}

fn parse_shed_policy(name: &str) -> Result<ShedPolicy, Error> {
    match name {
        "reject-newest" | "reject_newest" => Ok(ShedPolicy::RejectNewest),
        "largest-wrd" | "largest_wrd" => Ok(ShedPolicy::ShedLargestWrd),
        other => Err(Error::invalid(format!(
            "unknown shed policy `{other}` (expected reject-newest|largest-wrd)"
        ))),
    }
}

/// Load a declarative fleet grid from a JSON file. The format is exactly
/// the `grid` object a fleet report echoes, so a previous run's output can
/// be replayed: `workloads` (objects with `n_queries`/`jobs`/`maps`/
/// `reduces` and optional `skew`), `schedulers` (names), `fault_levels`
/// (failure probabilities), `admissions` (objects with `queue_cap`,
/// `deadline` — `null`/absent means none — and `shed_policy`), optional
/// `estimators` (names; defaults to `["histogram"]`), and `seeds`.
fn load_grid_file(path: &str) -> Result<FleetGrid, Error> {
    use sapred::obs::json::Value;
    let text = std::fs::read_to_string(path).map_err(|e| Error::io(format!("read {path}"), e))?;
    let doc =
        sapred::obs::json::parse(&text).map_err(|e| Error::invalid(format!("{path}: {e}")))?;
    let arr = |key: &str| -> Result<&[Value], Error> {
        doc.get(key)
            .and_then(Value::as_arr)
            .ok_or_else(|| Error::invalid(format!("{path}: missing array field {key:?}")))
    };
    let field_usize = |v: &Value, key: &str, at: &str| -> Result<usize, Error> {
        v.get(key)
            .and_then(Value::as_num)
            .filter(|n| n.fract() == 0.0 && *n >= 0.0)
            .map(|n| n as usize)
            .ok_or_else(|| Error::invalid(format!("{path}: {at}: {key:?} must be a whole number")))
    };

    let mut workloads = Vec::new();
    for (i, w) in arr("workloads")?.iter().enumerate() {
        let at = format!("workloads[{i}]");
        let skew = match w.get("skew") {
            None | Some(Value::Null) => 0.0,
            Some(v) => v.as_num().ok_or_else(|| {
                Error::invalid(format!("{path}: {at}: \"skew\" must be a number or null"))
            })?,
        };
        workloads.push(WorkloadSpec {
            n_queries: field_usize(w, "n_queries", &at)?,
            jobs: field_usize(w, "jobs", &at)?,
            maps: field_usize(w, "maps", &at)?,
            reduces: field_usize(w, "reduces", &at)?,
            skew,
        });
    }
    let mut schedulers = Vec::new();
    for (i, s) in arr("schedulers")?.iter().enumerate() {
        let name = s
            .as_str()
            .ok_or_else(|| Error::invalid(format!("{path}: schedulers[{i}] must be a string")))?;
        schedulers.push(SchedKind::parse(name).map_err(Error::invalid)?);
    }
    let mut faults = Vec::new();
    for (i, f) in arr("fault_levels")?.iter().enumerate() {
        let p = f
            .as_num()
            .ok_or_else(|| Error::invalid(format!("{path}: fault_levels[{i}] must be a number")))?;
        faults.push(FaultLevel { task_fail_prob: p });
    }
    let mut admissions = Vec::new();
    for (i, a) in arr("admissions")?.iter().enumerate() {
        let at = format!("admissions[{i}]");
        let deadline = match a.get("deadline") {
            None | Some(Value::Null) => f64::INFINITY,
            Some(v) => v.as_num().ok_or_else(|| {
                Error::invalid(format!("{path}: {at}: \"deadline\" must be a number or null"))
            })?,
        };
        let shed_policy = match a.get("shed_policy") {
            None => ShedPolicy::default(),
            Some(v) => parse_shed_policy(v.as_str().ok_or_else(|| {
                Error::invalid(format!("{path}: {at}: \"shed_policy\" must be a string"))
            })?)?,
        };
        admissions.push(AdmissionLevel {
            queue_cap: field_usize(a, "queue_cap", &at)?,
            deadline,
            shed_policy,
        });
    }
    let mut estimators = Vec::new();
    if let Some(list) = doc.get("estimators").and_then(Value::as_arr) {
        for (i, e) in list.iter().enumerate() {
            let name = e.as_str().ok_or_else(|| {
                Error::invalid(format!("{path}: estimators[{i}] must be a string"))
            })?;
            estimators.push(parse_estimator(name)?);
        }
    }
    if estimators.is_empty() {
        estimators.push(EstimatorKind::Histogram);
    }
    let mut seeds = Vec::new();
    for (i, s) in arr("seeds")?.iter().enumerate() {
        let seed = match s {
            // Seeds may exceed f64's integer range, so strings are accepted.
            Value::Str(text) => text.parse::<u64>().ok(),
            v => v.as_num().filter(|n| n.fract() == 0.0 && *n >= 0.0).map(|n| n as u64),
        }
        .ok_or_else(|| Error::invalid(format!("{path}: seeds[{i}] must be a u64")))?;
        seeds.push(seed);
    }
    Ok(FleetGrid { workloads, schedulers, faults, admissions, estimators, seeds })
}

/// `sapred fleet`: expand a declarative (workload × scheduler × fault ×
/// admission × seed) grid, run every cell across worker threads, print the
/// aggregation layer, and write the aggregate JSON report — bit-identical
/// for the same grid at any `--threads` value. With `--journal` every
/// completed cell is persisted as it finishes, and `--resume` adopts a
/// previous (possibly killed) sweep's cells instead of re-running them.
fn cmd_fleet(flags: &HashMap<String, String>, resume: bool) -> Result<(), Error> {
    fn parse_csv(raw: &str) -> impl Iterator<Item = &str> {
        raw.split(',').map(str::trim).filter(|s| !s.is_empty())
    }
    let threads = flag_usize(flags, "threads", 0)?;
    let out = flags.get("out").map(String::as_str).unwrap_or("fleet.json");
    let journal = flags.get("journal").map(String::as_str);
    if resume && journal.is_none() {
        return Err(Error::invalid("--resume requires --journal <path>"));
    }

    let grid = if let Some(path) = flags.get("grid") {
        load_grid_file(path)?
    } else {
        let scheds = flags.get("schedulers").map(String::as_str).unwrap_or("swrd,hcs");
        let schedulers = parse_csv(scheds)
            .map(|s| SchedKind::parse(s).map_err(Error::invalid))
            .collect::<Result<Vec<_>, _>>()?;
        let probs = flags.get("fail-probs").map(String::as_str).unwrap_or("0,0.08");
        let faults = parse_csv(probs)
            .map(|s| {
                s.parse::<f64>()
                    .map(|task_fail_prob| FaultLevel { task_fail_prob })
                    .map_err(|_| Error::invalid(format!("--fail-probs: `{s}` is not a number")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let deadline = flag_f64(flags, "deadline", f64::INFINITY)?;
        let shed_policy = parse_shed_policy(
            flags.get("shed-policy").map(String::as_str).unwrap_or("largest-wrd"),
        )?;
        let caps = flags.get("queue-caps").map(String::as_str).unwrap_or("0");
        let admissions = parse_csv(caps)
            .map(|s| {
                let cap: usize = s.parse().map_err(|_| {
                    Error::invalid(format!("--queue-caps: `{s}` is not an integer"))
                })?;
                // Cap 0 is the inert config; --deadline/--shed-policy only
                // shape the capped levels.
                Ok(if cap == 0 {
                    AdmissionLevel::off()
                } else {
                    AdmissionLevel { queue_cap: cap, deadline, shed_policy }
                })
            })
            .collect::<Result<Vec<_>, Error>>()?;
        let estimators =
            parse_csv(flags.get("estimators").map(String::as_str).unwrap_or("histogram"))
                .map(parse_estimator)
                .collect::<Result<Vec<_>, _>>()?;
        // One workload per requested skew level; `0` keeps the legacy
        // uniform dispatch workload.
        let skews = parse_csv(flags.get("skews").map(String::as_str).unwrap_or("0"))
            .map(|s| {
                s.parse::<f64>()
                    .map_err(|_| Error::invalid(format!("--skews: `{s}` is not a number")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let n_seeds = flag_usize(flags, "seeds", 2)?;
        let base = flag_usize(flags, "seed", 42)? as u64;
        let n_queries = flag_usize(flags, "queries", 10)?;
        let jobs = flag_usize(flags, "jobs", 2)?;
        let maps = flag_usize(flags, "maps", 6)?;
        let reduces = flag_usize(flags, "reduces", 2)?;
        FleetGrid {
            workloads: skews
                .iter()
                .map(|&skew| WorkloadSpec { n_queries, jobs, maps, reduces, skew })
                .collect(),
            schedulers,
            faults,
            admissions,
            estimators,
            seeds: (0..n_seeds.max(1) as u64).map(|i| base.wrapping_add(i)).collect(),
        }
    };

    println!(
        "running fleet: {} cell(s) = {} workload(s) x {} scheduler(s) x {} fault level(s) \
         x {} admission config(s) x {} estimator(s) x {} seed(s)...",
        grid.n_cells(),
        grid.workloads.len(),
        grid.schedulers.len(),
        grid.faults.len(),
        grid.admissions.len(),
        grid.estimators.len(),
        grid.seeds.len()
    );
    let report = match journal {
        Some(path) => {
            let prof = SpanProfiler::new();
            let report =
                run_fleet_journaled(&grid, threads, std::path::Path::new(path), resume, &prof)
                    .map_err(Error::invalid)?;
            let resumed = prof.counter(Counter::CellsResumed);
            if resume {
                println!("resumed {resumed} journaled cell(s) from {path}");
            }
            report
        }
        None => run_fleet(&grid, threads).map_err(Error::invalid)?,
    };
    println!("completed {} cell(s), {} failed", report.completed(), report.failed());
    for cell in &report.cells {
        if let Err(e) = &cell.outcome {
            println!("  FAILED {}: {e}", cell.label);
        }
    }

    println!("\nper-(scheduler x fault) surface (makespan / mean response, seconds):");
    for p in report.surfaces() {
        println!(
            "  {:<5} @ {:<6} ({:>3} cells) | makespan mean {:>8.1} p95 {:>8.1} | \
             response mean {:>8.1} p95 {:>8.1}",
            p.sched,
            p.fault,
            p.n_cells,
            p.makespan_mean,
            p.makespan_p95,
            p.response_mean,
            p.response_p95
        );
    }
    let crossovers = report.crossovers();
    if crossovers.is_empty() {
        println!("\nno scheduler crossovers detected");
    } else {
        for x in &crossovers {
            println!(
                "\ncrossover: {} vs {} flips at fault level {} \
                 (mean response {:.1}s vs {:.1}s)",
                x.reference, x.other, x.fault, x.reference_mean, x.other_mean
            );
        }
    }
    let frontiers: Vec<_> =
        report.frontiers().into_iter().filter(|f| f.admission != "off").collect();
    if !frontiers.is_empty() {
        println!("\nshed/deadline frontier (per submitted query):");
        for f in &frontiers {
            println!(
                "  {:<16} @ {:<6} ({:>3} cells) | shed {:.3} | reject {:.3} | \
                 resubmit {:.3} | miss {:.3}",
                f.admission,
                f.fault,
                f.n_cells,
                f.shed_rate,
                f.reject_rate,
                f.resubmit_rate,
                f.miss_rate
            );
        }
    }

    write_atomic(out, report.to_json()).map_err(|e| Error::io(format!("write {out}"), e))?;
    println!("\nwrote aggregate fleet report to {out}");
    Ok(())
}

/// `sapred bench`: run the deterministic suite(s), write
/// `BENCH_<suite>.json`, and optionally compare against a baseline.
/// Parses its own arguments because `--quick`/`--gate` take no value.
fn cmd_bench(args: &[String]) -> Result<(), Error> {
    let mut suite = "all".to_string();
    let mut quick = false;
    let mut gate = false;
    let mut threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out_dir = ".".to_string();
    let mut iters_override: Option<usize> = None;
    let mut compare_path: Option<String> = None;
    let mut threshold = 0.25f64;
    let mut validate_paths: Vec<String> = Vec::new();
    let mut compare_files: Option<(String, String)> = None;

    let mut it = args.iter();
    while let Some(key) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| Error::invalid(format!("--{name} needs a value")))
        };
        match key.as_str() {
            "--suite" => suite = value("suite")?,
            "--quick" => quick = true,
            "--gate" => gate = true,
            "--threads" => {
                let v = value("threads")?;
                threads = v.parse().map_err(|_| {
                    Error::invalid(format!("--threads expects an integer, got `{v}`"))
                })?;
            }
            "--out" => out_dir = value("out")?,
            "--iters" => {
                let v = value("iters")?;
                let n: usize = v.parse().map_err(|_| {
                    Error::invalid(format!("--iters expects an integer, got `{v}`"))
                })?;
                if n == 0 {
                    return Err(Error::invalid("--iters must be at least 1"));
                }
                iters_override = Some(n);
            }
            "--compare" => compare_path = Some(value("compare")?),
            "--threshold" => {
                let v = value("threshold")?;
                threshold = v.parse().map_err(|_| {
                    Error::invalid(format!("--threshold expects a number, got `{v}`"))
                })?;
            }
            "--validate" => validate_paths.push(value("validate")?),
            "--compare-files" => {
                let old = value("compare-files")?;
                let new = value("compare-files")?;
                compare_files = Some((old, new));
            }
            other => return Err(Error::invalid(format!("unknown bench flag `{other}`"))),
        }
    }

    // Missing/unparseable baselines are the classic `--compare` footguns;
    // `load_report` turns both into errors that name the offending path.
    let load = |path: &str| -> Result<sapred::obs::json::Value, Error> {
        sapred_bench::report::load_report(path).map_err(Error::invalid)
    };

    // Validation-only mode: check the given reports and stop.
    if !validate_paths.is_empty() {
        for path in &validate_paths {
            let doc = load(path)?;
            let cells = doc.get("cells").and_then(|c| c.as_arr()).map(<[_]>::len).unwrap_or(0);
            println!("{path}: valid {} report, {cells} cell(s)", sapred_bench::report::SCHEMA);
        }
        return Ok(());
    }

    let finish_compare = |cmp: &Comparison| -> Result<(), Error> {
        for line in &cmp.lines {
            println!("  {line}");
        }
        println!(
            "compare: {} regression(s), {} improvement(s), {} drift(s), {} skipped \
             (threshold {:.0}%)",
            cmp.regressions,
            cmp.improvements,
            cmp.drifts,
            cmp.skipped,
            threshold * 100.0
        );
        if gate && cmp.gate_failed() {
            // The gate is a deliberate local/manual switch; CI runs
            // report-only (no --gate), so a noisy runner can't block it.
            eprintln!("bench gate FAILED");
            std::process::exit(2);
        }
        Ok(())
    };

    // File-vs-file comparison mode: no suite run at all.
    if let Some((old_path, new_path)) = compare_files {
        let (old_doc, new_doc) = (load(&old_path)?, load(&new_path)?);
        println!("comparing {new_path} against baseline {old_path}:");
        return finish_compare(&compare(&old_doc, &new_doc, threshold));
    }

    let suites: Vec<(&str, Vec<sapred_bench::harness::CellSpec>)> = match suite.as_str() {
        "dispatch" => vec![("dispatch", dispatch_suite(quick))],
        "pipeline" => vec![("pipeline", pipeline_suite(quick))],
        "fleet" => vec![("fleet", fleet_suite(quick))],
        "scale" => vec![("scale", scale_suite(quick))],
        "all" => vec![
            ("dispatch", dispatch_suite(quick)),
            ("pipeline", pipeline_suite(quick)),
            ("fleet", fleet_suite(quick)),
            ("scale", scale_suite(quick)),
        ],
        other => {
            return Err(Error::invalid(format!(
                "unknown suite `{other}` (expected dispatch|pipeline|fleet|scale|all)"
            )))
        }
    };
    if compare_path.is_some() && suites.len() > 1 {
        return Err(Error::invalid(
            "--compare needs a single suite (add --suite dispatch, pipeline, fleet, or scale)",
        ));
    }

    std::fs::create_dir_all(&out_dir).map_err(|e| Error::io(format!("create {out_dir}"), e))?;
    for (name, mut specs) in suites {
        if let Some(n) = iters_override {
            for spec in &mut specs {
                spec.iters = n;
            }
        }
        // Load the baseline *before* the run writes anything: the fresh
        // report may land on the very path being compared against.
        let baseline = match &compare_path {
            Some(path) => Some((path.clone(), load(path)?)),
            None => None,
        };
        println!(
            "running {name} suite ({} cells{}, {threads} worker thread(s))...",
            specs.len(),
            if quick { ", quick" } else { "" }
        );
        let cells = run_suite(&specs, threads);
        print_cells(&cells);
        let text = suite_json(name, quick, &cells);
        let fresh =
            validate_schema(&text).map_err(|e| Error::invalid(format!("emitted report: {e}")))?;
        let path = format!("{out_dir}/BENCH_{name}.json");
        write_atomic(&path, &text).map_err(|e| Error::io(format!("write {path}"), e))?;
        println!("wrote {path}");
        if let Some((baseline_path, baseline)) = baseline {
            println!("comparing against baseline {baseline_path}:");
            finish_compare(&compare(&baseline, &fresh, threshold))?;
        }
    }
    Ok(())
}

fn print_cells(cells: &[CellResult]) {
    for cell in cells {
        if let Some(err) = &cell.error {
            println!("  {:<22} FAILED: {err}", cell.name);
            continue;
        }
        let wall = cell.metrics.get("wall_p50_s").copied().unwrap_or(0.0);
        // Fleet cells headline sims/s; everything else events/s.
        let rate = match cell.metrics.get("sims_per_s") {
            Some(&sims) => format!("{sims:>12.2} sims/s  "),
            None => {
                let events = cell.metrics.get("events_per_s").copied().unwrap_or(0.0);
                format!("{events:>12.0} events/s")
            }
        };
        let dropped = cell.counters.get("span_samples_dropped").copied().unwrap_or(0);
        println!(
            "  {:<22} wall p50 {:>9.4}s | {rate} | {}{}",
            cell.name,
            wall,
            if cell.deterministic { "deterministic" } else { "NON-DETERMINISTIC" },
            if dropped > 0 {
                format!(" | {dropped} span sample(s) dropped past the cap")
            } else {
                String::new()
            }
        );
    }
}

fn cmd_motivation(flags: &HashMap<String, String>) -> Result<(), Error> {
    let small = flag_f64(flags, "small", 10.0)?;
    let big = flag_f64(flags, "big", 100.0)?;
    let mut pipe = Pipeline::with_seed(2018);
    let fw = *pipe.framework();
    let report = motivation(pipe.pool_mut(), &fw, None, small, big);
    println!("{report}");
    println!("small-query slowdown under HCS: {:.2}x", report.small_query_slowdown());
    Ok(())
}
