//! `sapred` — command-line driver for the semantics-aware query prediction
//! framework. A thin shell over [`sapred::core::Pipeline`]: every command
//! walks some prefix of the staged lifecycle (percolate → train → predict
//! → simulate).
//!
//! ```text
//! sapred explain    --sql "SELECT ..." [--scale GB]        # DAG + estimates vs ground truth
//! sapred gather     --scale GB --out catalog.json          # export metastore statistics
//! sapred train      [--queries N] [--seed S]               # fit models, print Tables 3-5
//! sapred predict    --sql "SELECT ..." [--scale GB]        # train + predict one query
//! sapred simulate   --mix bing|facebook [--gap S] [--divisor D]   # Fig. 8
//! sapred trace      bing|facebook [--out trace.json] [--events events.jsonl] [--metrics metrics.json]
//! sapred motivation [--small GB] [--big GB]                # Figs. 1-2
//! ```

use sapred::cluster::sched::{Fifo, Hcs, Hfs, Scheduler, Srt, Swrd};
use sapred::cluster::{
    AdmissionConfig, DemandOracle, FaultPlan, FrozenOracle, GuardedOracle, ShedPolicy, SimReport,
};
use sapred::core::experiments::accuracy::{job_accuracy, map_task_accuracy, reduce_task_accuracy};
use sapred::core::experiments::motivation::motivation;
use sapred::core::experiments::scheduling::{run_schedulers, PreparedWorkload};
use sapred::core::telemetry::record_sim_outcomes;
use sapred::core::{Error, Pipeline, RecalibratingOracle};
use sapred::obs::{ChromeTraceSink, EventSink, JsonlSink, MetricsSink, Tee};
use sapred::plan::ground_truth::execute_dag;
use sapred::relation::persist::save_catalog;
use sapred::workload::mixes::{bing_mix, facebook_mix, MixSpec};
use sapred::workload::population::PopulationConfig;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `trace` takes its workload positionally, so it parses its own args.
    let result = if command == "trace" {
        cmd_trace(&args[1..])
    } else {
        match parse_flags(&args[1..]) {
            Ok(flags) => match command.as_str() {
                "explain" => cmd_explain(&flags),
                "gather" => cmd_gather(&flags),
                "train" => cmd_train(&flags),
                "predict" => cmd_predict(&flags),
                "simulate" => cmd_simulate(&flags),
                "motivation" => cmd_motivation(&flags),
                "help" | "--help" | "-h" => {
                    println!("{USAGE}");
                    Ok(())
                }
                other => Err(Error::invalid(format!("unknown command `{other}`"))),
            },
            Err(e) => Err(e),
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "sapred — semantics-aware query prediction for MapReduce

USAGE:
  sapred explain    --sql <QUERY> [--scale <GB>] [--seed <N>]
  sapred gather     --scale <GB> --out <FILE> [--seed <N>]
  sapred train      [--queries <N>] [--seed <N>]
  sapred predict    --sql <QUERY> [--scale <GB>] [--queries <N>]
  sapred simulate   --mix <bing|facebook> [--gap <SECONDS>] [--divisor <D>] [--queries <N>]
  sapred trace      <bing|facebook> [--sched <swrd|hcs|hfs|fifo|srt>] [--out <trace.json>]
                    [--events <events.jsonl>] [--metrics <metrics.json>] [--oracle <frozen|recalibrating>]
                    [--gap <SECONDS>] [--divisor <D>] [--queries <N>] [--seed <N>]
                    [--queue-cap <N>] [--deadline <SECONDS>]
                    [--shed-policy <reject-newest|largest-wrd>] [--guard <on|off>]
  sapred motivation [--small <GB>] [--big <GB>]";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, Error> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(Error::invalid(format!("expected a --flag, found `{key}`")));
        };
        let value = it.next().ok_or_else(|| Error::invalid(format!("--{name} needs a value")))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn flag_f64(flags: &HashMap<String, String>, name: &str, default: f64) -> Result<f64, Error> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => {
            v.parse().map_err(|_| Error::invalid(format!("--{name} expects a number, got `{v}`")))
        }
    }
}

fn flag_usize(flags: &HashMap<String, String>, name: &str, default: usize) -> Result<usize, Error> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => {
            v.parse().map_err(|_| Error::invalid(format!("--{name} expects an integer, got `{v}`")))
        }
    }
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, Error> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| Error::invalid(format!("--{name} is required")))
}

fn cmd_explain(flags: &HashMap<String, String>) -> Result<(), Error> {
    let sql = required(flags, "sql")?;
    let scale = flag_f64(flags, "scale", 10.0)?;
    let seed = flag_usize(flags, "seed", 42)? as u64;
    let mut pipe = Pipeline::with_seed(seed);
    println!("generating a {scale} GB TPC-H instance (seed {seed})...");
    let semantics = pipe.percolate_sql("cli", sql, scale)?;
    let block_size = pipe.framework().est_config.block_size;
    let actuals = execute_dag(&semantics.dag, pipe.database(scale), block_size);
    println!("\n{} job(s):", semantics.dag.len());
    for (job, (est, act)) in
        semantics.dag.jobs().iter().zip(semantics.estimates.iter().zip(&actuals))
    {
        let deps = job.deps();
        let deps = if deps.is_empty() {
            "-".to_string()
        } else {
            deps.iter().map(|d| format!("J{d}")).collect::<Vec<_>>().join(",")
        };
        println!(
            "  J{} {:<8} deps {:<6} D_in {:>8.3} GB | IS est {:.3} act {:.3} | \
             FS est {:.4} act {:.4} | {} maps{}",
            job.id,
            job.category().to_string(),
            deps,
            est.d_in / 1e9,
            est.is,
            act.is_ratio(),
            est.fs,
            act.fs_ratio(),
            est.n_maps,
            if job.broadcasts.is_empty() {
                String::new()
            } else {
                format!(" | {} map-join(s)", job.broadcasts.len())
            },
        );
    }
    Ok(())
}

fn cmd_gather(flags: &HashMap<String, String>) -> Result<(), Error> {
    let scale = flag_f64(flags, "scale", 1.0)?;
    let out = required(flags, "out")?;
    let seed = flag_usize(flags, "seed", 42)? as u64;
    let mut pipe = Pipeline::with_seed(seed);
    let catalog = pipe.database(scale).catalog();
    save_catalog(catalog, out).map_err(|e| Error::io(format!("write {out}"), e))?;
    println!("wrote statistics for {} tables to {out}", catalog.len());
    Ok(())
}

/// A pipeline trained on the CLI's standard population.
fn trained_pipeline(n_queries: usize, seed: u64) -> Result<Pipeline, Error> {
    let mut pipe = Pipeline::with_seed(seed);
    let config = PopulationConfig {
        n_queries,
        scales_gb: vec![1.0, 2.0, 5.0, 10.0, 20.0, 50.0],
        scale_out_gb: vec![],
        seed,
    };
    pipe.train(&config)?;
    Ok(pipe)
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), Error> {
    let n = flag_usize(flags, "queries", 400)?;
    let seed = flag_usize(flags, "seed", 71)? as u64;
    let mut pipe = Pipeline::with_seed(seed);
    let config = PopulationConfig {
        n_queries: n,
        scales_gb: vec![1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0],
        scale_out_gb: vec![150.0, 200.0],
        seed,
    };
    println!("running {n} training queries on the simulated cluster...");
    let fw = *pipe.framework();
    let training = pipe.train(&config)?;
    let (train, test) = training.split();
    println!("\n{}", job_accuracy(&train, &test, &training.models));
    println!("\n{}", map_task_accuracy(&train, &training.models, &fw));
    println!("\n{}", reduce_task_accuracy(&train, &training.models, &fw));
    Ok(())
}

fn cmd_predict(flags: &HashMap<String, String>) -> Result<(), Error> {
    let sql = required(flags, "sql")?;
    let scale = flag_f64(flags, "scale", 10.0)?;
    let n = flag_usize(flags, "queries", 150)?;
    println!("training on {n} queries...");
    let mut pipe = trained_pipeline(n, 7)?;
    let semantics = pipe.percolate_sql("cli", sql, scale)?;
    let predictor = pipe.predictor()?;
    for (job, est) in semantics.dag.jobs().iter().zip(&semantics.estimates) {
        let p = predictor.job_prediction(est, job.kind.has_reduce());
        println!(
            "J{} {:<8} job {:>7.1}s | map task {:>5.1}s | reduce task {:>5.1}s",
            job.id,
            job.category().to_string(),
            predictor.job_seconds(est),
            p.map_task_time,
            p.reduce_task_time
        );
    }
    println!("query WRD: {:.0} container-seconds", predictor.query_wrd(&semantics));
    println!("predicted response (idle cluster): {:.1}s", predictor.query_seconds(&semantics));
    Ok(())
}

fn parse_mix(name: &str) -> Result<MixSpec, Error> {
    match name {
        "bing" => Ok(bing_mix()),
        "facebook" => Ok(facebook_mix()),
        other => Err(Error::invalid(format!("unknown mix `{other}` (expected bing|facebook)"))),
    }
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), Error> {
    let mix = parse_mix(required(flags, "mix")?)?;
    let gap = flag_f64(flags, "gap", if mix.name == "bing" { 8.0 } else { 3.0 })?;
    let divisor = flag_f64(flags, "divisor", 1.0)?;
    let n = flag_usize(flags, "queries", 200)?;
    println!("training on {n} queries...");
    let mut pipe = trained_pipeline(n, 79)?;
    println!("preparing the {} mix (gap {gap}s, scale /{divisor})...", mix.name);
    let prepared = pipe.prepare_mix(&mix, gap, divisor, 79);
    println!("\n{}", run_schedulers(&prepared, pipe.framework(), true));
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), Error> {
    // The workload may be given positionally (`sapred trace bing`) or via
    // `--mix`, matching `simulate`.
    let (positional, rest) = match args.first() {
        Some(a) if !a.starts_with("--") => (Some(a.as_str()), &args[1..]),
        _ => (None, args),
    };
    let flags = parse_flags(rest)?;
    let mix = match positional {
        Some(name) => parse_mix(name)?,
        None => parse_mix(required(&flags, "mix")?)?,
    };
    let gap = flag_f64(&flags, "gap", if mix.name == "bing" { 8.0 } else { 3.0 })?;
    let divisor = flag_f64(&flags, "divisor", 1.0)?;
    let n = flag_usize(&flags, "queries", 200)?;
    let seed = flag_usize(&flags, "seed", 79)? as u64;
    let sched_name = flags.get("sched").map(String::as_str).unwrap_or("swrd");
    let oracle_name = flags.get("oracle").map(String::as_str).unwrap_or("frozen");
    let trace_path = flags.get("out").map(String::as_str).unwrap_or("trace.json");
    let events_path = flags.get("events").map(String::as_str).unwrap_or("events.jsonl");
    let metrics_path = flags.get("metrics").map(String::as_str).unwrap_or("metrics.json");

    // Overload knobs: a bounded admission queue with a shed policy, per-query
    // deadlines, and the prediction guardrails. All default to off, in which
    // case the run is bit-identical to the pre-admission engine.
    let shed_policy = match flags.get("shed-policy").map(String::as_str).unwrap_or("reject-newest")
    {
        "reject-newest" => ShedPolicy::RejectNewest,
        "largest-wrd" => ShedPolicy::ShedLargestWrd,
        other => {
            return Err(Error::invalid(format!(
                "unknown shed policy `{other}` (expected reject-newest|largest-wrd)"
            )))
        }
    };
    let admission = AdmissionConfig {
        queue_cap: flag_usize(&flags, "queue-cap", 0)?,
        deadline: flag_f64(&flags, "deadline", f64::INFINITY)?,
        shed_policy,
        ..AdmissionConfig::default()
    };
    let guard = match flags.get("guard").map(String::as_str).unwrap_or("off") {
        "on" => true,
        "off" => false,
        other => return Err(Error::invalid(format!("--guard expects on|off, got `{other}`"))),
    };

    println!("training on {n} queries...");
    let mut pipe = trained_pipeline(n, seed)?;
    println!("preparing the {} mix (gap {gap}s, scale /{divisor})...", mix.name);
    let prepared = pipe.prepare_mix(&mix, gap, divisor, seed);

    let events_file = std::fs::File::create(events_path)
        .map_err(|e| Error::io(format!("create {events_path}"), e))?;
    let mut sink = Tee::new(
        JsonlSink::new(std::io::BufWriter::new(events_file)),
        Tee::new(
            ChromeTraceSink::new(),
            MetricsSink::new(pipe.framework().cluster.total_containers()),
        ),
    );

    // The online stage: `frozen` replays the percolated predictions;
    // `recalibrating` lets each completed job's actuals re-rank the rest.
    // `--guard on` wraps either one in the prediction guardrails (quarantine
    // plus trust-driven degraded-mode scheduling).
    let recalibrating = match oracle_name {
        "frozen" => false,
        "recalibrating" => true,
        other => {
            return Err(Error::invalid(format!(
                "unknown oracle `{other}` (expected frozen|recalibrating)"
            )))
        }
    };
    let mut frozen = FrozenOracle;
    let mut guarded_frozen = GuardedOracle::new(FrozenOracle);
    let mut recal = RecalibratingOracle::new();
    let mut guarded_recal = GuardedOracle::new(RecalibratingOracle::new());
    let oracle: &mut dyn DemandOracle = match (recalibrating, guard) {
        (false, false) => &mut frozen,
        (false, true) => &mut guarded_frozen,
        (true, false) => &mut recal,
        (true, true) => &mut guarded_recal,
    };
    fn run_one<S: Scheduler, K: EventSink>(
        pipe: &Pipeline,
        sched: S,
        prepared: &PreparedWorkload,
        sink: &mut K,
        admission: AdmissionConfig,
        oracle: &mut dyn DemandOracle,
    ) -> Result<SimReport, Error> {
        pipe.simulate_admitted(sched, FaultPlan::none(), admission, &prepared.queries, sink, oracle)
    }
    println!("tracing {} queries under {}...", prepared.queries.len(), sched_name.to_uppercase());
    let report = match sched_name {
        "swrd" => run_one(&pipe, Swrd, &prepared, &mut sink, admission, &mut *oracle)?,
        "hcs" => run_one(&pipe, Hcs, &prepared, &mut sink, admission, &mut *oracle)?,
        "hfs" => run_one(&pipe, Hfs, &prepared, &mut sink, admission, &mut *oracle)?,
        "fifo" => run_one(&pipe, Fifo, &prepared, &mut sink, admission, &mut *oracle)?,
        "srt" => run_one(&pipe, Srt, &prepared, &mut sink, admission, &mut *oracle)?,
        other => {
            return Err(Error::invalid(format!(
                "unknown scheduler `{other}` (expected swrd|hcs|hfs|fifo|srt)"
            )))
        }
    };
    let (trust, degraded) = (oracle.trust(), oracle.degraded());
    // Post-hoc prediction-drift telemetry against the simulated truth.
    record_sim_outcomes(&prepared.queries, &report, &pipe.framework().cluster, &mut sink);

    let Tee { a: jsonl, b: Tee { a: chrome, b: mut metrics } } = sink;
    let lines = jsonl.lines();
    jsonl.finish().map_err(|e| Error::io(format!("write {events_path}"), e))?;
    let trace_file = std::fs::File::create(trace_path)
        .map_err(|e| Error::io(format!("create {trace_path}"), e))?;
    chrome
        .write(std::io::BufWriter::new(trace_file))
        .map_err(|e| Error::io(format!("write {trace_path}"), e))?;
    std::fs::write(metrics_path, metrics.finish(report.makespan))
        .map_err(|e| Error::io(format!("write {metrics_path}"), e))?;

    println!("\nmakespan {:.1}s, mean response {:.1}s", report.makespan, report.mean_response());
    println!("container utilization: {:.1}%", 100.0 * metrics.utilization(report.makespan));
    if admission.is_active() {
        let a = &report.admission;
        println!(
            "admission: {} shed, {} rejected, {} resubmissions, {} deadline misses \
             (max {} active)",
            a.queries_shed,
            a.queries_rejected.len(),
            a.resubmissions,
            a.deadline_misses.len(),
            a.max_active
        );
    }
    if guard {
        println!(
            "prediction guard: trust {trust:.2}{}",
            if degraded { ", in degraded mode" } else { "" }
        );
    }
    if recalibrating {
        let drift = if guard { guarded_recal.inner().drift() } else { recal.drift() };
        println!("\nmid-run recalibration drift (the oracle's view):\n{drift}");
    }
    println!("\nprediction drift vs simulated truth:\n{}", metrics.drift);
    println!("wrote {lines} events to {events_path}");
    println!(
        "wrote {} trace spans to {trace_path} (chrome://tracing, ui.perfetto.dev)",
        chrome.span_count()
    );
    println!("wrote metrics to {metrics_path}");
    Ok(())
}

fn cmd_motivation(flags: &HashMap<String, String>) -> Result<(), Error> {
    let small = flag_f64(flags, "small", 10.0)?;
    let big = flag_f64(flags, "big", 100.0)?;
    let mut pipe = Pipeline::with_seed(2018);
    let fw = *pipe.framework();
    let report = motivation(pipe.pool_mut(), &fw, None, small, big);
    println!("{report}");
    println!("small-query slowdown under HCS: {:.2}x", report.small_query_slowdown());
    Ok(())
}
