//! Umbrella crate for the semantics-aware query prediction reproduction.
//!
//! Re-exports every subsystem crate under one roof so examples and
//! integration tests can `use sapred::...`. See the README for an overview
//! and `DESIGN.md` for the system inventory.

pub use sapred_cluster as cluster;
pub use sapred_core as core;
pub use sapred_obs as obs;
pub use sapred_plan as plan;
pub use sapred_predict as predict;
pub use sapred_query as query;
pub use sapred_relation as relation;
pub use sapred_selectivity as selectivity;
pub use sapred_workload as workload;
