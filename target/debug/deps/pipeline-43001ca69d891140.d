/root/repo/target/debug/deps/pipeline-43001ca69d891140.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-43001ca69d891140: tests/pipeline.rs

tests/pipeline.rs:
