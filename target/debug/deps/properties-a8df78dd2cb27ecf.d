/root/repo/target/debug/deps/properties-a8df78dd2cb27ecf.d: tests/properties.rs

/root/repo/target/debug/deps/properties-a8df78dd2cb27ecf: tests/properties.rs

tests/properties.rs:
