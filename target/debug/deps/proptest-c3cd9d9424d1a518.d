/root/repo/target/debug/deps/proptest-c3cd9d9424d1a518.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c3cd9d9424d1a518.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c3cd9d9424d1a518.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
