/root/repo/target/debug/deps/sapred-18a7e6ff5a234112.d: src/bin/sapred.rs

/root/repo/target/debug/deps/sapred-18a7e6ff5a234112: src/bin/sapred.rs

src/bin/sapred.rs:
