/root/repo/target/debug/deps/sapred-5c41cd1f1a2fde04.d: src/lib.rs

/root/repo/target/debug/deps/libsapred-5c41cd1f1a2fde04.rlib: src/lib.rs

/root/repo/target/debug/deps/libsapred-5c41cd1f1a2fde04.rmeta: src/lib.rs

src/lib.rs:
