/root/repo/target/debug/deps/sapred-730fcf8e332b4d1f.d: src/bin/sapred.rs

/root/repo/target/debug/deps/sapred-730fcf8e332b4d1f: src/bin/sapred.rs

src/bin/sapred.rs:
