/root/repo/target/debug/deps/sapred-b934698e87bc58da.d: src/lib.rs

/root/repo/target/debug/deps/sapred-b934698e87bc58da: src/lib.rs

src/lib.rs:
