/root/repo/target/debug/deps/sapred_bench-1f702b49f1b6ed0e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsapred_bench-1f702b49f1b6ed0e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsapred_bench-1f702b49f1b6ed0e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
