/root/repo/target/debug/deps/sapred_cluster-010dc3faddcdbd7a.d: crates/cluster/src/lib.rs crates/cluster/src/build.rs crates/cluster/src/cost.rs crates/cluster/src/fault.rs crates/cluster/src/job.rs crates/cluster/src/sched.rs crates/cluster/src/sim/mod.rs crates/cluster/src/sim/admission.rs crates/cluster/src/sim/dispatch.rs crates/cluster/src/sim/engine.rs crates/cluster/src/sim/oracle.rs crates/cluster/src/sim/recovery.rs crates/cluster/src/sim/report.rs crates/cluster/src/sim/state.rs

/root/repo/target/debug/deps/libsapred_cluster-010dc3faddcdbd7a.rlib: crates/cluster/src/lib.rs crates/cluster/src/build.rs crates/cluster/src/cost.rs crates/cluster/src/fault.rs crates/cluster/src/job.rs crates/cluster/src/sched.rs crates/cluster/src/sim/mod.rs crates/cluster/src/sim/admission.rs crates/cluster/src/sim/dispatch.rs crates/cluster/src/sim/engine.rs crates/cluster/src/sim/oracle.rs crates/cluster/src/sim/recovery.rs crates/cluster/src/sim/report.rs crates/cluster/src/sim/state.rs

/root/repo/target/debug/deps/libsapred_cluster-010dc3faddcdbd7a.rmeta: crates/cluster/src/lib.rs crates/cluster/src/build.rs crates/cluster/src/cost.rs crates/cluster/src/fault.rs crates/cluster/src/job.rs crates/cluster/src/sched.rs crates/cluster/src/sim/mod.rs crates/cluster/src/sim/admission.rs crates/cluster/src/sim/dispatch.rs crates/cluster/src/sim/engine.rs crates/cluster/src/sim/oracle.rs crates/cluster/src/sim/recovery.rs crates/cluster/src/sim/report.rs crates/cluster/src/sim/state.rs

crates/cluster/src/lib.rs:
crates/cluster/src/build.rs:
crates/cluster/src/cost.rs:
crates/cluster/src/fault.rs:
crates/cluster/src/job.rs:
crates/cluster/src/sched.rs:
crates/cluster/src/sim/mod.rs:
crates/cluster/src/sim/admission.rs:
crates/cluster/src/sim/dispatch.rs:
crates/cluster/src/sim/engine.rs:
crates/cluster/src/sim/oracle.rs:
crates/cluster/src/sim/recovery.rs:
crates/cluster/src/sim/report.rs:
crates/cluster/src/sim/state.rs:
