/root/repo/target/debug/deps/sapred_core-8c8c5b7e3bef4e8d.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablation.rs crates/core/src/experiments/accuracy.rs crates/core/src/experiments/motivation.rs crates/core/src/experiments/query_time.rs crates/core/src/experiments/scheduling.rs crates/core/src/framework.rs crates/core/src/oracle.rs crates/core/src/pipeline.rs crates/core/src/progress.rs crates/core/src/report.rs crates/core/src/telemetry.rs crates/core/src/training.rs

/root/repo/target/debug/deps/libsapred_core-8c8c5b7e3bef4e8d.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablation.rs crates/core/src/experiments/accuracy.rs crates/core/src/experiments/motivation.rs crates/core/src/experiments/query_time.rs crates/core/src/experiments/scheduling.rs crates/core/src/framework.rs crates/core/src/oracle.rs crates/core/src/pipeline.rs crates/core/src/progress.rs crates/core/src/report.rs crates/core/src/telemetry.rs crates/core/src/training.rs

/root/repo/target/debug/deps/libsapred_core-8c8c5b7e3bef4e8d.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablation.rs crates/core/src/experiments/accuracy.rs crates/core/src/experiments/motivation.rs crates/core/src/experiments/query_time.rs crates/core/src/experiments/scheduling.rs crates/core/src/framework.rs crates/core/src/oracle.rs crates/core/src/pipeline.rs crates/core/src/progress.rs crates/core/src/report.rs crates/core/src/telemetry.rs crates/core/src/training.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/ablation.rs:
crates/core/src/experiments/accuracy.rs:
crates/core/src/experiments/motivation.rs:
crates/core/src/experiments/query_time.rs:
crates/core/src/experiments/scheduling.rs:
crates/core/src/framework.rs:
crates/core/src/oracle.rs:
crates/core/src/pipeline.rs:
crates/core/src/progress.rs:
crates/core/src/report.rs:
crates/core/src/telemetry.rs:
crates/core/src/training.rs:
