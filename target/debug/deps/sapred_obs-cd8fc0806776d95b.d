/root/repo/target/debug/deps/sapred_obs-cd8fc0806776d95b.d: crates/obs/src/lib.rs crates/obs/src/drift.rs crates/obs/src/event.rs crates/obs/src/ids.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libsapred_obs-cd8fc0806776d95b.rlib: crates/obs/src/lib.rs crates/obs/src/drift.rs crates/obs/src/event.rs crates/obs/src/ids.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libsapred_obs-cd8fc0806776d95b.rmeta: crates/obs/src/lib.rs crates/obs/src/drift.rs crates/obs/src/event.rs crates/obs/src/ids.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/drift.rs:
crates/obs/src/event.rs:
crates/obs/src/ids.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sink.rs:
crates/obs/src/trace.rs:
