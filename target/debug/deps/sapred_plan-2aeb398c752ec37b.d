/root/repo/target/debug/deps/sapred_plan-2aeb398c752ec37b.d: crates/plan/src/lib.rs crates/plan/src/builder.rs crates/plan/src/compile.rs crates/plan/src/dag.rs crates/plan/src/ground_truth.rs

/root/repo/target/debug/deps/libsapred_plan-2aeb398c752ec37b.rlib: crates/plan/src/lib.rs crates/plan/src/builder.rs crates/plan/src/compile.rs crates/plan/src/dag.rs crates/plan/src/ground_truth.rs

/root/repo/target/debug/deps/libsapred_plan-2aeb398c752ec37b.rmeta: crates/plan/src/lib.rs crates/plan/src/builder.rs crates/plan/src/compile.rs crates/plan/src/dag.rs crates/plan/src/ground_truth.rs

crates/plan/src/lib.rs:
crates/plan/src/builder.rs:
crates/plan/src/compile.rs:
crates/plan/src/dag.rs:
crates/plan/src/ground_truth.rs:
