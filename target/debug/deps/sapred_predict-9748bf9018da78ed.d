/root/repo/target/debug/deps/sapred_predict-9748bf9018da78ed.d: crates/predict/src/lib.rs crates/predict/src/features.rs crates/predict/src/linalg.rs crates/predict/src/metrics.rs crates/predict/src/model.rs crates/predict/src/wrd.rs

/root/repo/target/debug/deps/libsapred_predict-9748bf9018da78ed.rlib: crates/predict/src/lib.rs crates/predict/src/features.rs crates/predict/src/linalg.rs crates/predict/src/metrics.rs crates/predict/src/model.rs crates/predict/src/wrd.rs

/root/repo/target/debug/deps/libsapred_predict-9748bf9018da78ed.rmeta: crates/predict/src/lib.rs crates/predict/src/features.rs crates/predict/src/linalg.rs crates/predict/src/metrics.rs crates/predict/src/model.rs crates/predict/src/wrd.rs

crates/predict/src/lib.rs:
crates/predict/src/features.rs:
crates/predict/src/linalg.rs:
crates/predict/src/metrics.rs:
crates/predict/src/model.rs:
crates/predict/src/wrd.rs:
