/root/repo/target/debug/deps/sapred_query-617dbea4390767d0.d: crates/query/src/lib.rs crates/query/src/analyze.rs crates/query/src/ast.rs crates/query/src/error.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/pig.rs

/root/repo/target/debug/deps/libsapred_query-617dbea4390767d0.rlib: crates/query/src/lib.rs crates/query/src/analyze.rs crates/query/src/ast.rs crates/query/src/error.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/pig.rs

/root/repo/target/debug/deps/libsapred_query-617dbea4390767d0.rmeta: crates/query/src/lib.rs crates/query/src/analyze.rs crates/query/src/ast.rs crates/query/src/error.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/pig.rs

crates/query/src/lib.rs:
crates/query/src/analyze.rs:
crates/query/src/ast.rs:
crates/query/src/error.rs:
crates/query/src/lexer.rs:
crates/query/src/parser.rs:
crates/query/src/pig.rs:
