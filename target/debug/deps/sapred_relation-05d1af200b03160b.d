/root/repo/target/debug/deps/sapred_relation-05d1af200b03160b.d: crates/relation/src/lib.rs crates/relation/src/dist.rs crates/relation/src/exec.rs crates/relation/src/expr.rs crates/relation/src/gen.rs crates/relation/src/histogram.rs crates/relation/src/persist.rs crates/relation/src/schema.rs crates/relation/src/stats.rs crates/relation/src/table.rs

/root/repo/target/debug/deps/libsapred_relation-05d1af200b03160b.rlib: crates/relation/src/lib.rs crates/relation/src/dist.rs crates/relation/src/exec.rs crates/relation/src/expr.rs crates/relation/src/gen.rs crates/relation/src/histogram.rs crates/relation/src/persist.rs crates/relation/src/schema.rs crates/relation/src/stats.rs crates/relation/src/table.rs

/root/repo/target/debug/deps/libsapred_relation-05d1af200b03160b.rmeta: crates/relation/src/lib.rs crates/relation/src/dist.rs crates/relation/src/exec.rs crates/relation/src/expr.rs crates/relation/src/gen.rs crates/relation/src/histogram.rs crates/relation/src/persist.rs crates/relation/src/schema.rs crates/relation/src/stats.rs crates/relation/src/table.rs

crates/relation/src/lib.rs:
crates/relation/src/dist.rs:
crates/relation/src/exec.rs:
crates/relation/src/expr.rs:
crates/relation/src/gen.rs:
crates/relation/src/histogram.rs:
crates/relation/src/persist.rs:
crates/relation/src/schema.rs:
crates/relation/src/stats.rs:
crates/relation/src/table.rs:
