/root/repo/target/debug/deps/sapred_selectivity-87999c9f34fb4149.d: crates/selectivity/src/lib.rs crates/selectivity/src/estimate.rs crates/selectivity/src/formulas.rs crates/selectivity/src/pred.rs crates/selectivity/src/profile.rs

/root/repo/target/debug/deps/libsapred_selectivity-87999c9f34fb4149.rlib: crates/selectivity/src/lib.rs crates/selectivity/src/estimate.rs crates/selectivity/src/formulas.rs crates/selectivity/src/pred.rs crates/selectivity/src/profile.rs

/root/repo/target/debug/deps/libsapred_selectivity-87999c9f34fb4149.rmeta: crates/selectivity/src/lib.rs crates/selectivity/src/estimate.rs crates/selectivity/src/formulas.rs crates/selectivity/src/pred.rs crates/selectivity/src/profile.rs

crates/selectivity/src/lib.rs:
crates/selectivity/src/estimate.rs:
crates/selectivity/src/formulas.rs:
crates/selectivity/src/pred.rs:
crates/selectivity/src/profile.rs:
