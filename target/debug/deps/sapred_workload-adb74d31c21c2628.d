/root/repo/target/debug/deps/sapred_workload-adb74d31c21c2628.d: crates/workload/src/lib.rs crates/workload/src/mixes.rs crates/workload/src/pool.rs crates/workload/src/population.rs crates/workload/src/templates.rs

/root/repo/target/debug/deps/libsapred_workload-adb74d31c21c2628.rlib: crates/workload/src/lib.rs crates/workload/src/mixes.rs crates/workload/src/pool.rs crates/workload/src/population.rs crates/workload/src/templates.rs

/root/repo/target/debug/deps/libsapred_workload-adb74d31c21c2628.rmeta: crates/workload/src/lib.rs crates/workload/src/mixes.rs crates/workload/src/pool.rs crates/workload/src/population.rs crates/workload/src/templates.rs

crates/workload/src/lib.rs:
crates/workload/src/mixes.rs:
crates/workload/src/pool.rs:
crates/workload/src/population.rs:
crates/workload/src/templates.rs:
