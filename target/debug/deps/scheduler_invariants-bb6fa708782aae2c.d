/root/repo/target/debug/deps/scheduler_invariants-bb6fa708782aae2c.d: tests/scheduler_invariants.rs

/root/repo/target/debug/deps/scheduler_invariants-bb6fa708782aae2c: tests/scheduler_invariants.rs

tests/scheduler_invariants.rs:
