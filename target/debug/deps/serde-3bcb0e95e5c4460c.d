/root/repo/target/debug/deps/serde-3bcb0e95e5c4460c.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-3bcb0e95e5c4460c.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-3bcb0e95e5c4460c.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
