/root/repo/target/debug/deps/serde_derive-35bebdaef79ec75f.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-35bebdaef79ec75f.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
