/root/repo/target/debug/deps/serde_json-5f0056822a8b0898.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-5f0056822a8b0898.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-5f0056822a8b0898.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
