/root/repo/target/debug/deps/trace_events-9f90f35f474a6cd1.d: tests/trace_events.rs

/root/repo/target/debug/deps/trace_events-9f90f35f474a6cd1: tests/trace_events.rs

tests/trace_events.rs:
