/root/repo/target/debug/examples/capacity_planning-046e36795e57239b.d: examples/capacity_planning.rs

/root/repo/target/debug/examples/capacity_planning-046e36795e57239b: examples/capacity_planning.rs

examples/capacity_planning.rs:
