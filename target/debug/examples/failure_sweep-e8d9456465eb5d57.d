/root/repo/target/debug/examples/failure_sweep-e8d9456465eb5d57.d: examples/failure_sweep.rs

/root/repo/target/debug/examples/failure_sweep-e8d9456465eb5d57: examples/failure_sweep.rs

examples/failure_sweep.rs:
