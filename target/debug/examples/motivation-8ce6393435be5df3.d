/root/repo/target/debug/examples/motivation-8ce6393435be5df3.d: examples/motivation.rs

/root/repo/target/debug/examples/motivation-8ce6393435be5df3: examples/motivation.rs

examples/motivation.rs:
