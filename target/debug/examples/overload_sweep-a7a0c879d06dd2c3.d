/root/repo/target/debug/examples/overload_sweep-a7a0c879d06dd2c3.d: examples/overload_sweep.rs

/root/repo/target/debug/examples/overload_sweep-a7a0c879d06dd2c3: examples/overload_sweep.rs

examples/overload_sweep.rs:
