/root/repo/target/debug/examples/pig_latin-b44b94376e0d0988.d: examples/pig_latin.rs

/root/repo/target/debug/examples/pig_latin-b44b94376e0d0988: examples/pig_latin.rs

examples/pig_latin.rs:
