/root/repo/target/debug/examples/progress_monitor-aaad57d0a2b58343.d: examples/progress_monitor.rs

/root/repo/target/debug/examples/progress_monitor-aaad57d0a2b58343: examples/progress_monitor.rs

examples/progress_monitor.rs:
