/root/repo/target/debug/examples/quickstart-b9214151cf7272c2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b9214151cf7272c2: examples/quickstart.rs

examples/quickstart.rs:
