/root/repo/target/debug/examples/scheduler_comparison-66002d80439f87ec.d: examples/scheduler_comparison.rs

/root/repo/target/debug/examples/scheduler_comparison-66002d80439f87ec: examples/scheduler_comparison.rs

examples/scheduler_comparison.rs:
