/root/repo/target/release/deps/rand-4550a61d0c7801c4.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-4550a61d0c7801c4.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-4550a61d0c7801c4.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
