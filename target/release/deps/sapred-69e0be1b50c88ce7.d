/root/repo/target/release/deps/sapred-69e0be1b50c88ce7.d: src/lib.rs

/root/repo/target/release/deps/libsapred-69e0be1b50c88ce7.rlib: src/lib.rs

/root/repo/target/release/deps/libsapred-69e0be1b50c88ce7.rmeta: src/lib.rs

src/lib.rs:
