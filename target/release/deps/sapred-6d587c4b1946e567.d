/root/repo/target/release/deps/sapred-6d587c4b1946e567.d: src/bin/sapred.rs

/root/repo/target/release/deps/sapred-6d587c4b1946e567: src/bin/sapred.rs

src/bin/sapred.rs:
