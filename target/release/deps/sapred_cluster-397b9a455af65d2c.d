/root/repo/target/release/deps/sapred_cluster-397b9a455af65d2c.d: crates/cluster/src/lib.rs crates/cluster/src/build.rs crates/cluster/src/cost.rs crates/cluster/src/fault.rs crates/cluster/src/job.rs crates/cluster/src/sched.rs crates/cluster/src/sim/mod.rs crates/cluster/src/sim/admission.rs crates/cluster/src/sim/dispatch.rs crates/cluster/src/sim/engine.rs crates/cluster/src/sim/oracle.rs crates/cluster/src/sim/recovery.rs crates/cluster/src/sim/report.rs crates/cluster/src/sim/state.rs

/root/repo/target/release/deps/libsapred_cluster-397b9a455af65d2c.rlib: crates/cluster/src/lib.rs crates/cluster/src/build.rs crates/cluster/src/cost.rs crates/cluster/src/fault.rs crates/cluster/src/job.rs crates/cluster/src/sched.rs crates/cluster/src/sim/mod.rs crates/cluster/src/sim/admission.rs crates/cluster/src/sim/dispatch.rs crates/cluster/src/sim/engine.rs crates/cluster/src/sim/oracle.rs crates/cluster/src/sim/recovery.rs crates/cluster/src/sim/report.rs crates/cluster/src/sim/state.rs

/root/repo/target/release/deps/libsapred_cluster-397b9a455af65d2c.rmeta: crates/cluster/src/lib.rs crates/cluster/src/build.rs crates/cluster/src/cost.rs crates/cluster/src/fault.rs crates/cluster/src/job.rs crates/cluster/src/sched.rs crates/cluster/src/sim/mod.rs crates/cluster/src/sim/admission.rs crates/cluster/src/sim/dispatch.rs crates/cluster/src/sim/engine.rs crates/cluster/src/sim/oracle.rs crates/cluster/src/sim/recovery.rs crates/cluster/src/sim/report.rs crates/cluster/src/sim/state.rs

crates/cluster/src/lib.rs:
crates/cluster/src/build.rs:
crates/cluster/src/cost.rs:
crates/cluster/src/fault.rs:
crates/cluster/src/job.rs:
crates/cluster/src/sched.rs:
crates/cluster/src/sim/mod.rs:
crates/cluster/src/sim/admission.rs:
crates/cluster/src/sim/dispatch.rs:
crates/cluster/src/sim/engine.rs:
crates/cluster/src/sim/oracle.rs:
crates/cluster/src/sim/recovery.rs:
crates/cluster/src/sim/report.rs:
crates/cluster/src/sim/state.rs:
