/root/repo/target/release/deps/sapred_obs-e25cc823c54f30f6.d: crates/obs/src/lib.rs crates/obs/src/drift.rs crates/obs/src/event.rs crates/obs/src/ids.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libsapred_obs-e25cc823c54f30f6.rlib: crates/obs/src/lib.rs crates/obs/src/drift.rs crates/obs/src/event.rs crates/obs/src/ids.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libsapred_obs-e25cc823c54f30f6.rmeta: crates/obs/src/lib.rs crates/obs/src/drift.rs crates/obs/src/event.rs crates/obs/src/ids.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/drift.rs:
crates/obs/src/event.rs:
crates/obs/src/ids.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sink.rs:
crates/obs/src/trace.rs:
