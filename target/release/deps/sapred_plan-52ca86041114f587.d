/root/repo/target/release/deps/sapred_plan-52ca86041114f587.d: crates/plan/src/lib.rs crates/plan/src/builder.rs crates/plan/src/compile.rs crates/plan/src/dag.rs crates/plan/src/ground_truth.rs

/root/repo/target/release/deps/libsapred_plan-52ca86041114f587.rlib: crates/plan/src/lib.rs crates/plan/src/builder.rs crates/plan/src/compile.rs crates/plan/src/dag.rs crates/plan/src/ground_truth.rs

/root/repo/target/release/deps/libsapred_plan-52ca86041114f587.rmeta: crates/plan/src/lib.rs crates/plan/src/builder.rs crates/plan/src/compile.rs crates/plan/src/dag.rs crates/plan/src/ground_truth.rs

crates/plan/src/lib.rs:
crates/plan/src/builder.rs:
crates/plan/src/compile.rs:
crates/plan/src/dag.rs:
crates/plan/src/ground_truth.rs:
