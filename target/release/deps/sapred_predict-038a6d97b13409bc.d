/root/repo/target/release/deps/sapred_predict-038a6d97b13409bc.d: crates/predict/src/lib.rs crates/predict/src/features.rs crates/predict/src/linalg.rs crates/predict/src/metrics.rs crates/predict/src/model.rs crates/predict/src/wrd.rs

/root/repo/target/release/deps/libsapred_predict-038a6d97b13409bc.rlib: crates/predict/src/lib.rs crates/predict/src/features.rs crates/predict/src/linalg.rs crates/predict/src/metrics.rs crates/predict/src/model.rs crates/predict/src/wrd.rs

/root/repo/target/release/deps/libsapred_predict-038a6d97b13409bc.rmeta: crates/predict/src/lib.rs crates/predict/src/features.rs crates/predict/src/linalg.rs crates/predict/src/metrics.rs crates/predict/src/model.rs crates/predict/src/wrd.rs

crates/predict/src/lib.rs:
crates/predict/src/features.rs:
crates/predict/src/linalg.rs:
crates/predict/src/metrics.rs:
crates/predict/src/model.rs:
crates/predict/src/wrd.rs:
