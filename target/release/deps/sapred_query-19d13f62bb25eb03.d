/root/repo/target/release/deps/sapred_query-19d13f62bb25eb03.d: crates/query/src/lib.rs crates/query/src/analyze.rs crates/query/src/ast.rs crates/query/src/error.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/pig.rs

/root/repo/target/release/deps/libsapred_query-19d13f62bb25eb03.rlib: crates/query/src/lib.rs crates/query/src/analyze.rs crates/query/src/ast.rs crates/query/src/error.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/pig.rs

/root/repo/target/release/deps/libsapred_query-19d13f62bb25eb03.rmeta: crates/query/src/lib.rs crates/query/src/analyze.rs crates/query/src/ast.rs crates/query/src/error.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/pig.rs

crates/query/src/lib.rs:
crates/query/src/analyze.rs:
crates/query/src/ast.rs:
crates/query/src/error.rs:
crates/query/src/lexer.rs:
crates/query/src/parser.rs:
crates/query/src/pig.rs:
