/root/repo/target/release/deps/sapred_relation-ddac4ef5ac772f26.d: crates/relation/src/lib.rs crates/relation/src/dist.rs crates/relation/src/exec.rs crates/relation/src/expr.rs crates/relation/src/gen.rs crates/relation/src/histogram.rs crates/relation/src/persist.rs crates/relation/src/schema.rs crates/relation/src/stats.rs crates/relation/src/table.rs

/root/repo/target/release/deps/libsapred_relation-ddac4ef5ac772f26.rlib: crates/relation/src/lib.rs crates/relation/src/dist.rs crates/relation/src/exec.rs crates/relation/src/expr.rs crates/relation/src/gen.rs crates/relation/src/histogram.rs crates/relation/src/persist.rs crates/relation/src/schema.rs crates/relation/src/stats.rs crates/relation/src/table.rs

/root/repo/target/release/deps/libsapred_relation-ddac4ef5ac772f26.rmeta: crates/relation/src/lib.rs crates/relation/src/dist.rs crates/relation/src/exec.rs crates/relation/src/expr.rs crates/relation/src/gen.rs crates/relation/src/histogram.rs crates/relation/src/persist.rs crates/relation/src/schema.rs crates/relation/src/stats.rs crates/relation/src/table.rs

crates/relation/src/lib.rs:
crates/relation/src/dist.rs:
crates/relation/src/exec.rs:
crates/relation/src/expr.rs:
crates/relation/src/gen.rs:
crates/relation/src/histogram.rs:
crates/relation/src/persist.rs:
crates/relation/src/schema.rs:
crates/relation/src/stats.rs:
crates/relation/src/table.rs:
