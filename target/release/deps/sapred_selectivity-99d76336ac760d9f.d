/root/repo/target/release/deps/sapred_selectivity-99d76336ac760d9f.d: crates/selectivity/src/lib.rs crates/selectivity/src/estimate.rs crates/selectivity/src/formulas.rs crates/selectivity/src/pred.rs crates/selectivity/src/profile.rs

/root/repo/target/release/deps/libsapred_selectivity-99d76336ac760d9f.rlib: crates/selectivity/src/lib.rs crates/selectivity/src/estimate.rs crates/selectivity/src/formulas.rs crates/selectivity/src/pred.rs crates/selectivity/src/profile.rs

/root/repo/target/release/deps/libsapred_selectivity-99d76336ac760d9f.rmeta: crates/selectivity/src/lib.rs crates/selectivity/src/estimate.rs crates/selectivity/src/formulas.rs crates/selectivity/src/pred.rs crates/selectivity/src/profile.rs

crates/selectivity/src/lib.rs:
crates/selectivity/src/estimate.rs:
crates/selectivity/src/formulas.rs:
crates/selectivity/src/pred.rs:
crates/selectivity/src/profile.rs:
