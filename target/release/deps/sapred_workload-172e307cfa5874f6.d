/root/repo/target/release/deps/sapred_workload-172e307cfa5874f6.d: crates/workload/src/lib.rs crates/workload/src/mixes.rs crates/workload/src/pool.rs crates/workload/src/population.rs crates/workload/src/templates.rs

/root/repo/target/release/deps/libsapred_workload-172e307cfa5874f6.rlib: crates/workload/src/lib.rs crates/workload/src/mixes.rs crates/workload/src/pool.rs crates/workload/src/population.rs crates/workload/src/templates.rs

/root/repo/target/release/deps/libsapred_workload-172e307cfa5874f6.rmeta: crates/workload/src/lib.rs crates/workload/src/mixes.rs crates/workload/src/pool.rs crates/workload/src/population.rs crates/workload/src/templates.rs

crates/workload/src/lib.rs:
crates/workload/src/mixes.rs:
crates/workload/src/pool.rs:
crates/workload/src/population.rs:
crates/workload/src/templates.rs:
