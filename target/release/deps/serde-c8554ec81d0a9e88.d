/root/repo/target/release/deps/serde-c8554ec81d0a9e88.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c8554ec81d0a9e88.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c8554ec81d0a9e88.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
