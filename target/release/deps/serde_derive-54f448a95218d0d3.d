/root/repo/target/release/deps/serde_derive-54f448a95218d0d3.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-54f448a95218d0d3.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
