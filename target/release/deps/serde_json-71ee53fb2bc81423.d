/root/repo/target/release/deps/serde_json-71ee53fb2bc81423.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-71ee53fb2bc81423.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-71ee53fb2bc81423.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
