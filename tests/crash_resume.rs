//! Kill-and-resume differential harness for `sapred fleet` (DESIGN.md §6l).
//!
//! The crash model under test: a sweep with `--journal` is SIGKILLed at an
//! arbitrary instant — no destructors, no flush, no atexit — and a second
//! invocation with `--resume` must converge to a `sapred-fleet/v1` report
//! **byte-identical** to an uninterrupted sweep of the same grid. This is
//! the end-to-end counterpart of the in-process truncated-journal tests in
//! `crates/bench/tests/fleet.rs`: here the interruption is a real signal
//! against the real binary, not a simulated tear.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// The swept grid: 8 cells (2 schedulers × 2 fault levels × 2 seeds) sized
/// so each cell takes long enough in a debug build (~hundreds of ms) that
/// the kill below reliably lands mid-sweep.
const GRID_FLAGS: &[&str] = &[
    "--schedulers",
    "swrd,hcs",
    "--fail-probs",
    "0,0.08",
    "--seeds",
    "2",
    "--queries",
    "150",
    "--jobs",
    "4",
    "--maps",
    "60",
    "--reduces",
    "20",
    "--threads",
    "1",
];

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_sapred")
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sapred-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn fleet(journal: &Path, out: &Path, resume: bool) -> Command {
    let mut cmd = Command::new(bin());
    cmd.arg("fleet")
        .args(GRID_FLAGS)
        .arg("--journal")
        .arg(journal)
        .arg("--out")
        .arg(out)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    if resume {
        cmd.arg("--resume");
    }
    cmd
}

fn journal_entries(path: &Path) -> usize {
    // Header line + one line per completed cell.
    std::fs::read_to_string(path).map(|t| t.lines().count().saturating_sub(1)).unwrap_or(0)
}

#[test]
fn sigkilled_fleet_resumes_to_a_byte_identical_report() {
    let dir = scratch_dir("resume");

    // Uninterrupted reference sweep.
    let ref_journal = dir.join("reference-journal.jsonl");
    let ref_out = dir.join("reference-fleet.json");
    let output = fleet(&ref_journal, &ref_out, false).output().expect("spawn reference sweep");
    assert!(
        output.status.success(),
        "reference sweep failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let reference = std::fs::read(&ref_out).expect("reference report exists");

    // Victim sweep: SIGKILL as soon as the journal shows progress but
    // before it can possibly be complete (8 cells total).
    let journal = dir.join("journal.jsonl");
    let out = dir.join("fleet.json");
    let mut child = fleet(&journal, &out, false).spawn().expect("spawn victim sweep");
    let deadline = Instant::now() + Duration::from_secs(120);
    let killed_midway = loop {
        if child.try_wait().expect("poll victim").is_some() {
            break false; // Finished before we could kill it.
        }
        let entries = journal_entries(&journal);
        if (1..8).contains(&entries) {
            child.kill().expect("SIGKILL the sweep");
            let _ = child.wait();
            break true;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("victim sweep wrote no journal entry within 120s");
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    let survivors = journal_entries(&journal);
    if killed_midway {
        assert!(
            (1..8).contains(&survivors),
            "kill should leave a partial journal, found {survivors} entries"
        );
    }

    // Resume must adopt the survivors and converge to the reference bytes.
    let output = fleet(&journal, &out, true).output().expect("spawn resume sweep");
    assert!(output.status.success(), "resume failed: {}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains(&format!("resumed {survivors} journaled cell(s)")),
        "resume should report adopting {survivors} cells:\n{stdout}"
    );
    let resumed = std::fs::read(&out).expect("resumed report exists");
    assert_eq!(reference, resumed, "resumed fleet report differs from the uninterrupted sweep");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `--resume` without `--journal` has nothing to resume from and must be
/// rejected up front rather than silently re-running everything.
#[test]
fn resume_without_journal_is_rejected() {
    let dir = scratch_dir("noresume");
    let out = dir.join("fleet.json");
    let output = Command::new(bin())
        .args(["fleet", "--queries", "2", "--jobs", "1", "--maps", "2", "--reduces", "1"])
        .arg("--out")
        .arg(&out)
        .arg("--resume")
        .output()
        .expect("spawn fleet");
    assert!(!output.status.success(), "--resume without --journal should fail");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--resume requires --journal"), "unexpected error:\n{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
