//! Differential harness for the cardinality-estimator seam.
//!
//! Every estimator is scored against *exact* ground truth
//! ([`execute_dag`]) on the same generated databases, across a ladder of
//! Zipf skew levels. The suite pins three properties of the seam:
//!
//! 1. **Accuracy bounds per skew level.** Each estimator's mean absolute
//!    relative error (MARE) on output tuples stays under a per-skew bound,
//!    and at high skew the sampling and catalog estimators strictly beat
//!    the equi-width histogram (which smears Zipf hot keys and
//!    underestimates both-sides-skew joins).
//! 2. **Bit reproducibility.** Running percolation twice — fresh
//!    framework, same inputs — yields bit-identical estimates for all
//!    three estimators.
//! 3. **Downstream divergence.** Better `D_med`/`D_out` changes the
//!    provisioned task structure ([`Framework::sim_query_estimated`]) and
//!    hence the SWRD schedule: at high skew the histogram-provisioned
//!    burst measurably differs from the sampling-provisioned one, while on
//!    uniform data all three agree.

use sapred::cluster::sched::Swrd;
use sapred::cluster::{SimQuery, Simulator};
use sapred::core::Framework;
use sapred::plan::ground_truth::execute_dag;
use sapred::relation::gen::{generate, Database, GenConfig, KeyDist};
use sapred::selectivity::EstimatorKind;

/// Join-heavy workload; the first query joins two Zipf-distributed key
/// columns (`l_partkey` ⋈ `ps_partkey`), the histogram's worst case.
const QUERIES: &[&str] = &[
    "SELECT l_partkey, sum(l_quantity) FROM lineitem l \
     JOIN partsupp ps ON l.l_partkey = ps.ps_partkey GROUP BY l_partkey",
    "SELECT l_quantity, p_size FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey \
     WHERE p_size < 10 AND l_shipdate < 1200",
    "SELECT o_totalprice, p_size FROM lineitem l \
     JOIN orders o ON l.l_orderkey = o.o_orderkey \
     JOIN part p ON l.l_partkey = p.p_partkey \
     WHERE o_orderdate < 1500",
];

const SCALE_GB: f64 = 0.05;
const DB_SEED: u64 = 0xfeed;

fn db_for(skew: f64) -> Database {
    let dist = if skew > 0.0 { KeyDist::Zipf(skew) } else { KeyDist::Uniform };
    generate(GenConfig::new(SCALE_GB).with_seed(DB_SEED).with_key_dist(dist))
}

/// MARE of estimated vs. actual output tuples over every job of every
/// query, plus the estimator-provisioned SimQueries and a debug dump of
/// the raw estimates (for bit-identity checks).
fn evaluate(kind: EstimatorKind, db: &Database) -> (f64, Vec<SimQuery>, String) {
    let mut fw = Framework::new();
    fw.est_config.kind = kind;
    let mut errs = Vec::new();
    let mut sims = Vec::new();
    let mut dump = String::new();
    for (qi, sql) in QUERIES.iter().enumerate() {
        let name = format!("q{qi}");
        let semantics = fw.percolate_sql(&name, sql, db).expect("valid query");
        let actuals = execute_dag(&semantics.dag, db, fw.est_config.block_size);
        for (est, act) in semantics.estimates.iter().zip(&actuals) {
            errs.push((est.tuples_out - act.tuples_out).abs() / act.tuples_out.max(1.0));
        }
        dump.push_str(&format!("{:?}\n", semantics.estimates));
        sims.push(fw.sim_query_estimated(name, qi as f64 * 0.37, &semantics, &actuals));
    }
    (errs.iter().sum::<f64>() / errs.len() as f64, sims, dump)
}

/// SWRD mean response of a replicated single-node burst built from the
/// given per-estimator SimQueries. Same actual bytes and noise seed for
/// every estimator — only provisioning and predictions differ.
fn swrd_response(queries: &[SimQuery]) -> f64 {
    let burst: Vec<SimQuery> = (0..6)
        .flat_map(|rep| {
            queries.iter().enumerate().map(move |(qi, q)| SimQuery {
                name: format!("{}r{rep}", q.name),
                arrival: (rep * queries.len() + qi) as f64 * 0.37,
                jobs: q.jobs.clone(),
            })
        })
        .collect();
    let fw = Framework::new();
    let mut cluster = fw.cluster;
    cluster.nodes = 1;
    cluster.seed = 1234;
    Simulator::new(cluster, fw.cost, Swrd).run(&burst).mean_response()
}

/// Upper MARE bounds per (skew, estimator); measured values sit well
/// below (e.g. skew 1.4: histogram 0.47, sample 0.09, catalog 0.13).
const BOUNDS: &[(f64, [f64; 3])] = &[
    // skew   [histogram, sample, catalog]
    (0.0, [0.06, 0.09, 0.30]),
    (0.6, [0.15, 0.16, 0.25]),
    (1.1, [0.30, 0.13, 0.20]),
    (1.4, [0.80, 0.16, 0.22]),
];

#[test]
fn mare_stays_within_per_skew_bounds_and_skew_flips_the_ranking() {
    for &(skew, bounds) in BOUNDS {
        let db = db_for(skew);
        let mut mares = [0.0f64; 3];
        for (i, kind) in EstimatorKind::ALL.into_iter().enumerate() {
            let (mare, _, _) = evaluate(kind, &db);
            assert!(
                mare <= bounds[i],
                "skew {skew}: {kind} MARE {mare:.4} exceeds bound {:.4}",
                bounds[i]
            );
            mares[i] = mare;
        }
        let [hist, sample, catalog] = mares;
        if skew >= 1.1 {
            // High skew: data-driven estimators must beat the histogram.
            assert!(
                sample < hist && catalog < hist,
                "skew {skew}: expected sample ({sample:.4}) and catalog ({catalog:.4}) \
                 to beat histogram ({hist:.4})"
            );
        } else if skew == 0.0 {
            // Uniform data is the histogram's home turf.
            assert!(
                hist < catalog,
                "skew 0: expected histogram ({hist:.4}) to beat catalog ({catalog:.4})"
            );
        }
    }
}

#[test]
fn all_three_estimators_are_bit_reproducible() {
    let db = db_for(1.2);
    for kind in EstimatorKind::ALL {
        let (mare_a, _, dump_a) = evaluate(kind, &db);
        let (mare_b, _, dump_b) = evaluate(kind, &db);
        assert_eq!(mare_a.to_bits(), mare_b.to_bits(), "{kind}: MARE drifted across runs");
        assert_eq!(dump_a, dump_b, "{kind}: estimates are not bit-identical across runs");
    }
}

#[test]
fn estimator_choice_changes_provisioning_and_schedule_under_skew() {
    // Uniform data: every estimator is close enough that provisioning
    // (map splits from `est.n_maps`, reducers from the bytes-per-reducer
    // rule on `est.d_med`) agrees, and so do the schedules.
    let db = db_for(0.0);
    let base: Vec<f64> =
        EstimatorKind::ALL.into_iter().map(|kind| swrd_response(&evaluate(kind, &db).1)).collect();
    assert!(
        base.iter().all(|r| r.to_bits() == base[0].to_bits()),
        "uniform data: expected identical schedules, got {base:?}"
    );

    // High skew: the histogram's join-output underestimate provisions
    // fewer downstream tasks than the sampling estimator, producing a
    // structurally different burst and a different SWRD outcome.
    let db = db_for(1.4);
    let (_, hist_q, _) = evaluate(EstimatorKind::Histogram, &db);
    let (_, sample_q, _) = evaluate(EstimatorKind::Sample, &db);
    let hist_tasks: Vec<(usize, usize)> = hist_q
        .iter()
        .flat_map(|q| q.jobs.iter().map(|j| (j.maps.len(), j.reduces.len())))
        .collect();
    let sample_tasks: Vec<(usize, usize)> = sample_q
        .iter()
        .flat_map(|q| q.jobs.iter().map(|j| (j.maps.len(), j.reduces.len())))
        .collect();
    assert_ne!(
        hist_tasks, sample_tasks,
        "skew 1.4: expected estimator choice to change provisioned task counts"
    );
    let hist_resp = swrd_response(&hist_q);
    let sample_resp = swrd_response(&sample_q);
    assert_ne!(
        hist_resp.to_bits(),
        sample_resp.to_bits(),
        "skew 1.4: expected different SWRD outcomes, got {hist_resp} for both"
    );
}
