//! Cross-crate fleet properties: the aggregate report is a pure function of
//! the grid — independent of worker-thread count, and therefore of claim
//! and completion order.

use proptest::prelude::*;
use sapred_bench::fleet::{bench_grid, run_fleet, FleetGrid, WorkloadSpec};

/// Small randomized grids over every axis the bench grid can sweep. Cells
/// stay tiny (≤ 5 queries × 2 jobs) so a case is milliseconds even in
/// debug builds.
fn small_grid() -> impl Strategy<Value = FleetGrid> {
    (1usize..=3, 1usize..=3, 1usize..=2, 1usize..=2, 2usize..=5, 0u64..1000).prop_map(
        |(schedulers, faults, admissions, seeds, n_queries, base_seed)| {
            bench_grid(
                schedulers,
                faults,
                admissions,
                seeds,
                WorkloadSpec::uniform(n_queries, 2, 3, 1),
                base_seed,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole determinism claim: same grid ⇒ bit-identical aggregate
    /// JSON at 1, 2, and 8 worker threads. Any leak of wall-clock, thread
    /// identity, or completion order into the report breaks this.
    #[test]
    fn fleet_aggregate_is_thread_count_independent(grid in small_grid()) {
        let serial = run_fleet(&grid, 1).expect("valid grid").to_json();
        let two = run_fleet(&grid, 2).expect("valid grid").to_json();
        let eight = run_fleet(&grid, 8).expect("valid grid").to_json();
        prop_assert_eq!(&serial, &two, "1-thread vs 2-thread aggregate diverged");
        prop_assert_eq!(&two, &eight, "2-thread vs 8-thread aggregate diverged");
    }

    /// Per-cell outcomes, not just the aggregate: every cell's summary and
    /// engine counters match between a serial and a parallel run.
    #[test]
    fn fleet_cells_match_between_serial_and_parallel(grid in small_grid()) {
        let serial = run_fleet(&grid, 1).expect("valid grid");
        let parallel = run_fleet(&grid, 4).expect("valid grid");
        prop_assert_eq!(serial.cells.len(), parallel.cells.len());
        for (s, p) in serial.cells.iter().zip(&parallel.cells) {
            prop_assert_eq!(&s.label, &p.label);
            prop_assert_eq!(s.cell_seed, p.cell_seed);
            prop_assert_eq!(s.counters, p.counters, "engine counters diverged in {}", s.label);
            match (&s.outcome, &p.outcome) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "summary diverged in {}", s.label),
                (a, b) => prop_assert!(
                    a.is_err() == b.is_err(),
                    "outcome kind diverged in {}", s.label
                ),
            }
        }
    }
}
