//! End-to-end integration: query text → percolation → estimation →
//! ground-truth execution → simulation, across many query shapes and
//! scales, checking cross-layer consistency invariants.

use sapred::core::framework::Framework;
use sapred::plan::ground_truth::execute_dag;
use sapred::relation::gen::{generate, GenConfig, Layout};
use sapred_cluster::build::build_sim_query;
use sapred_cluster::sched::Fifo;
use sapred_cluster::sim::Simulator;

const QUERIES: &[&str] = &[
    "SELECT l_partkey FROM lineitem WHERE l_quantity > 45",
    "SELECT count(*) FROM orders",
    "SELECT l_returnflag, count(*) FROM lineitem GROUP BY l_returnflag",
    "SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 100000 \
     ORDER BY o_totalprice DESC LIMIT 5000",
    "SELECT s_name, n_name FROM supplier s JOIN nation n ON s.s_nationkey = n.n_nationkey",
    "SELECT l_partkey, sum(l_extendedprice) FROM lineitem l \
     JOIN part p ON l.l_partkey = p.p_partkey WHERE p_size < 25 GROUP BY l_partkey",
    "SELECT n_name, sum(o_totalprice) FROM nation n \
     JOIN customer c ON c.c_nationkey = n.n_nationkey \
     JOIN orders o ON o.o_custkey = c.c_custkey \
     GROUP BY n_name ORDER BY n_name",
    "SELECT ps_partkey, sum(ps_supplycost*ps_availqty) \
     FROM nation n JOIN supplier s ON s.s_nationkey=n.n_nationkey AND n.n_name<>'CHINA' \
     JOIN partsupp ps ON ps.ps_suppkey=s.s_suppkey GROUP BY ps_partkey",
];

#[test]
fn estimates_track_ground_truth_across_shapes() {
    let fw = Framework::new();
    let db = generate(GenConfig::new(2.0).with_seed(99));
    for sql in QUERIES {
        let s = fw.percolate_sql("q", sql, &db).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let actuals = execute_dag(&s.dag, &db, fw.est_config.block_size);
        assert_eq!(s.estimates.len(), actuals.len());
        for (est, act) in s.estimates.iter().zip(&actuals) {
            // D_in is exact: both sides read the same base tables/outputs
            // up to estimation drift in upstream outputs.
            assert!(est.d_in > 0.0, "{sql}");
            // IS/FS within [0, ~] and tracking within an order of magnitude
            // (tight tracking is asserted per-operator in unit tests).
            assert!(est.is >= 0.0 && est.fs >= 0.0, "{sql}");
            if act.d_med > 1e6 {
                let ratio = est.d_med / act.d_med;
                assert!(
                    (0.2..5.0).contains(&ratio),
                    "{sql}: D_med est {} vs actual {}",
                    est.d_med,
                    act.d_med
                );
            }
        }
    }
}

#[test]
fn root_job_d_in_is_exact() {
    // For jobs reading only base tables, the estimator's D_in must equal
    // ground truth exactly (both read full scans).
    let fw = Framework::new();
    let db = generate(GenConfig::new(1.0).with_seed(3));
    for sql in QUERIES {
        let s = fw.percolate_sql("q", sql, &db).unwrap();
        let actuals = execute_dag(&s.dag, &db, fw.est_config.block_size);
        for (job, (est, act)) in s.dag.jobs().iter().zip(s.estimates.iter().zip(&actuals)) {
            if job.deps().is_empty() {
                assert!(
                    (est.d_in - act.d_in).abs() < 1.0,
                    "{sql} J{}: {} vs {}",
                    job.id,
                    est.d_in,
                    act.d_in
                );
                assert_eq!(est.n_maps, act.n_splits, "{sql} J{}", job.id);
            }
        }
    }
}

#[test]
fn simulation_consumes_any_compiled_query() {
    let fw = Framework::new();
    let db = generate(GenConfig::new(1.0).with_seed(17));
    let mut sim_queries = Vec::new();
    for (i, sql) in QUERIES.iter().enumerate() {
        let s = fw.percolate_sql(&format!("q{i}"), sql, &db).unwrap();
        let actuals = execute_dag(&s.dag, &db, fw.est_config.block_size);
        sim_queries.push(build_sim_query(
            format!("q{i}"),
            i as f64 * 2.0,
            &s.dag,
            &actuals,
            &[],
            &fw.cluster,
        ));
    }
    let report = Simulator::new(fw.cluster, fw.cost, Fifo).run(&sim_queries);
    assert_eq!(report.queries.len(), QUERIES.len());
    for q in &report.queries {
        assert!(q.finish > q.arrival, "{}", q.name);
        assert!(q.start >= q.arrival);
    }
}

#[test]
fn clustered_layout_improves_combine_estimates() {
    // The estimator is told the layout through EstimatorConfig; when layout
    // and hint agree, the combine estimate matches the ground truth much
    // better than when they disagree.
    let sql = "SELECT l_partkey, sum(l_quantity) FROM lineitem GROUP BY l_partkey";
    let err_for = |layout: Layout, hint: bool| -> f64 {
        let mut fw = Framework::new();
        fw.est_config.clustered_keys = hint;
        let db = generate(GenConfig::new(5.0).with_seed(7).with_layout(layout));
        let s = fw.percolate_sql("q", sql, &db).unwrap();
        let act = execute_dag(&s.dag, &db, fw.est_config.block_size);
        (s.estimates[0].tuples_med - act[0].tuples_med).abs() / act[0].tuples_med
    };
    let matched = err_for(Layout::Clustered, true);
    let mismatched = err_for(Layout::Clustered, false);
    assert!(matched < mismatched, "matched {matched} mismatched {mismatched}");
    let matched_r = err_for(Layout::Random, false);
    let mismatched_r = err_for(Layout::Random, true);
    assert!(matched_r < mismatched_r, "matched {matched_r} mismatched {mismatched_r}");
}

#[test]
fn umbrella_crate_reexports_work() {
    // The `sapred` facade exposes every subsystem.
    let _ = sapred::relation::gen::GenConfig::new(0.1);
    let _ = sapred::query::parse("SELECT n_name FROM nation").unwrap();
    let _ = sapred::predict::metrics::r_squared(&[1.0], &[1.0]);
    let _ = sapred::cluster::sim::ClusterConfig::default();
    let _ = sapred::workload::mixes::bing_mix();
    let _ = sapred::selectivity::formulas::p_ratio(1.0, 2.0);
    let _ = sapred::core::framework::Framework::new();
}

#[test]
fn map_join_plans_estimate_and_execute_consistently() {
    use sapred::plan::compile::{compile_with, PlannerConfig};
    use sapred::query::{analyze, parse};
    use sapred::selectivity::estimate::{estimate_dag, EstimatorConfig};

    let fw = Framework::new();
    let db = generate(GenConfig::new(1.0).with_seed(23));
    let queries = [
        "SELECT ps_partkey, sum(ps_supplycost*ps_availqty) \
         FROM nation n JOIN supplier s ON s.s_nationkey=n.n_nationkey \
         JOIN partsupp ps ON ps.ps_suppkey=s.s_suppkey GROUP BY ps_partkey",
        "SELECT s_name, n_name FROM supplier s JOIN nation n ON s.s_nationkey = n.n_nationkey",
        "SELECT n_name, count(*) FROM nation n \
         JOIN customer c ON c.c_nationkey = n.n_nationkey GROUP BY n_name",
    ];
    for sql in queries {
        let analyzed = analyze(&parse(sql).unwrap(), db.catalog(), &db).unwrap();
        let config = PlannerConfig { map_join_threshold: 512.0 * 1024.0 * 1024.0 };
        let dag = compile_with("mj", &analyzed, db.catalog(), &config);
        // At least one broadcast happened for these dimension joins.
        let n_broadcasts: usize = dag.jobs().iter().map(|j| j.broadcasts.len()).sum();
        assert!(n_broadcasts > 0, "{sql}: no conversion");
        let est = estimate_dag(&dag, db.catalog(), &EstimatorConfig::default());
        let act = execute_dag(&dag, &db, fw.est_config.block_size);
        // Sink-output estimates stay near ground truth with broadcasts too.
        let (e, a) = (est.last().unwrap().tuples_out, act.last().unwrap().tuples_out);
        if a > 10.0 {
            let ratio = e / a;
            assert!((0.5..2.0).contains(&ratio), "{sql}: est {e} vs act {a}");
        }
        // Broadcast table bytes are accounted into D_in on both sides.
        assert!(
            (est[0].d_in - act[0].d_in).abs() / act[0].d_in < 0.05,
            "{sql}: D_in est {} act {}",
            est[0].d_in,
            act[0].d_in
        );
    }
}

#[test]
fn map_join_and_reduce_join_agree_on_results() {
    use sapred::plan::compile::{compile, compile_with, PlannerConfig};
    use sapred::query::{analyze, parse};

    let fw = Framework::new();
    let db = generate(GenConfig::new(0.5).with_seed(29));
    let sql = "SELECT n_name, sum(s_acctbal) FROM supplier s \
               JOIN nation n ON s.s_nationkey = n.n_nationkey \
               WHERE s_acctbal > 0 GROUP BY n_name";
    let analyzed = analyze(&parse(sql).unwrap(), db.catalog(), &db).unwrap();
    let plain = compile("plain", &analyzed);
    let converted =
        compile_with("conv", &analyzed, db.catalog(), &PlannerConfig { map_join_threshold: 1e9 });
    assert!(converted.len() < plain.len());
    let a = execute_dag(&plain, &db, fw.est_config.block_size);
    let b = execute_dag(&converted, &db, fw.est_config.block_size);
    // Same final result cardinality regardless of join strategy.
    assert_eq!(a.last().unwrap().tuples_out, b.last().unwrap().tuples_out);
}

#[test]
fn pig_and_sql_front_ends_agree() {
    use sapred::query::pig::PigScript;
    use sapred::query::{analyze, parse, AggFunc};
    use sapred::relation::expr::{CmpOp, Predicate};

    let fw = Framework::new();
    let db = generate(GenConfig::new(0.5).with_seed(31));
    let pig = PigScript::load("lineitem")
        .filter(Predicate::cmp("l_quantity", CmpOp::Gt, 45.0))
        .join("part", "l_partkey", "p_partkey")
        .group_by(["p_brand"])
        .aggregate(AggFunc::Sum, "l_extendedprice")
        .to_analyzed(db.catalog())
        .unwrap();
    let sql = analyze(
        &parse(
            "SELECT p_brand, sum(l_extendedprice) FROM lineitem l \
             JOIN part p ON l.l_partkey = p.p_partkey \
             WHERE l_quantity > 45 GROUP BY p_brand",
        )
        .unwrap(),
        db.catalog(),
        &db,
    )
    .unwrap();
    let dag_pig = sapred::plan::compile::compile("pig", &pig);
    let dag_sql = sapred::plan::compile::compile("sql", &sql);
    assert_eq!(dag_pig.len(), dag_sql.len());
    // Identical ground-truth results from both compilations.
    let a = execute_dag(&dag_pig, &db, fw.est_config.block_size);
    let b = execute_dag(&dag_sql, &db, fw.est_config.block_size);
    assert_eq!(a.last().unwrap().tuples_out, b.last().unwrap().tuples_out);
    assert_eq!(a[0].tuples_med, b[0].tuples_med);
}

#[test]
fn pipeline_facade_drives_the_staged_lifecycle() {
    use sapred::cluster::sched::Swrd;
    use sapred::core::{Error, Pipeline, RecalibratingOracle};
    use sapred::obs::NullSink;
    use sapred::workload::population::PopulationConfig;

    let mut pipe = Pipeline::with_seed(11);
    // Stage 3 before stage 2 is an explicit error, not a panic.
    assert!(matches!(pipe.predictor(), Err(Error::NotTrained)));

    // Stage 1: percolate two query shapes.
    let join = pipe
        .percolate_sql(
            "join",
            "SELECT l_partkey, sum(l_extendedprice) FROM lineitem l \
             JOIN part p ON l.l_partkey = p.p_partkey GROUP BY l_partkey",
            1.0,
        )
        .expect("valid query");
    let scan = pipe.percolate_sql("scan", "SELECT count(*) FROM orders", 1.0).expect("valid query");
    // Malformed text surfaces through the unified error type.
    assert!(matches!(pipe.percolate_sql("bad", "SELEKT *", 1.0), Err(Error::Query(_))));

    // Stage 2: train.
    let config = PopulationConfig {
        n_queries: 60,
        scales_gb: vec![0.5, 1.0],
        scale_out_gb: vec![],
        seed: 11,
    };
    pipe.train(&config).expect("training succeeds");
    let wrd = pipe.predictor().expect("trained").query_wrd(&join);
    assert!(wrd > 0.0);

    // Stage 4: simulate, then re-simulate with a live oracle in the loop.
    let queries =
        vec![pipe.sim_query("join", 0.0, &join, 1.0), pipe.sim_query("scan", 0.5, &scan, 1.0)];
    let baseline = pipe.simulate(Swrd, &queries);
    assert_eq!(baseline.queries.len(), 2);

    // A frozen predictor behind the oracle seam is bit-identical to the
    // plain run: the seam itself changes nothing.
    let mut frozen = pipe.predictor().expect("trained").clone();
    let online = pipe.simulate_online(Swrd, &queries, &mut NullSink, &mut frozen);
    assert_eq!(online, baseline);

    // A recalibrating oracle completes and accumulates drift samples from
    // every finished job.
    let mut oracle = RecalibratingOracle::new();
    let recal = pipe.simulate_online(Swrd, &queries, &mut NullSink, &mut oracle);
    assert_eq!(recal.queries.len(), 2);
    // Every job has a map phase with a positive actual, so each finished
    // job contributes at least one drift sample.
    let total_jobs: u64 = queries.iter().map(|q| q.jobs.len() as u64).sum();
    assert!(oracle.drift().total_samples() >= total_jobs);
}

#[test]
fn multi_queue_hcs_isolates_queues() {
    use rand::SeedableRng;
    use sapred::workload::templates::Template;
    use sapred_cluster::sched::HcsQueues;

    let fw = Framework::new();
    let db = generate(GenConfig::new(20.0).with_seed(5));
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    // A big saturating query and a small one, arriving together. With one
    // queue the big query's earlier-submitted jobs dominate; with two
    // queues the small query is protected by its guaranteed share.
    let mut queries = Vec::new();
    for (i, (t, arrival)) in
        [(Template::Q17SmallQuantity, 0.0), (Template::Q14Promo, 1.0)].iter().enumerate()
    {
        let dag = t.instantiate(&db, &mut rng).unwrap();
        let actuals = execute_dag(&dag, &db, fw.est_config.block_size);
        queries.push(build_sim_query(format!("q{i}"), *arrival, &dag, &actuals, &[], &fw.cluster));
    }
    let mut small_cluster = fw;
    small_cluster.cluster.nodes = 2; // 24 containers: the 20 GB Q17 saturates
    let one = Simulator::new(small_cluster.cluster, small_cluster.cost, HcsQueues::new(vec![1.0]))
        .run(&queries);
    let two =
        Simulator::new(small_cluster.cluster, small_cluster.cost, HcsQueues::new(vec![0.5, 0.5]))
            .run(&queries);
    let small_one = one.queries[1].response();
    let small_two = two.queries[1].response();
    assert!(
        small_two < small_one,
        "two queues should protect the small query: {small_two} vs {small_one}"
    );
}
