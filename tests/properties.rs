//! Cross-crate property-based tests (proptest) on the framework's core
//! invariants: histogram estimates, selectivity formulas, DAG metrics and
//! simulation sanity under randomized inputs.

use proptest::prelude::*;
use sapred::cluster::fault::{FaultPlan, NodeCrash};
use sapred::cluster::job::{JobPrediction, SimJob, SimQuery, TaskKind, TaskSpec};
use sapred::cluster::sched::{
    Fifo, Hcs, HcsQueues, Hfs, RunnableJob, Scheduler, Srt, Swrd, TaskChoice,
};
use sapred::cluster::sim::{
    ClusterConfig, DemandOracle, DispatchMode, GuardConfig, GuardedOracle, SimReport, Simulator,
};
use sapred::cluster::CostModel;
use sapred::cluster::QueryId;
use sapred::core::framework::{Framework, Predictor, QuerySemantics};
use sapred::core::progress::{JobProgress, ProgressEstimator};
use sapred::core::training::{fit_models, run_population, split_train_test};
use sapred::obs::JsonlSink;
use sapred::plan::dag::JobCategory;
use sapred::predict::metrics::{avg_rel_error, r_squared};
use sapred::predict::wrd::{job_time_waves, JobResource};
use sapred::relation::expr::CmpOp;
use sapred::relation::histogram::Histogram;
use sapred::relation::table::Column;
use sapred::selectivity::formulas::{join_size_bucketed, natural_chain_size, p_ratio, s_comb};
use sapred::workload::pool::DbPool;
use sapred::workload::population::{generate_population, PopulationConfig};

/// One trained predictor + a percolated three-job query, built once and
/// shared across all proptest cases (training is the expensive part).
fn progress_fixture() -> &'static (Predictor, QuerySemantics) {
    static FIXTURE: std::sync::OnceLock<(Predictor, QuerySemantics)> = std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let fw = Framework::new();
        let config = PopulationConfig {
            n_queries: 30,
            scales_gb: vec![0.5, 1.0],
            scale_out_gb: vec![],
            seed: 17,
        };
        let mut pool = DbPool::new(17);
        let pop = generate_population(&config, &mut pool);
        let runs = run_population(&pop, &mut pool, &fw).expect("population runs");
        let (train, _) = split_train_test(&runs);
        let db = pool.get(1.0).clone();
        let semantics = fw
            .percolate_sql(
                "prop-progress",
                "SELECT l_partkey, sum(l_extendedprice) FROM lineitem l \
                 JOIN part p ON l.l_partkey = p.p_partkey \
                 GROUP BY l_partkey ORDER BY l_partkey",
                &db,
            )
            .expect("valid query");
        let predictor = Predictor::new(fit_models(&train, &fw).expect("models fit"), fw);
        (predictor, semantics)
    })
}

/// One fault-injected, dispatch-crosschecked simulation run, traced into a
/// JSONL sink so the exported event stream can be compared bit-for-bit.
fn run_faulted_traced<S: Scheduler>(
    s: S,
    queries: &[SimQuery],
    plan: &FaultPlan,
) -> (SimReport, Vec<u8>) {
    let config = ClusterConfig { nodes: 2, containers_per_node: 3, ..ClusterConfig::default() };
    let mut sink = JsonlSink::new(Vec::new());
    let report = Simulator::new(config, CostModel::default(), s)
        .with_dispatch(DispatchMode::Crosscheck)
        .with_faults(plan.clone())
        .run_with(queries, &mut sink);
    (report, sink.finish().unwrap())
}

/// Two runs of the same (workload, plan, scheduler) must be bit-identical:
/// report, fault stats, and the entire exported event stream.
fn assert_fault_replay<S: Scheduler + Clone>(
    s: S,
    queries: &[SimQuery],
    plan: &FaultPlan,
    tag: &str,
) -> Result<(), TestCaseError> {
    let (r1, e1) = run_faulted_traced(s.clone(), queries, plan);
    let (r2, e2) = run_faulted_traced(s, queries, plan);
    prop_assert_eq!(r1.makespan.to_bits(), r2.makespan.to_bits(), "{}: makespan", tag);
    prop_assert_eq!(&r1.queries, &r2.queries, "{}: query stats", tag);
    prop_assert_eq!(&r1.jobs, &r2.jobs, "{}: job stats", tag);
    prop_assert_eq!(&r1.faults, &r2.faults, "{}: fault stats", tag);
    prop_assert!(e1 == e2, "{}: exported event streams diverge between replays", tag);
    Ok(())
}

/// Scheduler wrapper that asserts no non-finite demand estimate ever
/// reaches a pick: the prediction guardrails must sanitize upstream.
#[derive(Clone)]
struct AssertFiniteWrd<S>(S);

impl<S: Scheduler> Scheduler for AssertFiniteWrd<S> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn pick(&mut self, runnable: &[RunnableJob]) -> Option<TaskChoice> {
        for r in runnable {
            assert!(r.query_wrd.is_finite(), "non-finite WRD reached the scheduler: {r:?}");
            assert!(r.query_time.is_finite(), "non-finite query time reached the scheduler: {r:?}");
            assert!(self.0.score(r).is_finite(), "non-finite score for {r:?}");
        }
        self.0.pick(runnable)
    }
    fn score(&self, job: &RunnableJob) -> f64 {
        self.0.score(job)
    }
}

/// Oracle that deterministically emits garbage — NaN, ±∞, negatives and
/// out-of-range spikes — for a seeded subset of (query, job) cells, so both
/// runs of a replay pair poison the exact same predictions.
struct FlakyOracle {
    seed: u64,
    period: u64,
}

impl FlakyOracle {
    fn cell(&self, query: QueryId, job: &SimJob) -> u64 {
        self.seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(query.0 as u64 * 31)
            .wrapping_add(job.id.0 as u64 * 7)
    }
}

impl DemandOracle for FlakyOracle {
    fn predict(&mut self, query: QueryId, job: &SimJob) -> JobPrediction {
        let h = self.cell(query, job);
        if h.is_multiple_of(self.period) {
            let bad = match (h / self.period) % 4 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => -5.0,
                _ => 1e12, // beyond any finite max_task_time bound
            };
            JobPrediction { map_task_time: bad, reduce_task_time: bad }
        } else {
            job.prediction
        }
    }
}

/// One guarded, fault-injected run with the assert-finite scheduler
/// wrapper, traced into a JSONL sink for bitwise stream comparison.
fn run_guarded_traced<S: Scheduler>(
    s: S,
    queries: &[SimQuery],
    plan: &FaultPlan,
    guard: GuardConfig,
    oracle_seed: u64,
    period: u64,
    mode: DispatchMode,
) -> (SimReport, Vec<u8>) {
    let config = ClusterConfig { nodes: 2, containers_per_node: 3, ..ClusterConfig::default() };
    let mut sink = JsonlSink::new(Vec::new());
    let mut oracle = GuardedOracle::with_config(FlakyOracle { seed: oracle_seed, period }, guard);
    let report = Simulator::new(config, CostModel::default(), AssertFiniteWrd(s))
        .with_dispatch(mode)
        .with_faults(plan.clone())
        .run_with_oracle(queries, &mut sink, &mut oracle);
    (report, sink.finish().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_selectivity_is_a_probability(
        values in prop::collection::vec(-1000i64..1000, 1..300),
        buckets in 1usize..32,
        op in prop::sample::select(vec![CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge]),
        threshold in -1500.0f64..1500.0,
    ) {
        let h = Histogram::from_column(&Column::Int(values.clone()), buckets);
        let s = h.selectivity_cmp(op, threshold);
        prop_assert!((0.0..=1.0).contains(&s), "selectivity {s}");
        // Complementary operators sum to 1.
        let complement = match op {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
        };
        let sc = h.selectivity_cmp(complement, threshold);
        prop_assert!((s + sc - 1.0).abs() < 1e-6, "{s} + {sc} != 1");
    }

    #[test]
    fn histogram_mass_is_conserved_by_rebucket(
        values in prop::collection::vec(0i64..500, 1..200),
        src_buckets in 1usize..24,
        dst_buckets in 1usize..24,
    ) {
        let h = Histogram::from_column(&Column::Int(values.clone()), src_buckets);
        let r = h.rebucket(-10.0, 510.0, dst_buckets);
        let total: f64 = r.buckets().iter().map(|b| b.count).sum();
        prop_assert!((total - values.len() as f64).abs() < 1e-6);
    }

    #[test]
    fn bucketed_join_size_is_bounded_by_cartesian_product(
        left in prop::collection::vec(0i64..100, 1..200),
        right in prop::collection::vec(0i64..100, 1..200),
        buckets in 1usize..20,
    ) {
        let lh = Histogram::from_column(&Column::Int(left.clone()), buckets);
        let rh = Histogram::from_column(&Column::Int(right.clone()), buckets);
        let (est, joint) = join_size_bucketed(&lh, &rh);
        prop_assert!(est >= 0.0);
        prop_assert!(est <= left.len() as f64 * right.len() as f64 * 1.0001);
        prop_assert!((joint.total() - est).abs() < 1e-6);
    }

    #[test]
    fn p_ratio_and_skew_term_bounds(l in 1e-6f64..1e12, r in 1e-6f64..1e12) {
        let p = p_ratio(l, r);
        prop_assert!((0.5..=1.0).contains(&p), "p = {p}");
        let skew = p * (1.0 - p);
        prop_assert!((0.0..=0.25 + 1e-12).contains(&skew));
    }

    #[test]
    fn s_comb_is_a_selectivity(
        s_pred in 0.0f64..=1.0,
        d_keys in 1.0f64..1e7,
        rows in 1.0f64..1e8,
        n_maps in 1usize..1000,
        clustered in any::<bool>(),
    ) {
        let s = s_comb(s_pred, d_keys, rows, n_maps, clustered);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!(s <= s_pred + 1e-12, "combine cannot emit more than the filter admits");
        // Random layouts always combine at least as poorly as clustered.
        let sc = s_comb(s_pred, d_keys, rows, n_maps, true);
        let sr = s_comb(s_pred, d_keys, rows, n_maps, false);
        prop_assert!(sr >= sc - 1e-12);
    }

    #[test]
    fn natural_chain_never_exceeds_largest_table(
        s in prop::collection::vec(0.0f64..=1.0, 1..6),
        sizes in prop::collection::vec(1.0f64..1e9, 1..6),
    ) {
        let n = s.len().min(sizes.len());
        let est = natural_chain_size(&s[..n], &sizes[..n]);
        let max = sizes[..n].iter().cloned().fold(0.0, f64::max);
        prop_assert!(est <= max + 1e-6);
        prop_assert!(est >= 0.0);
    }

    #[test]
    fn metrics_bounds(
        actual in prop::collection::vec(0.1f64..1e5, 2..50),
        noise in prop::collection::vec(-0.5f64..0.5, 2..50),
    ) {
        let n = actual.len().min(noise.len());
        let pred: Vec<f64> = actual[..n].iter().zip(&noise[..n]).map(|(a, e)| a * (1.0 + e)).collect();
        let r2 = r_squared(&pred, &actual[..n]);
        prop_assert!(r2 <= 1.0 + 1e-9);
        let err = avg_rel_error(&pred, &actual[..n]);
        prop_assert!((0.0..=0.5 + 1e-9).contains(&err));
    }

    #[test]
    fn wave_model_monotone_in_containers(
        maps in 0usize..500,
        reduces in 0usize..200,
        mt in 0.1f64..100.0,
        rt in 0.1f64..100.0,
        c1 in 1usize..64,
        c2 in 64usize..512,
    ) {
        let j = JobResource { map_time: mt, maps_remaining: maps, reduce_time: rt, reduces_remaining: reduces };
        let small = job_time_waves(&j, c1, 0.0);
        let big = job_time_waves(&j, c2, 0.0);
        prop_assert!(big <= small + 1e-9, "more containers can't slow a job down");
        prop_assert!(big >= 0.0);
    }

    #[test]
    fn progress_fraction_is_bounded_and_monotone(
        done in prop::collection::vec((0usize..64, 0usize..64), 1..8),
        bump in any::<prop::sample::Index>(),
    ) {
        let (predictor, semantics) = progress_fixture();
        let est = ProgressEstimator::new(predictor, semantics);
        let n = semantics.dag.len();
        let progress: Vec<JobProgress> = (0..n)
            .map(|j| {
                let (m, r) = done[j % done.len()];
                JobProgress { maps_done: m, reduces_done: r }
            })
            .collect();
        let frac = est.fraction_done(&progress);
        let eta = est.remaining_seconds(&progress);
        prop_assert!((0.0..=1.0).contains(&frac), "fraction {frac}");
        prop_assert!(eta >= 0.0, "eta {eta}");
        // Completing more tasks never lowers the fraction nor raises the ETA.
        let mut more = progress.clone();
        let j = bump.index(n);
        more[j].maps_done += 1;
        more[j].reduces_done += 1;
        prop_assert!(est.fraction_done(&more) >= frac - 1e-12);
        prop_assert!(est.remaining_seconds(&more) <= eta + 1e-9);
        // Saturating every job completes the query: fraction 1, ETA 0.
        let full = vec![
            JobProgress { maps_done: usize::MAX / 2, reduces_done: usize::MAX / 2 };
            n
        ];
        prop_assert!((est.fraction_done(&full) - 1.0).abs() < 1e-12);
        prop_assert!(est.remaining_seconds(&full) < 1e-9);
    }

    #[test]
    fn simulation_completes_random_chains(
        n_jobs in 1usize..5,
        n_maps in 1usize..12,
        n_reduces in 0usize..4,
        mb in 1.0f64..512.0,
        arrival in 0.0f64..50.0,
    ) {
        let task = |kind: TaskKind| TaskSpec {
            bytes_in: mb * 1024.0 * 1024.0,
            bytes_out: mb * 0.5 * 1024.0 * 1024.0,
            category: JobCategory::Extract,
            kind,
            p: 0.5,
        };
        let q = SimQuery {
            name: "prop".into(),
            arrival,
            jobs: (0..n_jobs)
                .map(|i| SimJob {
                    id: sapred::cluster::JobId(i),
                    deps: if i == 0 { vec![] } else { vec![sapred::cluster::JobId(i - 1)] },
                    category: JobCategory::Extract,
                    maps: vec![task(TaskKind::Map); n_maps],
                    reduces: vec![task(TaskKind::Reduce); n_reduces],
                    prediction: JobPrediction::default(),
                })
                .collect(),
        };
        let report = Simulator::new(ClusterConfig::default(), CostModel::default(), Fifo)
            .run(std::slice::from_ref(&q));
        prop_assert_eq!(report.queries.len(), 1);
        prop_assert!(report.queries[0].finish >= arrival);
        prop_assert!(report.queries[0].response() > 0.0);
        // Chained jobs: the query takes at least n_jobs task-base times.
        prop_assert!(report.queries[0].response() >= n_jobs as f64 * 2.0 * 0.5);
    }

    #[test]
    fn fault_replay_is_bit_identical_for_random_plans(
        specs in prop::collection::vec((1usize..5, 0usize..3, 1.0f64..6.0, 0u64..1000), 1..4),
        arrivals in prop::collection::vec(0.0f64..10.0, 1..3),
        fail_prob in 0.0f64..0.12,
        crash in prop::option::of((0usize..2, 5.0f64..50.0, 5.0f64..30.0)),
        speculative in any::<bool>(),
        fault_seed in 0u64..1_000_000,
    ) {
        // Random DAG workloads × random fault plans (transient failures,
        // an optional transient node crash, optional speculation), run
        // under Crosscheck so the incremental dispatch state is verified
        // against the reference on every event, and replayed twice: the
        // reports and the full exported event streams must match
        // bit-for-bit for every scheduler.
        let task = |kind: TaskKind, t: f64| TaskSpec {
            bytes_in: (32.0 + t * 16.0) * 1024.0 * 1024.0,
            bytes_out: 16.0 * 1024.0 * 1024.0,
            category: JobCategory::Extract,
            kind,
            p: 0.5,
        };
        let queries: Vec<SimQuery> = arrivals
            .iter()
            .enumerate()
            .map(|(qi, &arrival)| SimQuery {
                name: format!("fq{qi}"),
                arrival,
                jobs: specs
                    .iter()
                    .enumerate()
                    .map(|(i, &(maps, reduces, t, sel))| SimJob {
                        id: sapred::cluster::JobId(i),
                        deps: if i == 0 || sel % 3 == 0 { vec![] } else { vec![sapred::cluster::JobId(sel as usize % i)] },
                        category: JobCategory::Extract,
                        maps: vec![task(TaskKind::Map, t); maps],
                        reduces: vec![task(TaskKind::Reduce, t); reduces],
                        prediction: JobPrediction { map_task_time: t, reduce_task_time: t },
                    })
                    .collect(),
            })
            .collect();
        let plan = FaultPlan {
            task_fail_prob: fail_prob,
            max_attempts: 20,
            node_crashes: crash
                .map(|(n, at, d)| vec![NodeCrash::transient(n, at, d)])
                .unwrap_or_default(),
            speculative,
            seed: fault_seed,
            ..FaultPlan::default()
        };
        assert_fault_replay(Fifo, &queries, &plan, "FIFO")?;
        assert_fault_replay(Hcs, &queries, &plan, "HCS")?;
        assert_fault_replay(Hfs, &queries, &plan, "HFS")?;
        assert_fault_replay(Swrd, &queries, &plan, "SWRD")?;
        assert_fault_replay(Srt, &queries, &plan, "SRT")?;
        assert_fault_replay(HcsQueues::new(vec![0.6, 0.4]), &queries, &plan, "HCSQ")?;
    }

    #[test]
    fn guarded_oracle_keeps_wrd_finite_and_dispatch_in_lockstep(
        specs in prop::collection::vec((1usize..5, 0usize..3, 1.0f64..6.0, 0u64..1000), 1..4),
        arrivals in prop::collection::vec(0.0f64..10.0, 1..3),
        fail_prob in 0.0f64..0.1,
        crash in prop::option::of((0usize..2, 5.0f64..50.0, 5.0f64..30.0)),
        fault_seed in 0u64..1_000_000,
        oracle_seed in 0u64..1_000_000,
        period in 1u64..5,
        decay in 0.05f64..0.9,
        enter in 0.05f64..0.45,
        gap in 0.0f64..0.5,
        max_task_time in prop::option::of(4.0f64..50.0),
    ) {
        // Random fault plans × random guard configs × an oracle that
        // deterministically poisons a seeded subset of predictions with
        // NaN/±∞/negative/out-of-range values. The guard must sanitize
        // every answer (the AssertFiniteWrd wrapper panics on the first
        // non-finite demand estimate a pick ever sees), and the
        // incremental dispatch state must stay bitwise locked to the
        // reference — including through quarantine substitutions and
        // degraded-mode scheduler swaps.
        let task = |kind: TaskKind, t: f64| TaskSpec {
            bytes_in: (32.0 + t * 16.0) * 1024.0 * 1024.0,
            bytes_out: 16.0 * 1024.0 * 1024.0,
            category: JobCategory::Extract,
            kind,
            p: 0.5,
        };
        let queries: Vec<SimQuery> = arrivals
            .iter()
            .enumerate()
            .map(|(qi, &arrival)| SimQuery {
                name: format!("gq{qi}"),
                arrival,
                jobs: specs
                    .iter()
                    .enumerate()
                    .map(|(i, &(maps, reduces, t, sel))| SimJob {
                        id: sapred::cluster::JobId(i),
                        deps: if i == 0 || sel % 3 == 0 { vec![] } else { vec![sapred::cluster::JobId(sel as usize % i)] },
                        category: JobCategory::Extract,
                        maps: vec![task(TaskKind::Map, t); maps],
                        reduces: vec![task(TaskKind::Reduce, t); reduces],
                        prediction: JobPrediction { map_task_time: t, reduce_task_time: t },
                    })
                    .collect(),
            })
            .collect();
        let plan = FaultPlan {
            task_fail_prob: fail_prob,
            max_attempts: 20,
            node_crashes: crash
                .map(|(n, at, d)| vec![NodeCrash::transient(n, at, d)])
                .unwrap_or_default(),
            seed: fault_seed,
            ..FaultPlan::default()
        };
        let guard = GuardConfig {
            max_task_time: max_task_time.unwrap_or(f64::INFINITY),
            enter_below: enter,
            exit_above: (enter + gap).min(0.99),
            decay,
        };
        let (ri, ei) = run_guarded_traced(
            Swrd, &queries, &plan, guard, oracle_seed, period, DispatchMode::Incremental);
        let (rr, er) = run_guarded_traced(
            Swrd, &queries, &plan, guard, oracle_seed, period, DispatchMode::Reference);
        prop_assert_eq!(ri.makespan.to_bits(), rr.makespan.to_bits(), "guarded: makespan");
        prop_assert_eq!(&ri.queries, &rr.queries, "guarded: query stats");
        prop_assert_eq!(&ri.jobs, &rr.jobs, "guarded: job stats");
        prop_assert!(ei == er, "guarded: exported event streams diverge across dispatch modes");
        // Crosscheck re-derives the reference view after every event and
        // panics on divergence, so completing is itself the assertion.
        run_guarded_traced(
            Swrd, &queries, &plan, guard, oracle_seed, period, DispatchMode::Crosscheck);
        // Every response the run reports is finite.
        for q in &ri.queries {
            prop_assert!(q.response().is_finite(), "non-finite response for {}", q.name);
        }
    }
}
