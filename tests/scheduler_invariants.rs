//! Scheduler-independent invariants of the cluster simulation, checked
//! across all four policies on a shared workload.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sapred::core::framework::Framework;
use sapred::plan::ground_truth::execute_dag;
use sapred::relation::gen::{generate, GenConfig};
use sapred_cluster::build::build_sim_query;
use sapred_cluster::fault::{FaultPlan, NodeCrash};
use sapred_cluster::job::SimQuery;
use sapred_cluster::sched::{Fifo, Hcs, Hfs, Scheduler, Swrd};
use sapred_cluster::sim::{SimReport, Simulator};
use sapred_workload::templates::Template;

fn workload(fw: &Framework) -> Vec<SimQuery> {
    let db = generate(GenConfig::new(2.0).with_seed(5));
    let mut rng = StdRng::seed_from_u64(5);
    let mut out = Vec::new();
    for (i, t) in Template::all().iter().enumerate().take(12) {
        let dag = t.instantiate(&db, &mut rng).unwrap();
        let actuals = execute_dag(&dag, &db, fw.est_config.block_size);
        out.push(build_sim_query(
            format!("{}#{i}", t.name()),
            i as f64 * 1.5,
            &dag,
            &actuals,
            &[],
            &fw.cluster,
        ));
    }
    out
}

fn run<S: Scheduler>(fw: &Framework, s: S, queries: &[SimQuery]) -> SimReport {
    Simulator::new(fw.cluster, fw.cost, s).run(queries)
}

fn run_faulted<S: Scheduler>(
    fw: &Framework,
    s: S,
    queries: &[SimQuery],
    plan: FaultPlan,
) -> SimReport {
    Simulator::new(fw.cluster, fw.cost, s).with_faults(plan).run(queries)
}

/// A plan that permanently kills one node mid-run and sprinkles transient
/// task failures, with an attempt budget generous enough that no query is
/// ever abandoned — so every structural invariant must still hold.
fn node_loss_plan() -> FaultPlan {
    FaultPlan {
        task_fail_prob: 0.03,
        max_attempts: 16,
        node_crashes: vec![NodeCrash::permanent(0, 12.0)],
        ..FaultPlan::default()
    }
}

/// Fault-mode invariants on top of [`check_invariants`]: work conservation
/// (every task of every surviving query completes at least once, and every
/// attempt is accounted for as exactly one of finished / failed / killed)
/// and no starvation (no query is abandoned despite the dead node).
fn check_fault_invariants(report: &SimReport, queries: &[SimQuery], tag: &str) {
    check_invariants(report, queries, tag);
    assert!(
        report.faults.failed_queries.is_empty(),
        "{tag}: queries starved/abandoned under node loss: {:?}",
        report.faults.failed_queries
    );
    for (qi, stat) in report.queries.iter().enumerate() {
        assert!(!stat.failed, "{tag}: q{qi} marked failed");
        assert!(stat.finish.is_finite(), "{tag}: q{qi} never finished");
    }
    // Work conservation: re-execution may add completions (lost map
    // outputs) but can never lose any.
    for j in &report.jobs {
        assert!(
            j.map_completions >= j.n_maps,
            "{tag}: q{} job {} lost map work ({} completions < {} tasks)",
            j.query,
            j.job,
            j.map_completions,
            j.n_maps
        );
        assert!(
            j.reduce_completions >= j.n_reduces,
            "{tag}: q{} job {} lost reduce work",
            j.query,
            j.job
        );
    }
    // Attempt accounting closes: every launched attempt ends exactly one
    // way — success, failure, or kill (speculation loss / node crash).
    assert_eq!(
        report.total_attempts(),
        report.total_completions() + report.faults.task_failures + report.faults.tasks_killed,
        "{tag}: attempt accounting leak"
    );
    assert_eq!(report.faults.node_crashes, 1, "{tag}: crash not recorded");
}

fn check_invariants(report: &SimReport, queries: &[SimQuery], tag: &str) {
    assert_eq!(report.queries.len(), queries.len(), "{tag}");
    for (q, stat) in queries.iter().zip(&report.queries) {
        assert!(stat.start >= q.arrival, "{tag}: started before arrival");
        assert!(stat.finish >= stat.start, "{tag}: finished before start");
        assert!(stat.finish <= report.makespan + 1e-9, "{tag}: finish after makespan");
    }
    // Every job ran, respecting its DAG dependencies.
    #[allow(clippy::needless_range_loop)]
    for q in 0..queries.len() {
        let jobs: Vec<_> =
            report.jobs.iter().filter(|j| j.query == sapred_cluster::QueryId(q)).collect();
        assert_eq!(jobs.len(), queries[q].jobs.len(), "{tag}");
        for j in &jobs {
            for &dep in &queries[q].jobs[j.job.0].deps {
                let parent = jobs.iter().find(|p| p.job == dep).unwrap();
                assert!(
                    j.start >= parent.finish - 1e-9,
                    "{tag}: q{q} job {} started before its dependency {}",
                    j.job,
                    dep
                );
            }
        }
    }
}

#[test]
fn all_schedulers_satisfy_invariants() {
    let fw = Framework::new();
    let queries = workload(&fw);
    check_invariants(&run(&fw, Fifo, &queries), &queries, "FIFO");
    check_invariants(&run(&fw, Hcs, &queries), &queries, "HCS");
    check_invariants(&run(&fw, Hfs, &queries), &queries, "HFS");
    check_invariants(&run(&fw, Swrd, &queries), &queries, "SWRD");
}

#[test]
fn fault_invariants_hold_under_permanent_node_loss() {
    // Losing a node for good mid-run must not break any scheduler: DAG
    // ordering, work conservation and attempt accounting all still hold,
    // and every query completes on the surviving nodes.
    let fw = Framework::new();
    let queries = workload(&fw);
    let p = node_loss_plan;
    check_fault_invariants(&run_faulted(&fw, Fifo, &queries, p()), &queries, "FIFO+faults");
    check_fault_invariants(&run_faulted(&fw, Hcs, &queries, p()), &queries, "HCS+faults");
    check_fault_invariants(&run_faulted(&fw, Hfs, &queries, p()), &queries, "HFS+faults");
    check_fault_invariants(&run_faulted(&fw, Swrd, &queries, p()), &queries, "SWRD+faults");
}

#[test]
fn abandoned_queries_terminate_the_run_cleanly() {
    // An exhausted attempt budget (every attempt fails, two tries) dooms
    // every query; abandonment must still drain the run to completion with
    // a finite finish time per query instead of deadlocking the heap.
    let fw = Framework::new();
    let queries: Vec<SimQuery> = workload(&fw).into_iter().take(6).collect();
    let doomed = FaultPlan { task_fail_prob: 1.0, max_attempts: 2, ..FaultPlan::default() };
    let rep = run_faulted(&fw, Swrd, &queries, doomed);
    assert_eq!(rep.faults.failed_queries.len(), queries.len(), "all queries must be abandoned");
    for stat in &rep.queries {
        assert!(stat.failed);
        assert!(stat.finish.is_finite(), "abandonment still produces a finish time");
    }
    // Abandonment leaves no poisoned shared state: a fresh failure-free
    // run of the same workload completes everything.
    let clean = run_faulted(&fw, Swrd, &queries, FaultPlan::none());
    assert!(clean.faults.failed_queries.is_empty());
    assert!(clean.queries.iter().all(|q| !q.failed));
}

#[test]
fn total_work_is_scheduler_independent() {
    // Work conservation: summed task time (derived from per-job averages ×
    // counts) is identical across schedulers because durations are drawn
    // from the same seeded RNG in launch order... it is NOT identical in
    // general (launch order differs), but total task count and per-query
    // job structure are.
    let fw = Framework::new();
    let queries = workload(&fw);
    let count_tasks =
        |r: &SimReport| -> usize { r.jobs.iter().map(|j| j.n_maps + j.n_reduces).sum() };
    let a = count_tasks(&run(&fw, Fifo, &queries));
    let b = count_tasks(&run(&fw, Hcs, &queries));
    let c = count_tasks(&run(&fw, Hfs, &queries));
    let d = count_tasks(&run(&fw, Swrd, &queries));
    assert_eq!(a, b);
    assert_eq!(b, c);
    assert_eq!(c, d);
}

#[test]
fn contention_never_speeds_a_query_up_much() {
    // Each query's contended response is at least (almost) its alone
    // response under the same scheduler; small deviations can occur because
    // task durations are resampled, so allow 20%.
    let fw = Framework::new();
    let queries = workload(&fw);
    let mixed = run(&fw, Hcs, &queries);
    for (i, q) in queries.iter().enumerate() {
        let mut alone_q = q.clone();
        alone_q.arrival = 0.0;
        let alone = run(&fw, Hcs, std::slice::from_ref(&alone_q));
        assert!(
            mixed.queries[i].response() > 0.8 * alone.queries[0].response(),
            "query {i}: mixed {} vs alone {}",
            mixed.queries[i].response(),
            alone.queries[0].response()
        );
    }
}

#[test]
fn single_container_serializes_everything() {
    let mut fw = Framework::new();
    fw.cluster.nodes = 1;
    fw.cluster.containers_per_node = 1;
    let queries: Vec<SimQuery> = workload(&Framework::new()).into_iter().take(4).collect();
    let report = run(&fw, Fifo, &queries);
    // With one container, makespan is at least the sum of all mean task
    // times × a noise tolerance.
    let total_tasks: usize = report.jobs.iter().map(|j| j.n_maps + j.n_reduces).sum();
    assert!(report.makespan > total_tasks as f64 * fw.cost.task_base * 0.8);
}
