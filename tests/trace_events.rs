//! End-to-end observability pipeline test: a simulated workload traced into
//! all three exporters at once (JSONL events, Chrome trace, metrics JSON),
//! checking that the exported artifacts are well-formed and mutually
//! consistent with the simulator's own report.

use sapred::cluster::job::{JobPrediction, SimJob, SimQuery, TaskKind, TaskSpec};
use sapred::cluster::sched::Swrd;
use sapred::cluster::sim::{ClusterConfig, Simulator};
use sapred::cluster::CostModel;
use sapred::obs::json::validate;
use sapred::obs::{ChromeTraceSink, JsonlSink, MetricsSink, Tee};
use sapred::plan::dag::JobCategory;

/// A small three-query workload with fan-in DAGs, overlapping arrivals and
/// nonzero predictions (so SWRD has real scores to rank by).
fn workload() -> Vec<SimQuery> {
    let task = |mb: f64, kind: TaskKind, category: JobCategory| TaskSpec {
        bytes_in: mb * 1024.0 * 1024.0,
        bytes_out: mb * 0.4 * 1024.0 * 1024.0,
        category,
        kind,
        p: 0.6,
    };
    let job =
        |id: usize, deps: Vec<usize>, category: JobCategory, maps: usize, reduces: usize| SimJob {
            id,
            deps,
            category,
            maps: vec![task(128.0, TaskKind::Map, category); maps],
            reduces: vec![task(64.0, TaskKind::Reduce, category); reduces],
            prediction: JobPrediction { map_task_time: 2.0, reduce_task_time: 1.5 },
        };
    (0..3)
        .map(|q| SimQuery {
            name: format!("trace-q{q}"),
            arrival: q as f64 * 1.5,
            jobs: vec![
                job(0, vec![], JobCategory::Extract, 6 + q, 0),
                job(1, vec![], JobCategory::Groupby, 4, 2),
                job(2, vec![0, 1], JobCategory::Join, 3, 1 + q),
            ],
        })
        .collect()
}

#[test]
fn exported_artifacts_are_valid_and_consistent_with_report() {
    let queries = workload();
    let config = ClusterConfig { nodes: 2, containers_per_node: 4, ..ClusterConfig::default() };
    let mut sink = Tee::new(
        JsonlSink::new(Vec::new()),
        Tee::new(ChromeTraceSink::new(), MetricsSink::new(config.total_containers())),
    );
    let report = Simulator::new(config, CostModel::default(), Swrd).run_with(&queries, &mut sink);
    let Tee { a: jsonl, b: Tee { a: chrome, b: mut metrics } } = sink;

    // JSONL: every line is valid JSON, and task start/finish counts match
    // the report's task totals exactly.
    let text = String::from_utf8(jsonl.finish().unwrap()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty());
    let mut starts = 0usize;
    let mut finishes = 0usize;
    for line in &lines {
        validate(line).unwrap_or_else(|e| panic!("invalid JSONL line `{line}`: {e}"));
        if line.contains("\"event\":\"task_start\"") {
            starts += 1;
        }
        if line.contains("\"event\":\"task_finish\"") {
            finishes += 1;
        }
    }
    let total: usize = report.total_tasks();
    assert_eq!(starts, total, "task_start lines vs report task total");
    assert_eq!(finishes, total, "task_finish lines vs report task total");

    // Chrome trace: a single valid JSON document with one span per task,
    // one per job, one per query, and one decision instant per dispatch.
    let mut buf = Vec::new();
    chrome.write(&mut buf).unwrap();
    let doc = String::from_utf8(buf).unwrap();
    validate(&doc).expect("chrome trace is valid JSON");
    let jobs_done = report.jobs.len();
    assert_eq!(chrome.span_count(), 2 * total + jobs_done + report.queries.len());

    // Metrics: valid JSON whose counters agree with the same totals.
    let metrics_json = metrics.finish(report.makespan);
    validate(&metrics_json).expect("metrics export is valid JSON");
    assert_eq!(metrics.registry.counter("queries_finished"), queries.len() as u64);
    assert_eq!(
        metrics.registry.counter("tasks_started_map")
            + metrics.registry.counter("tasks_started_reduce"),
        total as u64
    );
    assert_eq!(metrics.registry.counter("jobs_finished"), jobs_done as u64);
    let util = metrics.utilization(report.makespan);
    assert!((0.0..=1.0).contains(&util), "utilization {util}");
    assert!(metrics_json.contains("\"drift\""));
}
