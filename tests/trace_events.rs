//! End-to-end observability pipeline test: a simulated workload traced into
//! all three exporters at once (JSONL events, Chrome trace, metrics JSON),
//! checking that the exported artifacts are well-formed and mutually
//! consistent with the simulator's own report.

use sapred::cluster::job::{JobPrediction, SimJob, SimQuery, TaskKind, TaskSpec};
use sapred::cluster::sched::Swrd;
use sapred::cluster::sim::{ClusterConfig, Simulator};
use sapred::cluster::{CostModel, FaultPlan, JobId, NodeCrash};
use sapred::obs::json::validate;
use sapred::obs::{ChromeTraceSink, JsonlSink, MetricsSink, Tee};
use sapred::plan::dag::JobCategory;

/// A small three-query workload with fan-in DAGs, overlapping arrivals and
/// nonzero predictions (so SWRD has real scores to rank by).
fn workload() -> Vec<SimQuery> {
    let task = |mb: f64, kind: TaskKind, category: JobCategory| TaskSpec {
        bytes_in: mb * 1024.0 * 1024.0,
        bytes_out: mb * 0.4 * 1024.0 * 1024.0,
        category,
        kind,
        p: 0.6,
    };
    let job =
        |id: usize, deps: Vec<JobId>, category: JobCategory, maps: usize, reduces: usize| SimJob {
            id: JobId(id),
            deps,
            category,
            maps: vec![task(128.0, TaskKind::Map, category); maps],
            reduces: vec![task(64.0, TaskKind::Reduce, category); reduces],
            prediction: JobPrediction { map_task_time: 2.0, reduce_task_time: 1.5 },
        };
    (0..3)
        .map(|q| SimQuery {
            name: format!("trace-q{q}"),
            arrival: q as f64 * 1.5,
            jobs: vec![
                job(0, vec![], JobCategory::Extract, 6 + q, 0),
                job(1, vec![], JobCategory::Groupby, 4, 2),
                job(2, vec![JobId(0), JobId(1)], JobCategory::Join, 3, 1 + q),
            ],
        })
        .collect()
}

#[test]
fn exported_artifacts_are_valid_and_consistent_with_report() {
    let queries = workload();
    let config = ClusterConfig { nodes: 2, containers_per_node: 4, ..ClusterConfig::default() };
    let mut sink = Tee::new(
        JsonlSink::new(Vec::new()),
        Tee::new(ChromeTraceSink::new(), MetricsSink::new(config.total_containers())),
    );
    let report = Simulator::new(config, CostModel::default(), Swrd).run_with(&queries, &mut sink);
    let Tee { a: jsonl, b: Tee { a: chrome, b: mut metrics } } = sink;

    // JSONL: every line is valid JSON, and task start/finish counts match
    // the report's task totals exactly.
    let text = String::from_utf8(jsonl.finish().unwrap()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty());
    let mut starts = 0usize;
    let mut finishes = 0usize;
    for line in &lines {
        validate(line).unwrap_or_else(|e| panic!("invalid JSONL line `{line}`: {e}"));
        if line.contains("\"event\":\"task_start\"") {
            starts += 1;
        }
        if line.contains("\"event\":\"task_finish\"") {
            finishes += 1;
        }
    }
    let total: usize = report.total_tasks();
    assert_eq!(starts, total, "task_start lines vs report task total");
    assert_eq!(finishes, total, "task_finish lines vs report task total");

    // Chrome trace: a single valid JSON document with one span per task,
    // one per job, one per query, and one decision instant per dispatch.
    let mut buf = Vec::new();
    chrome.write(&mut buf).unwrap();
    let doc = String::from_utf8(buf).unwrap();
    validate(&doc).expect("chrome trace is valid JSON");
    let jobs_done = report.jobs.len();
    assert_eq!(chrome.span_count(), 2 * total + jobs_done + report.queries.len());

    // Metrics: valid JSON whose counters agree with the same totals.
    let metrics_json = metrics.finish(report.makespan);
    validate(&metrics_json).expect("metrics export is valid JSON");
    assert_eq!(metrics.registry.counter("queries_finished"), queries.len() as u64);
    assert_eq!(
        metrics.registry.counter("tasks_started_map")
            + metrics.registry.counter("tasks_started_reduce"),
        total as u64
    );
    assert_eq!(metrics.registry.counter("jobs_finished"), jobs_done as u64);
    let util = metrics.utilization(report.makespan);
    assert!((0.0..=1.0).contains(&util), "utilization {util}");
    assert!(metrics_json.contains("\"drift\""));
}

/// A map-heavy workload for the fault test: the multi-wave map phases keep
/// a wide window in which completed map outputs are still needed by pending
/// reduces, so a mid-run node crash reliably loses some.
fn fault_workload() -> Vec<SimQuery> {
    let task = |mb: f64, kind: TaskKind| TaskSpec {
        bytes_in: mb * 1024.0 * 1024.0,
        bytes_out: mb * 0.4 * 1024.0 * 1024.0,
        category: JobCategory::Groupby,
        kind,
        p: 0.6,
    };
    (0..2)
        .map(|q| SimQuery {
            name: format!("fault-q{q}"),
            arrival: q as f64,
            jobs: vec![
                SimJob {
                    id: JobId(0),
                    deps: vec![],
                    category: JobCategory::Groupby,
                    maps: vec![task(128.0, TaskKind::Map); 18],
                    reduces: vec![task(64.0, TaskKind::Reduce); 3],
                    prediction: JobPrediction { map_task_time: 2.0, reduce_task_time: 1.5 },
                },
                SimJob {
                    id: JobId(1),
                    deps: vec![JobId(0)],
                    category: JobCategory::Join,
                    maps: vec![task(96.0, TaskKind::Map); 6],
                    reduces: vec![task(64.0, TaskKind::Reduce); 2],
                    prediction: JobPrediction { map_task_time: 2.0, reduce_task_time: 1.5 },
                },
            ],
        })
        .collect()
}

#[test]
fn fault_event_kinds_are_pinned_through_every_exporter() {
    // A deliberately hostile run — transient task failures, one transient
    // node crash that loses map outputs, and speculation against injected
    // stragglers — traced into all three exporters. Every fault event kind
    // must survive the trip and agree with the report's fault stats.
    let queries = fault_workload();
    let config = ClusterConfig { nodes: 2, containers_per_node: 4, ..ClusterConfig::default() };
    let cost = CostModel { straggler_prob: 0.3, straggler_factor: 8.0, ..CostModel::default() };
    let plan = FaultPlan {
        task_fail_prob: 0.15,
        max_attempts: 16,
        // Keep the crashed node eligible to rejoin so NodeUp is observable.
        blacklist_after: 1_000,
        node_crashes: vec![NodeCrash::transient(1, 20.0, 4.0)],
        speculative: true,
        spec_fraction: 0.5,
        ..FaultPlan::default()
    };
    let mut sink = Tee::new(
        JsonlSink::new(Vec::new()),
        Tee::new(ChromeTraceSink::new(), MetricsSink::new(config.total_containers())),
    );
    let report = Simulator::new(config, cost, Swrd).with_faults(plan).run_with(&queries, &mut sink);
    let Tee { a: jsonl, b: Tee { a: chrome, b: mut metrics } } = sink;
    let fr = report.faults.clone();
    assert!(
        fr.task_failures > 0 && fr.lost_maps > 0 && fr.speculative_launches > 0,
        "plan too tame to exercise every fault kind: {fr:?}"
    );
    assert!(fr.failed_queries.is_empty(), "generous budget must not abandon queries");

    // JSONL: every line valid, and each fault kind's line count pins the
    // corresponding report counter exactly.
    let text = String::from_utf8(jsonl.finish().unwrap()).unwrap();
    for line in text.lines() {
        validate(line).unwrap_or_else(|e| panic!("invalid JSONL line `{line}`: {e}"));
    }
    let count = |kind: &str| {
        let tag = format!("\"event\":\"{kind}\"");
        text.lines().filter(|l| l.contains(&tag)).count()
    };
    assert_eq!(count("task_start"), report.total_attempts(), "one start per attempt");
    assert_eq!(count("task_finish"), report.total_completions());
    assert_eq!(count("task_failed"), fr.task_failures);
    assert_eq!(count("task_killed"), fr.tasks_killed);
    assert_eq!(count("speculative_launch"), fr.speculative_launches);
    assert_eq!(count("node_down"), fr.node_crashes + fr.nodes_blacklisted);
    assert_eq!(count("node_up"), 1, "the transient node must come back");
    assert!(count("map_output_lost") >= 1, "the crash must lose at least one map output");
    // Attempt accounting closes through the exporter too.
    assert_eq!(
        count("task_start"),
        count("task_finish") + count("task_failed") + count("task_killed")
    );

    // Chrome trace: still a single valid JSON document; at minimum one span
    // per attempt, per job and per query (fault instants come on top).
    let mut buf = Vec::new();
    chrome.write(&mut buf).unwrap();
    validate(&String::from_utf8(buf).unwrap()).expect("chrome trace is valid JSON under faults");
    assert!(
        chrome.span_count() >= report.total_attempts() + report.jobs.len() + report.queries.len()
    );

    // Metrics: fault counters mirror the report's stats.
    let metrics_json = metrics.finish(report.makespan);
    validate(&metrics_json).expect("metrics export is valid JSON under faults");
    let reg = &metrics.registry;
    assert_eq!(
        reg.counter("tasks_failed_map") + reg.counter("tasks_failed_reduce"),
        fr.task_failures as u64
    );
    assert_eq!(reg.counter("tasks_killed"), fr.tasks_killed as u64);
    assert_eq!(reg.counter("node_crashes"), fr.node_crashes as u64);
    assert_eq!(reg.counter("node_recoveries"), 1);
    assert_eq!(reg.counter("speculative_launches"), fr.speculative_launches as u64);
    assert_eq!(reg.counter("maps_lost"), fr.lost_maps as u64);
}
