//! Offline minimal stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset the workspace's benches use: `Criterion::default()`,
//! `sample_size`, `measurement_time`, `bench_function`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros. Each
//! benchmark runs `sample_size` timed iterations (after one warm-up) and
//! prints min/mean times — no statistics, plotting, or baselines.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Time `f`, once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        let mean = total / self.samples as u32;
        println!("    {} samples: mean {:?}, min {:?}", self.samples, mean, min);
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this stub ignores it.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        println!("bench {id}");
        let mut b = Bencher { samples: self.sample_size };
        f(&mut b);
        self
    }
}

/// Declare a benchmark group; mirrors criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
