//! Minimal offline stand-in for `crossbeam` (scoped-threads subset),
//! implemented over std::thread::scope.

pub mod thread {
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            })
        }
    }

    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}
