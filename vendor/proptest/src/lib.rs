//! Offline functional stand-in for the `proptest` crate.
//!
//! Unlike the earlier type-check-only stub, this implementation *runs*
//! properties: each `proptest!` test generates `ProptestConfig::cases`
//! random inputs from its strategies (deterministically seeded from the
//! test name) and executes the body. Failures panic with the generated
//! inputs. What it does not do compared to upstream proptest: shrinking,
//! persistence of failing cases (`.proptest-regressions` files are
//! ignored), and the full combinator zoo — only the subset this workspace
//! uses is provided.

use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG (SplitMix64; self-contained so the stub has no dependencies)
// ---------------------------------------------------------------------------

/// Deterministic test RNG. Seeded from the test name so every property has
/// a stable, independent stream across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a hash).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self { state: h ^ 0x9E3779B97F4A7C15 }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [0, bound).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty choice");
        (self.next_u64() % bound as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------------

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Input rejected by `prop_assume!` — not a failure, try another input.
    Reject(String),
    /// Assertion failure.
    Fail(String),
}

impl TestCaseError {
    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
        }
    }
}

/// Per-case result alias (matches upstream naming).
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `n` cases.
    pub fn with_cases(n: u32) -> Self {
        Self { cases: n }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: `recurse` receives the strategy for the next
    /// depth level. Upstream grows trees probabilistically; here each extra
    /// level is taken with probability 1/2 up to `depth` levels.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let mut cur = BoxedStrategy::new(self);
        for _ in 0..depth {
            let deeper = BoxedStrategy::new(recurse(cur.clone()));
            cur = BoxedStrategy::union(vec![cur, deeper]);
        }
        cur
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self { gen: Rc::clone(&self.gen) }
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: 'static> BoxedStrategy<T> {
    /// Erase `s`.
    pub fn new<S: Strategy<Value = T> + 'static>(s: S) -> Self {
        Self { gen: Rc::new(move |rng| s.generate(rng)) }
    }

    /// Uniform choice between several strategies.
    pub fn union(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof of zero strategies");
        Self {
            gen: Rc::new(move |rng| {
                let i = rng.below(arms.len());
                (arms[i].gen)(rng)
            }),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Numeric ranges.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty range");
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                // A hair over unit so `hi` itself is reachable.
                lo + ((rng.next_u64() >> 11) as $t / (((1u64 << 53) - 1) as $t)) * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
}

// String strategies from a regex-like pattern. Only the subset
// `[class]{lo,hi}` (single character class with ranges, repeated) is
// supported — enough for the workspace's fuzz patterns.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, lo, hi) = parse_simple_regex(self)
            .unwrap_or_else(|| panic!("proptest stand-in: unsupported regex pattern {self:?}"));
        let n = lo + rng.below(hi - lo + 1);
        (0..n).map(|_| class[rng.below(class.len())]).collect()
    }
}

/// Parse `[class]{lo,hi}` into (expanded characters, lo, hi).
fn parse_simple_regex(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class_src, tail) = rest.split_at(close);
    let mut class = Vec::new();
    let chars: Vec<char> = class_src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            for c in a..=b {
                class.push(c);
            }
            i += 3;
        } else {
            class.push(chars[i]);
            i += 1;
        }
    }
    if class.is_empty() {
        return None;
    }
    let reps = tail.strip_prefix(']')?;
    if reps.is_empty() {
        return Some((class, 1, 1));
    }
    let body = reps.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match body.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = body.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((class, lo, hi))
}

// ---------------------------------------------------------------------------
// `any` / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// prop:: combinator namespace
// ---------------------------------------------------------------------------

pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Acceptable size specifications for [`vec`].
        pub trait SizeRange {
            /// Draw a length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for std::ops::Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                Strategy::generate(self, rng)
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                Strategy::generate(self, rng)
            }
        }

        /// Output of [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, R> {
            elem: S,
            size: R,
        }

        /// A vector whose length is drawn from `size` and whose elements
        /// come from `elem`.
        pub fn vec<S: Strategy, R: SizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        use crate::{Arbitrary, Strategy, TestRng};

        /// Output of [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            items: Vec<T>,
        }

        /// Uniform choice from a fixed list.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select of empty list");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.items[rng.below(self.items.len())].clone()
            }
        }

        /// A position into a collection whose size is only known later.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Resolve against a concrete collection size.
            pub fn index(&self, size: usize) -> usize {
                assert!(size > 0, "Index::index on empty collection");
                (self.0 % size as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }

    pub mod option {
        use crate::{Strategy, TestRng};

        /// Output of [`of`].
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `None` one time in four, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.next_u64() % 4 == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// `assert!` that reports through [`TestCaseError`] (so the runner can show
/// the generated inputs) instead of panicking in place.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "{} == {} failed: {:?} vs {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Discard the current case (not counted as a success) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::BoxedStrategy::union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The property-test runner macro. Each property becomes a `#[test]` that
/// draws inputs from its strategies and runs the body until
/// `ProptestConfig::cases` cases pass.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    { ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)* } => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut passed = 0u32;
                let mut rejected = 0u32;
                while passed < config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                    let inputs = format!(concat!($(stringify!($arg), " = {:?}  ",)*), $(&$arg),*);
                    let outcome = (move || -> $crate::TestCaseResult {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(64).max(1024),
                                "proptest {}: too many rejected inputs",
                                stringify!($name)
                            );
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed after {} passing cases: {}\n  inputs: {}",
                                stringify!($name),
                                passed,
                                msg,
                                inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Everything a test file usually imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}
