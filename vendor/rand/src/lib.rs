//! Minimal offline stand-in for the `rand` crate (API subset used by sapred).
//! Functional: SplitMix64-backed StdRng, good enough statistically for the
//! workspace's qualitative tests. NOT the real rand — seeded value streams
//! differ from upstream rand 0.8.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub trait FromRng {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Like rand's `SampleUniform`: one blanket `SampleRange` impl per range
/// shape keeps type inference unambiguous (`i64 + gen_range(1..31)` works).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo <= hi, "empty range");
                let u = <$t>::from_rng(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

pub trait Rng: RngCore {
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — statistically solid, nothing like upstream StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl StdRng {
        /// The raw internal state word, for persisting a stream mid-run.
        /// Note this is the post-`seed_from_u64` state, not the seed.
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Rebuild a generator at an exact raw state (as returned by
        /// [`StdRng::state`]), continuing the stream where it left off.
        pub fn from_state(state: u64) -> Self {
            Self { state }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state: state.wrapping_mul(0x2545F4914F6CDD1D) ^ 0x6A09E667F3BCC909 }
        }
    }
}
