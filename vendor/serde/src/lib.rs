//! Offline stand-in for serde: marker traits + re-exported stub derives.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

macro_rules! impl_both {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_both!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl Serialize for str {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de> + std::hash::Hash + Eq, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}
