//! Offline stand-in for serde_json: typechecks, fails at runtime.

#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json stub: serialization unavailable offline")
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Err(Error)
}

pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Err(Error)
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error)
}
